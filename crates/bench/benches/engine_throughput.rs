//! Criterion: `rankd` engine throughput on the mixed workload —
//! engine-with-buffer-pool vs engine-without-pool vs the naive
//! sequential-submit baseline (one-shot `HostRunner` per job, fresh
//! allocations). The same scenario is the `rankd` CLI's default shape,
//! scaled down so the benchmark converges quickly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use engine::workload::{run_baseline, run_engine, OpSelect, Workload, WorkloadConfig};
use engine::{Engine, EngineConfig};
use std::hint::black_box;

fn scenario() -> WorkloadConfig {
    WorkloadConfig {
        min_exp: 2,
        max_exp: 5,
        elems_per_decade: 300_000,
        max_jobs_per_decade: 600,
        scan_frac: 0.3,
        op: OpSelect::Mixed,
        seed: 0xC90,
        lists_per_decade: 2,
    }
}

fn bench_engine(c: &mut Criterion) {
    let workload = Workload::generate(&scenario());
    let mut g = c.benchmark_group("engine_throughput");
    g.throughput(Throughput::Elements(workload.total_elements));

    let pooled = Engine::new(EngineConfig::default());
    // Warm pass: planner history and pool population, as in steady state.
    run_engine(&pooled, &workload);
    g.bench_function("engine_pooled", |b| {
        b.iter(|| black_box(run_engine(&pooled, &workload).checksum))
    });

    let unpooled = Engine::new(EngineConfig::default().with_pooling(false));
    run_engine(&unpooled, &workload);
    g.bench_function("engine_no_pool", |b| {
        b.iter(|| black_box(run_engine(&unpooled, &workload).checksum))
    });

    g.bench_function("naive_sequential", |b| {
        b.iter(|| black_box(run_baseline(&workload).checksum))
    });
    g.finish();

    println!("\npooled engine stats after benchmark:\n{}", pooled.stats());
    pooled.shutdown();
    unpooled.shutdown();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
