//! Criterion: host-backend list **ranking** across algorithms and sizes
//! (the wall-clock analogue of Fig. 1 / Table I rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use listkit::gen;
use listrank::{Algorithm, HostRunner};
use std::hint::black_box;

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank_host");
    g.sample_size(10);
    for &n in &[1usize << 14, 1 << 18, 1 << 21] {
        let list = gen::random_list(n, n as u64);
        g.throughput(Throughput::Elements(n as u64));
        for alg in [
            Algorithm::Serial,
            Algorithm::Wyllie,
            Algorithm::MillerReif,
            Algorithm::AndersonMiller,
            Algorithm::ReidMiller,
        ] {
            // Random mates are slow at the largest size; skip to keep the
            // suite's runtime sane.
            if n >= 1 << 21 && matches!(alg, Algorithm::MillerReif | Algorithm::AndersonMiller) {
                continue;
            }
            let runner = HostRunner::new(alg);
            g.bench_with_input(BenchmarkId::new(alg.name(), n), &list, |b, l| {
                b.iter(|| black_box(runner.rank(black_box(l))))
            });
        }
    }
    g.finish();
}

fn bench_rank_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank_threads");
    g.sample_size(10);
    let n = 1usize << 21;
    let list = gen::random_list(n, 77);
    g.throughput(Throughput::Elements(n as u64));
    let max_t = rayon::current_num_threads();
    let mut t = 1usize;
    while t <= max_t {
        let runner = HostRunner::new(Algorithm::ReidMiller).with_threads(t);
        g.bench_with_input(BenchmarkId::new("reid-miller", t), &list, |b, l| {
            b.iter(|| black_box(runner.rank(black_box(l))))
        });
        t *= 2;
    }
    g.finish();
}

criterion_group!(benches, bench_rank, bench_rank_threads);
criterion_main!(benches);
