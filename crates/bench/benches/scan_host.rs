//! Criterion: host-backend list **scan** — generic operator cost (Add
//! vs the non-commutative affine composition) and layout sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use listkit::gen::{self, Layout};
use listkit::ops::{AddOp, Affine, AffineOp};
use listrank::{Algorithm, HostRunner};
use std::hint::black_box;

fn bench_scan_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_ops");
    g.sample_size(10);
    let n = 1usize << 20;
    let list = gen::random_list(n, 3);
    let ints: Vec<i64> = (0..n as i64).collect();
    let affines: Vec<Affine> =
        (0..n).map(|i| Affine::new((i % 3) as i64 + 1, i as i64 % 17)).collect();
    g.throughput(Throughput::Elements(n as u64));
    let runner = HostRunner::new(Algorithm::ReidMiller);
    g.bench_function(BenchmarkId::new("add_i64", n), |b| {
        b.iter(|| black_box(runner.scan(&list, black_box(&ints), &AddOp)))
    });
    g.bench_function(BenchmarkId::new("affine_compose", n), |b| {
        b.iter(|| black_box(runner.scan(&list, black_box(&affines), &AffineOp)))
    });
    g.finish();
}

fn bench_scan_layouts(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_layouts");
    g.sample_size(10);
    let n = 1usize << 20;
    let vals: Vec<i64> = vec![1; n];
    g.throughput(Throughput::Elements(n as u64));
    let runner = HostRunner::new(Algorithm::ReidMiller);
    for (name, layout) in [
        ("sequential", Layout::Sequential),
        ("blocked-4k", Layout::Blocked(4096)),
        ("random", Layout::Random),
    ] {
        let list = gen::list_with_layout(n, layout, 9);
        g.bench_function(BenchmarkId::new(name, n), |b| {
            b.iter(|| black_box(runner.scan(black_box(&list), &vals, &AddOp)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scan_ops, bench_scan_layouts);
criterion_main!(benches);
