//! Criterion: shard-parallel huge-list ranking vs the monolithic
//! backends on the same list — the `rankd --sharded-scenario` shape,
//! scaled down so the benchmark converges quickly. Topology locality
//! (the blocked-layout block size) is swept because it decides the
//! contracted boundary list's length and with it the stitch cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use listkit::gen::{self, Layout};
use listkit::sharded::ShardedList;
use listrank::host::rank_sharded;
use listrank::{Algorithm, HostRunner};
use std::hint::black_box;

const N: usize = 1 << 21;
const SHARD: usize = 1 << 17;

fn bench_sharded(c: &mut Criterion) {
    for (tag, block) in [("blocked4k", 4096usize), ("blocked64", 64), ("random", 1)] {
        let list = if block > 1 {
            gen::list_with_layout(N, Layout::Blocked(block), 0xC90)
        } else {
            gen::random_list(N, 0xC90)
        };
        let mut g = c.benchmark_group(format!("sharded_rank/{tag}"));
        g.throughput(Throughput::Elements(N as u64));

        g.bench_function("sharded", |b| b.iter(|| black_box(rank_sharded(&list, SHARD, 0x1994).0)));
        // The build is reusable across ranks of the same list; measure
        // the steady-state cost separately from the end-to-end cost.
        let built = ShardedList::build(&list, SHARD);
        g.bench_function("sharded_prebuilt", |b| b.iter(|| black_box(built.rank())));
        g.bench_function("monolithic_serial", |b| {
            b.iter(|| black_box(HostRunner::new(Algorithm::Serial).rank(&list)))
        });
        g.bench_function("monolithic_reid_miller", |b| {
            b.iter(|| black_box(HostRunner::new(Algorithm::ReidMiller).rank(&list)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
