//! Criterion: simulator throughput — how fast the `vmach`-backed
//! algorithms simulate (useful for sizing the experiment sweeps; the
//! simulated *cycle counts* themselves are deterministic and measured
//! by the `repro` binaries, not here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use listkit::gen;
use listrank::{Algorithm, SimRunner};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    let n = 1usize << 18;
    let list = gen::random_list(n, 5);
    g.throughput(Throughput::Elements(n as u64));
    for alg in [Algorithm::Serial, Algorithm::Wyllie, Algorithm::ReidMiller] {
        let runner = SimRunner::new(alg, 1);
        g.bench_with_input(BenchmarkId::new(alg.name(), n), &list, |b, l| {
            b.iter(|| black_box(runner.rank(black_box(l)).cycles))
        });
    }
    g.finish();
}

fn bench_tuner(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner");
    g.sample_size(10);
    for &n in &[100_000usize, 10_000_000] {
        g.bench_with_input(BenchmarkId::new("tuned_scan", n), &n, |b, &n| {
            b.iter(|| black_box(listrank::SimParams::tuned_scan(black_box(n), 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim, bench_tuner);
criterion_main!(benches);
