//! Criterion: substrate micro-benchmarks — list generation, serial
//! traversal, predecessor building, packed encoding, the cache
//! simulator and banked memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use listkit::packed::PackedList;
use listkit::{gen, serial};
use std::hint::black_box;
use vmach::cache::{CacheConfig, CacheSim};
use vmach::memory::BankSim;

fn bench_listkit(c: &mut Criterion) {
    let mut g = c.benchmark_group("listkit");
    g.sample_size(10);
    let n = 1usize << 20;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::new("random_list", n), |b| {
        b.iter(|| black_box(gen::random_list(black_box(n), 42)))
    });
    let list = gen::random_list(n, 42);
    g.bench_function(BenchmarkId::new("serial_rank", n), |b| {
        b.iter(|| black_box(serial::rank(black_box(&list))))
    });
    g.bench_function(BenchmarkId::new("predecessors", n), |b| {
        b.iter(|| black_box(listrank::host::prev::build_prev(black_box(&list))))
    });
    let packed = PackedList::for_ranking(&list);
    g.bench_function(BenchmarkId::new("packed_serial_rank", n), |b| {
        b.iter(|| black_box(packed.serial_rank()))
    });
    g.finish();
}

fn bench_vmach_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("vmach_models");
    g.sample_size(10);
    let n = 1usize << 18;
    g.throughput(Throughput::Elements(n as u64));
    let list = gen::random_list(n, 7);
    g.bench_function(BenchmarkId::new("cache_sim_traversal", n), |b| {
        b.iter(|| {
            let mut sim = CacheSim::new(CacheConfig::alpha_board_cache());
            let mut v = list.head();
            for _ in 0..n {
                sim.access(v as u64 * 4);
                v = list.next_of(v);
            }
            black_box(sim.stats())
        })
    });
    g.bench_function(BenchmarkId::new("bank_sim_stream", n), |b| {
        b.iter(|| {
            let mut sim = BankSim::new(1024, 6);
            black_box(sim.run((0..n).map(|i| i.wrapping_mul(0x9e37_79b9) % (1 << 24))))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_listkit, bench_vmach_models);
criterion_main!(benches);
