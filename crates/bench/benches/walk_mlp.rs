//! Lane-count sweep of the K-lane interleaved Phase-1 reduce — the
//! tentpole measurement of the memory-level-parallelism walker.
//!
//! For each layout (random = the paper's workload, blocked = locality
//! the prefetcher can exploit) and size (2²⁰ ≈ L3-resident, 2²³ and
//! 2²⁵ ≈ DRAM-resident), the list is split into `n / 2048` sublists
//! exactly like Reid-Miller Phase 0, and one worker reduces every
//! sublist with `lanes ∈ {1, 2, 4, 8, 16}` interleaved cursors. The
//! `lanes = 1` row is the old one-cursor-per-chain walk; the serial
//! row is the whole-list single-chain reference. Single-threaded by
//! construction (the walker call itself never spawns), so the speedup
//! shown is pure latency hiding, not thread parallelism.
//!
//! `CRITERION_QUICK=1` (CI) shortens runs; `cargo bench -p repro
//! --bench walk_mlp` runs the full sweep.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use listkit::gen::{self, Layout};
use listkit::ops::AddOp;
use listkit::walk::{self, BitSet, LaneStats, WalkPolicy};
use listkit::{Idx, LinkedList};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Reid-Miller Phase-0 split at `n / 2048` random vertices: boundary
/// bitset + sublist heads, exactly what the host backend hands the
/// walker.
fn phase0(list: &LinkedList) -> (BitSet, Vec<Idx>) {
    let n = list.len();
    let mut rng = StdRng::seed_from_u64(0x1994);
    let splits = gen::random_split_positions(list, (n / 2048).max(2), &mut rng);
    let mut boundary = BitSet::new();
    boundary.reset(n);
    boundary.set(list.tail() as usize);
    for &r in &splits {
        boundary.set(r as usize);
    }
    let mut heads = vec![list.head()];
    walk::gather_links(list, &splits, WalkPolicy::default(), &mut heads);
    (boundary, heads)
}

fn bench_walk(c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let sizes: &[usize] = if quick { &[1 << 20] } else { &[1 << 20, 1 << 23, 1 << 25] };
    for &n in sizes {
        for (tag, layout) in [("random", Layout::Random), ("blocked4k", Layout::Blocked(4096))] {
            let list = gen::list_with_layout(n, layout, 0xC90);
            let values: Vec<i64> = (0..n as i64).map(|i| (i % 23) - 11).collect();
            let (boundary, heads) = phase0(&list);
            let mut sums = vec![(0i64, 0 as Idx); heads.len()];

            let mut g = c.benchmark_group(format!("walk_mlp/{tag}/n{n}"));
            g.throughput(Throughput::Elements(n as u64));
            for lanes in [1usize, 2, 4, 8, 16] {
                let policy = WalkPolicy::with_lanes(lanes);
                g.bench_function(format!("reduce/lanes{lanes}"), |b| {
                    b.iter(|| {
                        let mut stats = LaneStats::default();
                        walk::reduce_chains(
                            &list, &values, &AddOp, &heads, &boundary, policy, &mut sums,
                            &mut stats,
                        );
                        black_box(sums.last().copied())
                    })
                });
            }
            // Whole-list single-chain reference (what Serial pays).
            g.bench_function("serial_scan", |b| {
                b.iter(|| black_box(listkit::serial::total(&list, &values, &AddOp)))
            });
            g.finish();
        }
    }
}

criterion_group!(benches, bench_walk);
criterion_main!(benches);
