//! **Ablations** — the design choices DESIGN.md calls out, each isolated
//! on the simulated C90:
//!
//! 1. sublist count `m` (the `m ≫ p` latency-hiding argument);
//! 2. the Eq. (4) pack schedule vs fixed intervals vs never packing;
//! 3. Anderson–Miller coin bias (paper: 0.9 saves ≈40% over 0.5);
//! 4. the packed one-gather ranking encoding (rank vs scan kernels);
//! 5. the hybrid Phase-2 strategy (serial vs Wyllie vs recursion).

use crate::common::{f2, Table};
use listkit::gen;
use listkit::ops::AddOp;
use listrank::sim::anderson_miller::AmParams;
use listrank::{Algorithm, SimParams, SimRunner};
use rankmodel::predict::Phase2Choice;
use rankmodel::schedule::Schedule;
use rankmodel::ModelCoeffs;

/// Ablation 1: sweep `m` at fixed n; the cost curve is U-shaped around
/// the tuned optimum.
pub fn m_sweep() -> String {
    let n = 1_000_000usize;
    let list = gen::random_list(n, 21);
    let values = vec![1i64; n];
    let coeffs = ModelCoeffs::c90_scan();
    let mut out = String::from("-- ablation 1: sublist count m (n = 10^6, 1 CPU, scan) --\n");
    let mut t = Table::new(vec!["m", "cycles/vertex"]);
    for m in [100usize, 400, 1600, 6400, 25_600, 102_400, 250_000] {
        let sched = Schedule::from_s1(
            n as f64,
            m as f64,
            (0.3 * n as f64 / m as f64).max(1.0),
            coeffs.phase1.c_over_a(),
            1.0,
        );
        let params = SimParams {
            m,
            schedule: sched.integer_points(),
            phase2: if m > 4096 { Phase2Choice::Recurse } else { Phase2Choice::Serial },
        };
        let run = SimRunner::new(Algorithm::ReidMiller, 1)
            .with_params(params)
            .scan(&list, &values, &AddOp);
        t.row(vec![m.to_string(), f2(run.cycles_per_vertex())]);
    }
    let tuned = SimRunner::new(Algorithm::ReidMiller, 1).scan(&list, &values, &AddOp);
    let tuned_m = SimParams::tuned_scan(n, 1).m;
    out.push_str(&t.render());
    out.push_str(&format!(
        "tuned: m = {} -> {} cycles/vertex\n",
        tuned_m,
        f2(tuned.cycles_per_vertex())
    ));
    out
}

/// Ablation 2: the Eq. (4) schedule vs naive alternatives.
pub fn schedule_ablation() -> String {
    let n = 200_000usize;
    let list = gen::random_list(n, 22);
    let values = vec![1i64; n];
    let m = SimParams::tuned_scan(n, 1).m;
    let mut out = String::from("-- ablation 2: pack schedule (n = 2*10^5, tuned m, 1 CPU) --\n");
    let mut t = Table::new(vec!["schedule", "packs", "cycles/vertex"]);
    let cases: Vec<(&str, SimParams)> = vec![
        ("optimal (Eq. 4)", SimParams::tuned_scan(n, 1)),
        ("every 2 links", SimParams::fixed_interval(n, m, 2)),
        ("every 10 links", SimParams::fixed_interval(n, m, 10)),
        ("every 50 links", SimParams::fixed_interval(n, m, 50)),
        ("never pack", SimParams::no_packing(m)),
    ];
    for (name, params) in cases {
        let packs = params.schedule.len();
        let run = SimRunner::new(Algorithm::ReidMiller, 1)
            .with_params(params)
            .scan(&list, &values, &AddOp);
        t.row(vec![name.to_string(), packs.to_string(), f2(run.cycles_per_vertex())]);
    }
    out.push_str(&t.render());
    out.push_str("expected: the Eq. 4 schedule at or near the minimum; extremes lose.\n");
    out
}

/// Ablation 3: Anderson–Miller coin bias.
pub fn coin_bias() -> String {
    let n = 500_000usize;
    let list = gen::random_list(n, 23);
    let mut out = String::from("-- ablation 3: Anderson-Miller coin bias (n = 5*10^5, 1 CPU) --\n");
    let mut t = Table::new(vec!["P[male]", "cycles/vertex", "vs 0.5"]);
    let base = SimRunner::new(Algorithm::AndersonMiller, 1)
        .with_am(AmParams { male_bias: 0.5, ..AmParams::default() })
        .rank(&list)
        .cycles
        .get();
    for bias in [0.5f64, 0.7, 0.9, 0.99] {
        let run = SimRunner::new(Algorithm::AndersonMiller, 1)
            .with_am(AmParams { male_bias: bias, ..AmParams::default() })
            .rank(&list);
        t.row(vec![format!("{bias:.2}"), f2(run.cycles_per_vertex()), f2(run.cycles.get() / base)]);
    }
    out.push_str(&t.render());
    out.push_str("paper: bias 0.9 cut rounds and runtime by about 40% vs 0.5.\n");
    out
}

/// Ablation 4: the packed one-gather ranking encoding.
pub fn packed_encoding() -> String {
    let n = 2_000_000usize;
    let list = gen::random_list(n, 24);
    let values = vec![1i64; n];
    let mut out = String::from("-- ablation 4: packed (value,link) encoding for ranking --\n");
    // Rank kernels = one gather; scanning all-ones = the two-gather path
    // computing the same function.
    let packed = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list);
    let unpacked = SimRunner::new(Algorithm::ReidMiller, 1).scan(&list, &values, &AddOp);
    out.push_str(&format!(
        "one-gather (packed) rank: {} cycles/vertex\n\
         two-gather scan of ones:  {} cycles/vertex\n\
         saving: {:.0}%  (paper: rank 5.1 vs scan 7.4 cycles/vertex => 31%)\n",
        f2(packed.cycles_per_vertex()),
        f2(unpacked.cycles_per_vertex()),
        (1.0 - packed.cycles.get() / unpacked.cycles.get()) * 100.0
    ));
    out
}

/// Ablation 5: Phase-2 strategy. At the tuned `m` Phase 2 is negligible
/// (that is *why* the tuned `m` is small), so the strategy is isolated
/// at a deliberately large `m`, where the reduced list is long enough
/// that serial vs Wyllie vs recursion genuinely matters.
pub fn phase2_strategy() -> String {
    let n = 4_000_000usize;
    let m = n / 16; // 250k sublists: a long reduced list
    let list = gen::random_list(n, 25);
    let values = vec![1i64; n];
    let coeffs = ModelCoeffs::c90_scan();
    let sched = Schedule::from_s1(
        n as f64,
        m as f64,
        (0.3 * n as f64 / m as f64).max(1.0),
        coeffs.phase1.c_over_a(),
        1.0,
    );
    let mut out = String::from(
        "-- ablation 5: Phase-2 strategy (n = 4*10^6, m = n/16 so Phase 2 is large, 1 CPU) --\n",
    );
    let mut t = Table::new(vec!["phase 2", "cycles/vertex"]);
    for (name, choice) in [
        ("serial", Phase2Choice::Serial),
        ("wyllie", Phase2Choice::Wyllie),
        ("recurse", Phase2Choice::Recurse),
    ] {
        let params = SimParams { m, schedule: sched.integer_points(), phase2: choice };
        let run = SimRunner::new(Algorithm::ReidMiller, 1)
            .with_params(params)
            .scan(&list, &values, &AddOp);
        t.row(vec![name.to_string(), f2(run.cycles_per_vertex())]);
    }
    out.push_str(&t.render());
    let tuned = SimParams::tuned_scan(n, 1);
    out.push_str(&format!(
        "at the *tuned* m = {} the three choices agree within noise — the tuner\n\
         keeps the reduced list short precisely so Phase 2 stays negligible\n\
         (its choice here: {:?}).\n",
        tuned.m, tuned.phase2
    ));
    out
}

/// Ablation 6: memory-bandwidth sensitivity. The paper's conclusion:
/// "Because list ranking is so memory bound, its performance is
/// directly related to the bandwidth of the memory system" — and the
/// reduced speedup at higher processor counts comes from shared
/// bandwidth. Sweep the contention coefficient (0 = infinite bandwidth)
/// and watch the 8-CPU speedup respond; also extend Table I's scaling
/// to the full 16-CPU C90.
pub fn bandwidth_sensitivity() -> String {
    let n = 2_000_000usize;
    let list = gen::random_list(n, 26);
    let values = vec![1i64; n];
    let mut out = String::from("-- ablation 6: memory bandwidth & 16 CPUs (n = 2*10^6, scan) --\n");
    let mut t = Table::new(vec!["contention coeff", "8-CPU speedup over 1 CPU"]);
    for coeff in [0.0f64, 0.027, 0.06, 0.12] {
        let mut cfg1 = vmach::MachineConfig::c90(1);
        cfg1.contention_coeff = coeff;
        let mut cfg8 = vmach::MachineConfig::c90(8);
        cfg8.contention_coeff = coeff;
        let mut r1 = SimRunner::new(Algorithm::ReidMiller, 1);
        r1.machine = cfg1;
        let mut r8 = SimRunner::new(Algorithm::ReidMiller, 8);
        r8.machine = cfg8;
        let t1 = r1.scan(&list, &values, &AddOp).cycles.get();
        let t8 = r8.scan(&list, &values, &AddOp).cycles.get();
        t.row(vec![format!("{coeff:.3}"), f2(t1 / t8)]);
    }
    out.push_str(&t.render());
    let mut s = Table::new(vec!["CPUs", "ns/vertex", "speedup"]);
    let base = SimRunner::new(Algorithm::ReidMiller, 1).scan(&list, &values, &AddOp).cycles;
    for p in [1usize, 2, 4, 8, 16] {
        let run = SimRunner::new(Algorithm::ReidMiller, p).scan(&list, &values, &AddOp);
        s.row(vec![p.to_string(), f2(run.ns_per_vertex()), f2(base.get() / run.cycles.get())]);
    }
    out.push_str("\nfull 16-CPU machine (the paper tuned only 1/2/4/8):\n");
    out.push_str(&s.render());
    out.push_str("paper: 'reduced bandwidths result in longer parallel times' — the\nspeedup degrades smoothly as the contention coefficient grows.\n");
    out
}

/// All ablations.
pub fn run() -> String {
    let mut out = String::from("== Ablations ==\n\n");
    out.push_str(&m_sweep());
    out.push('\n');
    out.push_str(&schedule_ablation());
    out.push('\n');
    out.push_str(&coin_bias());
    out.push('\n');
    out.push_str(&packed_encoding());
    out.push('\n');
    out.push_str(&phase2_strategy());
    out.push('\n');
    out.push_str(&bandwidth_sensitivity());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_coin_saves_time() {
        let n = 200_000usize;
        let list = gen::random_list(n, 9);
        let b05 = SimRunner::new(Algorithm::AndersonMiller, 1)
            .with_am(AmParams { male_bias: 0.5, ..AmParams::default() })
            .rank(&list)
            .cycles;
        let b09 = SimRunner::new(Algorithm::AndersonMiller, 1)
            .with_am(AmParams { male_bias: 0.9, ..AmParams::default() })
            .rank(&list)
            .cycles;
        assert!(b09.get() < b05.get() * 0.9);
    }

    #[test]
    fn packed_rank_saves_over_scan() {
        let n = 500_000usize;
        let list = gen::random_list(n, 10);
        let values = vec![1i64; n];
        let packed = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list);
        let scan = SimRunner::new(Algorithm::ReidMiller, 1).scan(&list, &values, &AddOp);
        let saving = 1.0 - packed.cycles.get() / scan.cycles.get();
        assert!(saving > 0.15 && saving < 0.45, "saving {saving:.2}");
    }

    #[test]
    fn never_packing_is_worse_than_tuned() {
        let n = 100_000usize;
        let list = gen::random_list(n, 11);
        let values = vec![1i64; n];
        let tuned_params = SimParams::tuned_scan(n, 1);
        let m = tuned_params.m;
        let tuned = SimRunner::new(Algorithm::ReidMiller, 1)
            .with_params(tuned_params)
            .scan(&list, &values, &AddOp);
        let nopack = SimRunner::new(Algorithm::ReidMiller, 1)
            .with_params(SimParams::no_packing(m))
            .scan(&list, &values, &AddOp);
        assert!(nopack.cycles.get() > tuned.cycles.get());
    }
}
