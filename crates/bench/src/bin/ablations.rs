//! Regenerates the paper's ablations artifact. See `repro::ablations`.
fn main() {
    print!("{}", repro::ablations::run());
}
