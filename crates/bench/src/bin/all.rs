//! Runs every experiment in sequence and prints a combined report —
//! the source material for `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p repro --release --bin all [--skip-host]`
//! (`--skip-host` omits the wall-clock host comparison, which is the
//! only machine-dependent section.)

fn main() {
    let skip_host = std::env::args().any(|a| a == "--skip-host");
    type Section = (&'static str, fn() -> String);
    let sections: Vec<Section> = vec![
        ("Table I", repro::table1::run),
        ("Table II", repro::table2::run),
        ("Fig. 1", repro::fig1::run),
        ("Fig. 3", repro::fig3::run),
        ("Fig. 9", repro::fig9::run),
        ("Fig. 10", repro::fig10::run),
        ("Fig. 11", repro::fig11::run),
        ("Model check (Eq. 3 / Eq. 5)", repro::model_check::run),
        ("Pipeline derivation", repro::pipeline_check::run),
        ("Ablations", repro::ablations::run),
    ];
    for (name, f) in sections {
        eprintln!(">>> running {name} ...");
        println!("{}", f());
        println!();
    }
    if !skip_host {
        eprintln!(">>> running host comparison (wall clock) ...");
        println!("{}", repro::host_compare::run());
    }
}
