//! `listrank-cli` — command-line driver for the library.
//!
//! ```text
//! cli gen <n> <file> [seed]                 write a random list to a file
//! cli rank <file> [host|sim] [alg] [procs]  rank a list file, print timing
//! cli demo <n> [alg]                        rank a generated list, both backends
//! cli tune <n> [procs] [rank|scan]          print model-tuned parameters
//! cli sweep <lo> <hi> [alg]                 ns/vertex across sizes (simulated)
//! ```
//!
//! List file format: line 1 = `n head`, then one link per line.

use listkit::{gen, Idx, LinkedList};
use listrank::{Algorithm, HostRunner, SimParams, SimRunner};
use std::io::{BufRead, BufWriter, Write};
use std::time::Instant;

fn parse_alg(s: &str) -> Result<Algorithm, String> {
    Algorithm::ALL.into_iter().find(|a| a.name() == s).ok_or_else(|| {
        format!(
            "unknown algorithm '{s}' (expected one of: {})",
            Algorithm::ALL.map(|a| a.name()).join(", ")
        )
    })
}

fn write_list(path: &str, list: &LinkedList) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "{} {}", list.len(), list.head())?;
    for &nx in list.links() {
        writeln!(w, "{nx}")?;
    }
    Ok(())
}

fn read_list(path: &str) -> Result<LinkedList, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut lines = std::io::BufReader::new(f).lines();
    let header = lines.next().ok_or("empty file")?.map_err(|e| e.to_string())?;
    let mut parts = header.split_whitespace();
    let n: usize = parts.next().ok_or("missing n")?.parse().map_err(|e| format!("n: {e}"))?;
    let head: Idx =
        parts.next().ok_or("missing head")?.parse().map_err(|e| format!("head: {e}"))?;
    let mut links = Vec::with_capacity(n);
    for (i, line) in lines.enumerate().take(n) {
        let line = line.map_err(|e| e.to_string())?;
        links.push(line.trim().parse::<Idx>().map_err(|e| format!("line {}: {e}", i + 2))?);
    }
    if links.len() != n {
        return Err(format!("expected {n} links, found {}", links.len()));
    }
    LinkedList::new(links, head).map_err(|e| format!("invalid list: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let n: usize = args
        .first()
        .ok_or("usage: gen <n> <file> [seed]")?
        .parse()
        .map_err(|e| format!("n: {e}"))?;
    let path = args.get(1).ok_or("usage: gen <n> <file> [seed]")?;
    let seed: u64 = args.get(2).map_or(Ok(42), |s| s.parse()).map_err(|e| format!("seed: {e}"))?;
    let list = gen::random_list(n, seed);
    write_list(path, &list).map_err(|e| e.to_string())?;
    println!("wrote {n}-vertex random list (seed {seed}) to {path}");
    Ok(())
}

fn cmd_rank(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: rank <file> [host|sim] [alg] [procs]")?;
    let backend = args.get(1).map(String::as_str).unwrap_or("host");
    let alg = parse_alg(args.get(2).map(String::as_str).unwrap_or("reid-miller"))?;
    let procs: usize =
        args.get(3).map_or(Ok(1), |s| s.parse()).map_err(|e| format!("procs: {e}"))?;
    let list = read_list(path)?;
    let n = list.len();
    match backend {
        "host" => {
            let t0 = Instant::now();
            let ranks = HostRunner::new(alg).rank(&list);
            let dt = t0.elapsed();
            println!(
                "{alg} (host): {n} vertices in {:.2} ms = {:.1} ns/vertex; tail rank {}",
                dt.as_secs_f64() * 1e3,
                dt.as_nanos() as f64 / n as f64,
                ranks[list.tail() as usize]
            );
        }
        "sim" => {
            let run = SimRunner::new(alg, procs).rank(&list);
            println!(
                "{alg} (simulated C90, {procs} CPU): {:.3} Mcycles = {:.1} ns/vertex",
                run.cycles.get() / 1e6,
                run.ns_per_vertex()
            );
        }
        other => return Err(format!("unknown backend '{other}' (host|sim)")),
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let n: usize =
        args.first().map_or(Ok(1_000_000), |s| s.parse()).map_err(|e| format!("n: {e}"))?;
    let alg = parse_alg(args.get(1).map(String::as_str).unwrap_or("reid-miller"))?;
    let list = gen::random_list(n, 1);
    let t0 = Instant::now();
    let host = HostRunner::new(alg).rank(&list);
    let host_ms = t0.elapsed().as_secs_f64() * 1e3;
    let sim = SimRunner::new(alg, 1).rank(&list);
    assert_eq!(host, sim.out, "backends disagree — please report a bug");
    println!("{alg} on {n} random vertices:");
    println!("  host:          {host_ms:.2} ms wall clock");
    println!(
        "  simulated C90: {:.3} Mcycles = {:.1} ns/vertex (1 CPU)",
        sim.cycles.get() / 1e6,
        sim.ns_per_vertex()
    );
    Ok(())
}

fn cmd_tune(args: &[String]) -> Result<(), String> {
    let n: usize = args
        .first()
        .ok_or("usage: tune <n> [procs] [rank|scan]")?
        .parse()
        .map_err(|e| format!("n: {e}"))?;
    let procs: usize =
        args.get(1).map_or(Ok(1), |s| s.parse()).map_err(|e| format!("procs: {e}"))?;
    let kind = args.get(2).map(String::as_str).unwrap_or("scan");
    let params = match kind {
        "rank" => SimParams::tuned_rank(n, procs),
        "scan" => SimParams::tuned_scan(n, procs),
        other => return Err(format!("unknown kind '{other}' (rank|scan)")),
    };
    println!("tuned {kind} parameters for n = {n}, {procs} CPU(s):");
    println!("  m (split positions): {}", params.m);
    println!("  pack schedule ({} balances): {:?}", params.schedule.len(), params.schedule);
    println!("  phase 2: {:?}", params.phase2);
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let lo: usize = args
        .first()
        .ok_or("usage: sweep <lo> <hi> [alg]")?
        .parse()
        .map_err(|e| format!("lo: {e}"))?;
    let hi: usize = args
        .get(1)
        .ok_or("usage: sweep <lo> <hi> [alg]")?
        .parse()
        .map_err(|e| format!("hi: {e}"))?;
    let alg = parse_alg(args.get(2).map(String::as_str).unwrap_or("reid-miller"))?;
    if lo < 2 || hi < lo {
        return Err("need 2 <= lo <= hi".into());
    }
    println!("{:<12} {:>12}", "n", "ns/vertex (simulated C90, 1 CPU)");
    let mut n = lo;
    while n <= hi {
        let list = gen::random_list(n, n as u64);
        let run = SimRunner::new(alg, 1).rank(&list);
        println!("{n:<12} {:>12.1}", run.ns_per_vertex());
        n *= 2;
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "gen" => cmd_gen(rest),
            "rank" => cmd_rank(rest),
            "demo" => cmd_demo(rest),
            "tune" => cmd_tune(rest),
            "sweep" => cmd_sweep(rest),
            other => Err(format!("unknown command '{other}'")),
        },
        None => Err("usage: cli <gen|rank|demo|tune|sweep> ...".into()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
