//! Regenerates the paper's fig1 artifact. See `repro::fig1`.
fn main() {
    print!("{}", repro::fig1::run());
}
