//! Regenerates the paper's fig10 artifact. See `repro::fig10`.
fn main() {
    print!("{}", repro::fig10::run());
}
