//! Regenerates the paper's fig11 artifact. See `repro::fig11`.
fn main() {
    print!("{}", repro::fig11::run());
}
