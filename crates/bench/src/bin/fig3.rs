//! Regenerates the paper's fig3 artifact. See `repro::fig3`.
fn main() {
    print!("{}", repro::fig3::run());
}
