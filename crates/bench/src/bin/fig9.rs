//! Regenerates the paper's fig9 artifact. See `repro::fig9`.
fn main() {
    print!("{}", repro::fig9::run());
}
