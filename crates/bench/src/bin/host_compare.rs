//! Regenerates the paper's host_compare artifact. See `repro::host_compare`.
fn main() {
    print!("{}", repro::host_compare::run());
}
