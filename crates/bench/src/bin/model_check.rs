//! Regenerates the paper's model_check artifact. See `repro::model_check`.
fn main() {
    print!("{}", repro::model_check::run());
}
