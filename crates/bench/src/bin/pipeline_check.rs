//! Regenerates the pipeline derivation table. See `repro::pipeline_check`.
fn main() {
    print!("{}", repro::pipeline_check::run());
}
