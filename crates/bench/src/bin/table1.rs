//! Regenerates the paper's table1 artifact. See `repro::table1`.
fn main() {
    print!("{}", repro::table1::run());
}
