//! Regenerates the paper's table2 artifact. See `repro::table2`.
fn main() {
    print!("{}", repro::table2::run());
}
