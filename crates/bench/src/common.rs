//! Shared harness utilities: size sweeps, aligned tables, ASCII plots.

use std::fmt::Write as _;

/// Log-spaced list lengths from `lo` to `hi` (inclusive-ish), `per_octave`
/// points per doubling.
pub fn logspace_sizes(lo: usize, hi: usize, per_octave: usize) -> Vec<usize> {
    assert!(lo >= 2 && hi >= lo && per_octave >= 1);
    let step = 2f64.powf(1.0 / per_octave as f64);
    let mut out = Vec::new();
    let mut x = lo as f64;
    while x <= hi as f64 * 1.0001 {
        let n = x.round() as usize;
        if out.last() != Some(&n) {
            out.push(n);
        }
        x *= step;
    }
    out
}

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with right-aligned numeric-ish columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncol {
                if i == 0 {
                    let _ = write!(line, "{:<width$}", cells[i], width = widths[i]);
                } else {
                    let _ = write!(line, "  {:>width$}", cells[i], width = widths[i]);
                }
            }
            line
        };
        let header = fmt_row(&self.headers, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// One plotted series: a label, a glyph, and (x, y) points.
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot glyph.
    pub glyph: char,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Render a log-log (or linear) ASCII scatter chart.
pub fn ascii_plot(
    title: &str,
    series: &[Series],
    logx: bool,
    logy: bool,
    width: usize,
    height: usize,
) -> String {
    let xs = |v: f64| if logx { v.max(1e-300).log10() } else { v };
    let ys = |v: f64| if logy { v.max(1e-300).log10() } else { v };
    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(xs(x));
            xmax = xmax.max(xs(x));
            ymin = ymin.min(ys(y));
            ymax = ymax.max(ys(y));
        }
    }
    if !xmin.is_finite() || xmax <= xmin {
        return format!("{title}\n(no data)\n");
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let cx = (((xs(x) - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            let cy = (((ys(y) - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = s.glyph;
        }
    }
    let unlog = |v: f64, log: bool| if log { 10f64.powf(v) } else { v };
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (i, row) in grid.iter().enumerate() {
        let yv = unlog(ymax - (ymax - ymin) * i as f64 / (height - 1) as f64, logy);
        let label = if i == 0 || i == height - 1 || i == height / 2 {
            format!("{yv:>10.1}")
        } else {
            " ".repeat(10)
        };
        let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(10), "-".repeat(width));
    let _ = writeln!(
        out,
        "{} {:<12.0}{:>width$.0}",
        " ".repeat(10),
        unlog(xmin, logx),
        unlog(xmax, logx),
        width = width - 11
    );
    for s in series {
        let _ = writeln!(out, "    {} = {}", s.glyph, s.label);
    }
    out
}

/// Format a float compactly for tables.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logspace_endpoints_and_monotone() {
        let s = logspace_sizes(64, 4096, 1);
        assert_eq!(s.first(), Some(&64));
        assert!(*s.last().unwrap() >= 4096);
        assert!(s.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(s.len(), 7); // 64,128,...,4096
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1.0"]);
        t.row(vec!["b", "22.5"]);
        let r = t.render();
        assert!(r.contains("alpha"));
        assert!(r.contains("22.5"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn plot_contains_glyphs_and_legend() {
        let s = Series {
            label: "ours".into(),
            glyph: 'o',
            points: vec![(100.0, 30.0), (1000.0, 20.0), (10000.0, 10.0)],
        };
        let p = ascii_plot("test", &[s], true, false, 40, 10);
        assert!(p.contains('o'));
        assert!(p.contains("ours"));
        assert!(p.contains("test"));
    }

    #[test]
    fn plot_empty_series_is_graceful() {
        let p = ascii_plot("empty", &[], true, true, 40, 10);
        assert!(p.contains("no data"));
    }
}
