//! **Fig. 1** — execution time per vertex of the five list-scan
//! algorithms on one (simulated) C90 CPU, across list lengths.
//!
//! The paper's observations to reproduce: the serial curve is flat at
//! ≈183 ns; Wyllie shows a log-growing sawtooth, wins for short lists
//! and crosses our curve near n ≈ 10³; the random-mate algorithms are
//! far above everything; our curve descends to ≈31 ns asymptotically.

use crate::common::{ascii_plot, f1, logspace_sizes, Series, Table};
use listkit::gen;
use listkit::ops::AddOp;
use listrank::{Algorithm, SimRunner};

/// ns/vertex of one algorithm at one size.
pub fn point(alg: Algorithm, n: usize) -> f64 {
    let list = gen::random_list(n, n as u64 ^ 0xfeed);
    let values = vec![1i64; n];
    SimRunner::new(alg, 1).scan(&list, &values, &AddOp).ns_per_vertex()
}

/// Regenerate Fig. 1.
pub fn run() -> String {
    let sizes = logspace_sizes(64, 1 << 22, 1);
    let algs = [
        (Algorithm::Serial, 's'),
        (Algorithm::Wyllie, 'w'),
        (Algorithm::MillerReif, 'm'),
        (Algorithm::AndersonMiller, 'a'),
        (Algorithm::ReidMiller, 'o'),
    ];
    let mut series: Vec<Series> = Vec::new();
    let mut table = Table::new(vec!["n", "serial", "wyllie", "miller-reif", "anderson", "ours"]);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); algs.len()];
    for &n in &sizes {
        for (ci, &(alg, _)) in algs.iter().enumerate() {
            columns[ci].push(point(alg, n));
        }
    }
    for (ri, &n) in sizes.iter().enumerate() {
        let mut row = vec![n.to_string()];
        row.extend(columns.iter().map(|c| f1(c[ri])));
        table.row(row);
    }
    for (ci, &(alg, glyph)) in algs.iter().enumerate() {
        series.push(Series {
            label: alg.name().to_string(),
            glyph,
            points: sizes.iter().zip(&columns[ci]).map(|(&n, &y)| (n as f64, y)).collect(),
        });
    }

    // Find the Wyllie/ours crossover (paper: ≈ 1000): the first size
    // after which ours stays ahead (at tiny sizes "ours" degenerates to
    // serial, which can momentarily beat Wyllie's startup — skip that).
    let wy = &columns[1];
    let ours = &columns[4];
    let last_wyllie_win = sizes.iter().zip(wy.iter().zip(ours)).rposition(|(_, (w, o))| w < o);
    let crossover = match last_wyllie_win {
        Some(i) if i + 1 < sizes.len() => Some(sizes[i + 1]),
        Some(_) => None, // Wyllie still winning at the largest size
        None => Some(sizes[0]),
    };

    let mut out = String::new();
    out.push_str("== Fig. 1: list-scan ns/vertex vs list length, 1 CPU ==\n\n");
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(&ascii_plot("ns/vertex (log-log)", &series, true, true, 72, 22));
    out.push_str(&format!(
        "\nWyllie/ours crossover: {} (paper: ≈1000)\n",
        crossover.map_or("none".into(), |n| n.to_string())
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        // Serial flat at ≈183 ns.
        assert!((point(Algorithm::Serial, 1 << 16) - 183.0).abs() < 5.0);
        // Wyllie beats ours on short lists, loses on long ones.
        let short = 256;
        let long = 1 << 20;
        assert!(point(Algorithm::Wyllie, short) < point(Algorithm::ReidMiller, short));
        assert!(point(Algorithm::Wyllie, long) > point(Algorithm::ReidMiller, long));
        // Ours asymptotically far below serial.
        assert!(point(Algorithm::ReidMiller, long) < 60.0);
        // Random mates are the slowest for long lists.
        assert!(point(Algorithm::MillerReif, long) > point(Algorithm::Serial, long));
    }
}
