//! **Fig. 10** — `g(x)`, the expected number of sublists longer than
//! `x`, with the optimal load-balancing step function for n = 10,000,
//! m = 199, l = 11 balances.

use crate::common::{ascii_plot, f1, Series, Table};
use rankmodel::coeffs::ModelCoeffs;
use rankmodel::expdist;
use rankmodel::schedule::Schedule;

/// Regenerate Fig. 10.
pub fn run() -> String {
    let (n, m) = (10_000f64, 199f64);
    let coeffs = ModelCoeffs::c90_scan();
    // The figure uses the combined Phase-1+3 coefficients (c/a ≈ 1.93).
    let c_over_a = coeffs.combined_c() / coeffs.combined_a();
    let sched = Schedule::with_length(n, m, 11, c_over_a, 1.0)
        .expect("an S1 giving l = 11 exists for the paper's parameters");

    let mut out = String::new();
    out.push_str("== Fig. 10: g(x) and the optimal pack schedule (n=10000, m=199, l=11) ==\n\n");

    let mut t = Table::new(vec!["i", "S_i (links)", "g(S_i) live", "step ΔS"]);
    let mut prev = 0.0;
    for (i, &s) in sched.points.iter().enumerate() {
        t.row(vec![(i + 1).to_string(), f1(s), f1(expdist::g(s, n, m)), f1(s - prev)]);
        prev = s;
    }
    out.push_str(&t.render());

    // Plot g(x) (dotted in the paper) and the live-vector step function.
    let gx: Vec<(f64, f64)> = (0..=180).map(|x| (x as f64, expdist::g(x as f64, n, m))).collect();
    let mut steps: Vec<(f64, f64)> = Vec::new();
    let seg = sched.segments();
    for w in seg.windows(2) {
        let live = expdist::g(w[0], n, m);
        let mut x = w[0];
        while x < w[1] {
            steps.push((x, live));
            x += 2.0;
        }
    }
    let series = [
        Series { label: "g(x) expected live".into(), glyph: '.', points: gx },
        Series { label: "vector length (packs at S_i)".into(), glyph: '#', points: steps },
    ];
    out.push('\n');
    out.push_str(&ascii_plot("live sublists vs links traversed", &series, false, false, 72, 20));
    out.push_str(&format!(
        "\nexpected longest sublist: {:.1} links; schedule covers {:.1}\n\
         paper: step gaps widen over time because completions slow down.\n",
        expdist::expected_longest(n, m),
        sched.points.last().copied().unwrap_or(0.0),
    ));

    // Monte-Carlo validation of g(x) itself (Eq. 2) — the quantity the
    // schedule is built from.
    let xs: Vec<usize> = sched.points.iter().map(|&s| s.round() as usize).collect();
    let emp = expdist::empirical_g(n as usize, m as usize, &xs, 50, 7);
    let mut v = Table::new(vec!["x = S_i", "analytic g(x)", "empirical (50 samples)"]);
    for (&x, &e) in xs.iter().zip(&emp) {
        v.row(vec![x.to_string(), f1(expdist::g(x as f64, n, m)), f1(e)]);
    }
    out.push_str("\nEq. (2) validation at the schedule points:\n");
    out.push_str(&v.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_schedule_properties() {
        let (n, m) = (10_000f64, 199f64);
        let coeffs = ModelCoeffs::c90_scan();
        let c_over_a = coeffs.combined_c() / coeffs.combined_a();
        let sched = Schedule::with_length(n, m, 11, c_over_a, 1.0).unwrap();
        assert_eq!(sched.len(), 11);
        // The step function lies on or above g(x): it only drops at packs.
        let seg = sched.segments();
        for w in seg.windows(2) {
            let live = expdist::g(w[0], n, m);
            assert!(live + 1e-9 >= expdist::g(w[1], n, m));
        }
    }
}
