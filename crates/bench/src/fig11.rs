//! **Fig. 11** — our list-scan execution time (ns per vertex) on 1, 2,
//! 4 and 8 C90 CPUs across list lengths: every curve descends toward
//! its asymptote (31 / 16 / 8.5 / 4.6 ns), and more CPUs need longer
//! lists to pay off.

use crate::common::{ascii_plot, f1, logspace_sizes, Series, Table};
use listkit::gen;
use listkit::ops::AddOp;
use listrank::{Algorithm, SimRunner};

/// ns/vertex of our scan at (n, p).
fn point(n: usize, p: usize) -> f64 {
    let list = gen::random_list(n, n as u64 * 3 + 1);
    let values = vec![1i64; n];
    SimRunner::new(Algorithm::ReidMiller, p).scan(&list, &values, &AddOp).ns_per_vertex()
}

/// Regenerate Fig. 11.
pub fn run() -> String {
    let sizes = logspace_sizes(1 << 10, 1 << 22, 1);
    let ps = [1usize, 2, 4, 8];
    let glyphs = ['1', '2', '4', '8'];
    let mut out = String::new();
    out.push_str("== Fig. 11: our list scan, ns/vertex on 1/2/4/8 CPUs ==\n\n");
    let mut t = Table::new(vec!["n", "1 cpu", "2 cpu", "4 cpu", "8 cpu"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for &n in &sizes {
        for (ci, &p) in ps.iter().enumerate() {
            cols[ci].push(point(n, p));
        }
    }
    for (ri, &n) in sizes.iter().enumerate() {
        let mut row = vec![n.to_string()];
        row.extend(cols.iter().map(|c| f1(c[ri])));
        t.row(row);
    }
    out.push_str(&t.render());
    let series: Vec<Series> = ps
        .iter()
        .enumerate()
        .map(|(ci, &p)| Series {
            label: format!("{p} CPU"),
            glyph: glyphs[ci],
            points: sizes.iter().zip(&cols[ci]).map(|(&n, &y)| (n as f64, y)).collect(),
        })
        .collect();
    out.push('\n');
    out.push_str(&ascii_plot("ns/vertex (log-log)", &series, true, true, 72, 20));
    out.push_str(
        "\npaper asymptotes: 31.1 / 16.4 / 8.4 / 4.6 ns per vertex (7.4/3.9/2.0/1.1 cycles).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymptotes_near_paper() {
        let n = 1 << 22;
        let paper = [31.1, 16.4, 8.4, 4.6];
        for (p, want) in [1usize, 2, 4, 8].iter().zip(paper) {
            let got = point(n, *p);
            assert!(
                got / want < 1.5 && want / got < 1.5,
                "p={p}: measured {got:.1} vs paper {want:.1} ns/vertex"
            );
        }
    }

    #[test]
    fn more_cpus_need_longer_lists() {
        // At small n, 8 CPUs are NOT 8× better (startup dominates).
        let small = 4096;
        let s = point(small, 1) / point(small, 8);
        assert!(s < 4.0, "8-CPU speedup at n=4096 should be weak, got {s:.2}");
    }
}
