//! **Fig. 3** — relative speedup of our list scan over its own 1-CPU
//! time, for 1..8 CPUs and several list lengths. Near-linear for long
//! lists; degraded by startup costs for short ones and by shared memory
//! bandwidth at high processor counts.

use crate::common::{ascii_plot, f2, Series, Table};
use listkit::gen;
use listkit::ops::AddOp;
use listrank::{Algorithm, SimRunner};

/// Cycles of our scan at (n, p).
fn cycles(n: usize, p: usize) -> f64 {
    let list = gen::random_list(n, n as u64 + 13);
    let values = vec![1i64; n];
    SimRunner::new(Algorithm::ReidMiller, p).scan(&list, &values, &AddOp).cycles.get()
}

/// Regenerate Fig. 3.
pub fn run() -> String {
    let ns = [10_000usize, 100_000, 1_000_000, 4_000_000];
    let ps = [1usize, 2, 4, 8];
    let mut out = String::new();
    out.push_str("== Fig. 3: relative speedup of our list scan ==\n\n");
    let mut t = Table::new(vec!["n \\ p", "1", "2", "4", "8"]);
    let mut series = Vec::new();
    let glyphs = ['a', 'b', 'c', 'd'];
    for (gi, &n) in ns.iter().enumerate() {
        let base = cycles(n, 1);
        let speedups: Vec<f64> = ps.iter().map(|&p| base / cycles(n, p)).collect();
        let mut row = vec![format!("{n}")];
        row.extend(speedups.iter().map(|&s| f2(s)));
        t.row(row);
        series.push(Series {
            label: format!("n = {n}"),
            glyph: glyphs[gi],
            points: ps.iter().zip(&speedups).map(|(&p, &s)| (p as f64, s)).collect(),
        });
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&ascii_plot("speedup vs CPUs", &series, false, false, 60, 16));
    out.push_str("\npaper: near-linear scaling for long lists; reduced speedup as p grows\n(memory bandwidth per CPU drops), poor speedup for short lists.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_shape() {
        let n = 1_000_000;
        let base = cycles(n, 1);
        let s2 = base / cycles(n, 2);
        let s8 = base / cycles(n, 8);
        assert!(s2 > 1.6 && s2 < 2.05, "2-CPU speedup {s2:.2}");
        assert!(s8 > 4.5 && s8 < 8.0, "8-CPU speedup {s8:.2}");
        // Short lists scale worse.
        let small_base = cycles(10_000, 1);
        let small_s8 = small_base / cycles(10_000, 8);
        assert!(small_s8 < s8, "short-list speedup must be worse");
    }
}
