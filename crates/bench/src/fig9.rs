//! **Fig. 9** — expected length of the j-th shortest sublist
//! (`(n/m)·ln((m+1)/(m−j+0.5))`) against observed lengths from 20
//! random samples, for n = 10,000 and several m.

use crate::common::{f1, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rankmodel::expdist;

/// Observed min/mean/max of the j-th shortest length over `samples`
/// draws.
fn observe(n: usize, m: usize, samples: usize, seed: u64) -> Vec<(usize, usize, f64, usize)> {
    let mut all: Vec<Vec<usize>> = Vec::with_capacity(samples);
    for s in 0..samples {
        let mut rng = StdRng::seed_from_u64(seed + s as u64);
        all.push(expdist::sample_sorted_lengths(n, m, &mut rng));
    }
    (0..=m)
        .map(|j| {
            let vals: Vec<usize> = all.iter().map(|lens| lens[j]).collect();
            let min = *vals.iter().min().unwrap();
            let max = *vals.iter().max().unwrap();
            let mean = vals.iter().sum::<usize>() as f64 / vals.len() as f64;
            (j, min, mean, max)
        })
        .collect()
}

/// Regenerate Fig. 9.
pub fn run() -> String {
    let n = 10_000usize;
    let mut out = String::new();
    out.push_str("== Fig. 9: expected vs observed j-th shortest sublist length ==\n");
    out.push_str(&format!("n = {n}, 20 samples; error bars are observed min..max\n\n"));
    for m in [49usize, 99, 199, 399] {
        let obs = observe(n, m, 20, 1994);
        let mut t = Table::new(vec!["j", "expected", "observed mean", "min", "max"]);
        // Sample ~10 js across the range, always including ends.
        let step = (m / 9).max(1);
        let mut js: Vec<usize> = (0..=m).step_by(step).collect();
        if *js.last().unwrap() != m {
            js.push(m);
        }
        for &j in &js {
            let e = expdist::expected_jth_shortest(j, n as f64, m as f64);
            let (_, min, mean, max) = obs[j];
            t.row(vec![j.to_string(), f1(e), f1(mean), min.to_string(), max.to_string()]);
        }
        out.push_str(&format!("m = {m}:\n{}\n", t.render()));
    }
    out.push_str(
        "paper: as m increases the longest sublist shortens and lengths vary less;\n\
         the analytic curve tracks the observed means.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_within_observed_envelope_mostly() {
        let (n, m) = (10_000usize, 199usize);
        let obs = observe(n, m, 20, 7);
        let mut inside = 0usize;
        let mut total = 0usize;
        for j in (5..m - 5).step_by(5) {
            let e = expdist::expected_jth_shortest(j, n as f64, m as f64);
            let (_, min, _, max) = obs[j];
            total += 1;
            if e >= min as f64 * 0.8 && e <= max as f64 * 1.2 {
                inside += 1;
            }
        }
        assert!(
            inside as f64 / total as f64 > 0.9,
            "expected curve should track observations: {inside}/{total}"
        );
    }

    #[test]
    fn longest_shrinks_with_m() {
        let n = 10_000f64;
        assert!(expdist::expected_longest(n, 399.0) < expdist::expected_longest(n, 99.0));
    }
}
