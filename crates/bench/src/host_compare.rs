//! **Host comparison** — the modern-hardware analogue of Table I /
//! Fig. 1: wall-clock ns/vertex of the five algorithms on this machine
//! (rayon backend), plus a thread-scaling sweep for the Reid-Miller
//! algorithm. Absolute numbers are machine-dependent; the *shape*
//! (work-efficient beats Wyllie asymptotically, serial wins for short
//! lists, near-linear thread scaling for long lists) is the paper's.

use crate::common::{f1, f2, logspace_sizes, Table};
use listkit::gen;
use listkit::LinkedList;
use listrank::{Algorithm, HostRunner};
use std::time::Instant;

/// Median-of-`reps` wall time (ns/vertex) of one host run.
pub fn time_rank(runner: &HostRunner, list: &LinkedList, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = runner.rank(list);
            let dt = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(out);
            dt / list.len() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Regenerate the host comparison.
pub fn run() -> String {
    let mut out = String::new();
    let threads = rayon::current_num_threads();
    out.push_str(&format!(
        "== Host backend: wall-clock ns/vertex on this machine ({threads} threads) ==\n\n"
    ));

    let sizes = logspace_sizes(1 << 12, 1 << 22, 1);
    let algs = [
        Algorithm::Serial,
        Algorithm::Wyllie,
        Algorithm::MillerReif,
        Algorithm::AndersonMiller,
        Algorithm::ReidMiller,
    ];
    let mut t = Table::new(vec!["n", "serial", "wyllie", "miller-reif", "anderson", "ours"]);
    for &n in &sizes {
        let list = gen::random_list(n, n as u64);
        let reps = if n <= 1 << 16 { 5 } else { 3 };
        let mut row = vec![n.to_string()];
        for alg in algs {
            row.push(f1(time_rank(&HostRunner::new(alg), &list, reps)));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    // Thread scaling of the Reid-Miller algorithm.
    out.push_str("\nReid-Miller thread scaling (rank, n = 2^22):\n");
    let list = gen::random_list(1 << 22, 99);
    let mut ts = Table::new(vec!["threads", "ns/vertex", "speedup"]);
    let base = time_rank(&HostRunner::new(Algorithm::ReidMiller).with_threads(1), &list, 3);
    let mut tcount = 1usize;
    while tcount <= threads {
        let v = time_rank(&HostRunner::new(Algorithm::ReidMiller).with_threads(tcount), &list, 3);
        ts.row(vec![tcount.to_string(), f1(v), f2(base / v)]);
        tcount *= 2;
    }
    out.push_str(&ts.render());
    out.push_str(
        "\nshapes to check against the paper: ours ≪ Wyllie for long lists;\n\
         random mates uncompetitive; scaling approaches thread count for long lists.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_beats_wyllie_on_long_lists_wallclock() {
        let list = gen::random_list(1 << 20, 5);
        let ours = time_rank(&HostRunner::new(Algorithm::ReidMiller), &list, 3);
        let wyllie = time_rank(&HostRunner::new(Algorithm::Wyllie), &list, 3);
        assert!(
            ours < wyllie,
            "work-efficient must beat O(n log n) at n=2^20: ours {ours:.0} vs wyllie {wyllie:.0} ns/vertex"
        );
    }
}
