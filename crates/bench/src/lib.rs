//! # repro — the experiment harness
//!
//! One module per table/figure of the paper, each exposing a `run()`
//! that regenerates the artifact as text (and is wrapped by a thin `bin`
//! target). `bin/all` runs everything — its output is the basis of
//! `EXPERIMENTS.md`.
//!
//! | artifact | module | binary |
//! |---|---|---|
//! | Table I  | [`table1`] | `cargo run -p repro --release --bin table1` |
//! | Table II | [`table2`] | `… --bin table2` |
//! | Fig. 1   | [`fig1`]   | `… --bin fig1` |
//! | Fig. 3   | [`fig3`]   | `… --bin fig3` |
//! | Fig. 9   | [`fig9`]   | `… --bin fig9` |
//! | Fig. 10  | [`fig10`]  | `… --bin fig10` |
//! | Fig. 11  | [`fig11`]  | `… --bin fig11` |
//! | Eq. 3/5  | [`model_check`] | `… --bin model_check` |
//! | host HW  | [`host_compare`] | `… --bin host_compare` |
//! | ablations| [`ablations`] | `… --bin ablations` |

pub mod ablations;
pub mod common;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig9;
pub mod host_compare;
pub mod model_check;
pub mod pipeline_check;
pub mod table1;
pub mod table2;
