//! **Model check** — paper §4.4: "When we use these estimates of m and
//! S1, we find that Eq. (3) accurately predicts and Eq. (5) over
//! estimates the actual execution time on one Cray C90 vector
//! processor." We verify the same relationship between the Eq. (3)
//! tuner prediction, the closed-form Eq. (5), and the simulator.

use crate::common::{f1, f2, Table};
use listkit::gen;
use listkit::ops::AddOp;
use listrank::{Algorithm, SimRunner};
use rankmodel::predict;
use rankmodel::tuner::{Tuner, TunerOptions};
use rankmodel::ModelCoeffs;

/// Compare at one size; returns (eq3, eq5, simulated) cycles.
pub fn compare(n: usize) -> (f64, f64, f64) {
    let mut tuner = Tuner::new(ModelCoeffs::c90_scan(), TunerOptions::c90(1));
    let t = tuner.tune(n);
    let eq3 = t.predicted;
    let eq5 = predict::eq5_estimate(n as f64, t.m.max(1) as f64, t.s1, t.l as f64);
    let list = gen::random_list(n, 5);
    let values = vec![1i64; n];
    let sim = SimRunner::new(Algorithm::ReidMiller, 1).scan(&list, &values, &AddOp).cycles.get();
    (eq3, eq5, sim)
}

/// Regenerate the model-check experiment.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Model check: Eq. (3) vs Eq. (5) vs simulation (1 CPU, scan) ==\n\n");
    let mut t =
        Table::new(vec!["n", "Eq3 (Mcyc)", "Eq5 (Mcyc)", "simulated (Mcyc)", "Eq3/sim", "Eq5/sim"]);
    for n in [10_000usize, 50_000, 200_000, 1_000_000, 4_000_000] {
        let (e3, e5, sim) = compare(n);
        t.row(vec![
            n.to_string(),
            f2(e3 / 1e6),
            f2(e5 / 1e6),
            f2(sim / 1e6),
            f2(e3 / sim),
            f2(e5 / sim),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nEq3/sim ≈ 1: the schedule-aware model predicts the simulator almost\n\
         exactly (the residual is the random sublist draw vs the expected g(x)).\n\
         Eq5 ≥ Eq3 by construction. The paper's stronger statement — Eq5\n\
         over-estimates the *hardware* (measured 7.4 cycles/vertex vs ≈8+\n\
         modelled) — shows up here as the simulator (built on the published\n\
         loop costs) running at {} cycles/vertex where the real C90 measured 7.4.\n",
        f1(compare(4_000_000).2 / 4_000_000.0)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_accurate_eq5_no_lower() {
        for n in [100_000usize, 1_000_000] {
            let (e3, e5, sim) = compare(n);
            let r3 = e3 / sim;
            assert!(r3 > 0.85 && r3 < 1.15, "n={n}: Eq3/sim = {r3:.2} should be ≈1");
            // Eq5 is a simplification that rounds 63→62 in the b-term but
            // folds the remaining terms upward; it must not undercut Eq3
            // by more than that rounding.
            assert!(e5 > e3 * 0.99, "n={n}: Eq5 ({e5:.0}) must not undercut Eq3 ({e3:.0})");
        }
    }
}
