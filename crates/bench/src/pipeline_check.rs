//! **Pipeline check** — derive the paper's published loop coefficients
//! from the microarchitectural model (`vmach::pipeline`): functional
//! units, chaining, startup, and the single gather/scatter pipe.

use crate::common::{f2, Table};
use vmach::pipeline::{kernels, per_element, schedule_strip, VLEN};

/// Regenerate the derivation table.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Pipeline model: derived vs published per-element loop costs ==\n\n");
    let mut t = Table::new(vec!["loop", "derived cyc/elem", "published", "error"]);
    let rows: [(&str, Vec<vmach::pipeline::VInstr>, f64); 5] = [
        ("InitialScan (scan, 2 gathers)", kernels::initial_scan(), 3.4),
        ("InitialScan (rank, packed)", kernels::initial_scan_rank(), 1.9),
        ("FinalScan (scan, +scatter)", kernels::final_scan(), 4.6),
        ("FinalScan (rank, packed)", kernels::final_scan_rank(), 3.3),
        ("Wyllie round (calibrated)", kernels::wyllie_round(), 2.8),
    ];
    for (name, prog, published) in rows {
        let derived = per_element(&prog);
        t.row(vec![
            name.to_string(),
            f2(derived),
            f2(published),
            format!("{:+.0}%", (derived / published - 1.0) * 100.0),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nshort-vector inefficiency (the paper's closing performance note):\n");
    let mut s = Table::new(vec!["strip length", "InitialScan cyc/elem"]);
    for n in [VLEN, 64, 32, 16, 8, 4] {
        s.row(vec![n.to_string(), f2(schedule_strip(&kernels::initial_scan(), n).per_element)]);
    }
    out.push_str(&s.render());
    out.push_str(
        "\nthe model: a single gather/scatter pipe at ≈0.6 elements/cycle is what\n\
         makes the published 3.4 cycles/element (two gathers) coherent; packing\n\
         (value,link) into one word halves the bottleneck — the rank fast path.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_derivations_within_25_percent() {
        for (prog, published) in [
            (kernels::initial_scan(), 3.4),
            (kernels::final_scan(), 4.6),
            (kernels::initial_scan_rank(), 1.9),
        ] {
            let derived = per_element(&prog);
            let err = (derived / published - 1.0).abs();
            assert!(err < 0.25, "derived {derived:.2} vs {published}: {err:.2}");
        }
    }
}
