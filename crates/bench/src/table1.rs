//! **Table I** — asymptotic ns/vertex for list rank and list scan:
//! DEC Alpha workstation (cache / memory) vs the Cray C90 (serial /
//! vectorized / 2 / 4 / 8 CPUs).

use crate::common::{f1, Table};
use listkit::gen;
use listkit::ops::AddOp;
use listrank::{Algorithm, SimRunner};
use vmach::workstation::WorkstationModel;

/// Paper's published values for side-by-side comparison.
const PAPER_RANK: [f64; 7] = [98.0, 690.0, 177.0, 21.3, 10.9, 5.8, 3.1];
const PAPER_SCAN: [f64; 7] = [200.0, 990.0, 183.0, 30.8, 16.1, 8.5, 4.6];

/// Measure one row (rank or scan) across all seven columns.
fn measure(rank: bool) -> Vec<f64> {
    let mut out = Vec::with_capacity(7);
    // Alpha "cache": a list that fits the 2 MB board cache, pre-warmed.
    let small = gen::random_list(50_000, 41);
    // Alpha "memory": far larger than the cache, random order.
    let big = gen::random_list(4_000_000, 42);
    let alpha = WorkstationModel::dec_alpha();
    let (cache_run, mem_run) = if rank {
        (
            alpha.run_rank(small.links(), small.head(), true),
            alpha.run_rank(big.links(), big.head(), true),
        )
    } else {
        (
            alpha.run_scan(small.links(), small.head(), true),
            alpha.run_scan(big.links(), big.head(), true),
        )
    };
    out.push(cache_run.ns_per_vertex);
    out.push(mem_run.ns_per_vertex);

    // C90: asymptotic regime (4M vertices).
    let n = 4_000_000;
    let list = gen::random_list(n, 7);
    let values = vec![1i64; n];
    let serial = SimRunner::new(Algorithm::Serial, 1);
    out.push(if rank {
        serial.rank(&list).ns_per_vertex()
    } else {
        serial.scan(&list, &values, &AddOp).ns_per_vertex()
    });
    for p in [1usize, 2, 4, 8] {
        let ours = SimRunner::new(Algorithm::ReidMiller, p);
        out.push(if rank {
            ours.rank(&list).ns_per_vertex()
        } else {
            ours.scan(&list, &values, &AddOp).ns_per_vertex()
        });
    }
    out
}

/// Regenerate Table I.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Table I: asymptotic execution time (ns per vertex) ==\n");
    out.push_str("columns: DEC Alpha cache | Alpha memory | C90 serial | C90 1 CPU (vectorized) | 2 | 4 | 8\n\n");
    let rank = measure(true);
    let scan = measure(false);
    let mut t = Table::new(vec![
        "algorithm",
        "alpha-cache",
        "alpha-mem",
        "c90-serial",
        "1 cpu",
        "2 cpu",
        "4 cpu",
        "8 cpu",
    ]);
    let push = |t: &mut Table, name: &str, vals: &[f64]| {
        let mut row = vec![name.to_string()];
        row.extend(vals.iter().map(|&v| f1(v)));
        t.row(row);
    };
    push(&mut t, "list rank (measured)", &rank);
    push(&mut t, "list rank (paper)", &PAPER_RANK);
    push(&mut t, "list scan (measured)", &scan);
    push(&mut t, "list scan (paper)", &PAPER_SCAN);
    out.push_str(&t.render());

    // Headline claims.
    let speedup_ws = rank[1] / rank[6];
    let speedup_serial_1 = rank[2] / rank[3];
    let speedup_serial_8 = rank[2] / rank[6];
    out.push_str(&format!(
        "\nheadlines (paper: ≈200× over the Alpha on 8 CPUs; >8× over C90 serial on 1; ≈50× on 8):\n\
           8-CPU rank vs Alpha memory: {:.0}x\n\
           1-CPU rank vs C90 serial:   {:.1}x\n\
           8-CPU rank vs C90 serial:   {:.1}x\n",
        speedup_ws, speedup_serial_1, speedup_serial_8
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let rank = measure(true);
        // Cache ≪ memory on the workstation.
        assert!(rank[0] < rank[1] * 0.3);
        // Vectorized ≪ serial on the C90; scaling monotone in p.
        assert!(rank[3] < rank[2] / 4.0);
        assert!(rank[4] < rank[3] && rank[5] < rank[4] && rank[6] < rank[5]);
        // Within 2× of every paper value.
        for (got, want) in rank.iter().zip(&PAPER_RANK) {
            assert!(got / want < 2.0 && want / got < 2.0, "measured {got:.1} vs paper {want:.1}");
        }
    }
}
