//! **Table II** — comparison of the list-ranking algorithms: asymptotic
//! time/work (paper's analytic columns) next to *measured* cycles, work
//! (element-operations) and extra space from instrumented simulator
//! runs.

use crate::common::{f1, f2, Table};
use listkit::gen;
use listrank::{Algorithm, SimRunner};

/// Regenerate Table II (measured side) with the paper's analytic
/// claims inline.
pub fn run() -> String {
    let n = 1_000_000usize;
    let list = gen::random_list(n, 11);
    let mut out = String::new();
    out.push_str("== Table II: list-ranking algorithms at n = 10^6, 1 CPU ==\n");
    out.push_str("paper columns: Time / Work / Constants / Space (beyond the list)\n\n");

    let mut t = Table::new(vec![
        "algorithm",
        "paper time",
        "paper work",
        "paper space",
        "cyc/vertex",
        "ops/vertex",
        "extra words",
    ]);
    let analytic: [(Algorithm, &str, &str, &str); 5] = [
        (Algorithm::Serial, "O(n)", "O(n)", "c"),
        (Algorithm::Wyllie, "O(n log n / p + log n)", "O(n log n)", "n+c"),
        (Algorithm::MillerReif, "O(n/p + log n)", "O(n)", ">2n"),
        (Algorithm::AndersonMiller, "O(n/p + log n)", "O(n)", ">2n"),
        (Algorithm::ReidMiller, "O(n/p + log^2 n)", "O(n)", "5p+c"),
    ];
    for (alg, time, work, space) in analytic {
        let run = SimRunner::new(alg, 1).rank(&list);
        t.row(vec![
            alg.name().to_string(),
            time.to_string(),
            work.to_string(),
            space.to_string(),
            f2(run.cycles_per_vertex()),
            f2(run.ops_per_vertex()),
            run.extra_words.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nnotes: ops/vertex is the charged element-operation count (work \
         measure).\nReid-Miller's extra words are 5(m+1) — thousands, not \
         millions; the random-mate\nalgorithms carry working links, values \
         and an event stack (>2n words).\n",
    );

    // Ratios the paper reports in §2.3/§2.4.
    let ours = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list).cycles;
    let serial = SimRunner::new(Algorithm::Serial, 1).rank(&list).cycles;
    let mr = SimRunner::new(Algorithm::MillerReif, 1).rank(&list).cycles;
    let am = SimRunner::new(Algorithm::AndersonMiller, 1).rank(&list).cycles;
    out.push_str(&format!(
        "\nratios (paper: MR ≈ 20× ours & 3.5× serial; AM ≈ 3× faster than MR, 7× slower than ours):\n\
           miller-reif / ours:       {}\n\
           miller-reif / serial:     {}\n\
           miller-reif / anderson:   {}\n\
           anderson-miller / ours:   {}\n",
        f1(mr / ours),
        f2(mr / serial),
        f2(mr / am),
        f1(am / ours),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_efficiency_ordering() {
        let n = 200_000;
        let list = gen::random_list(n, 3);
        let serial = SimRunner::new(Algorithm::Serial, 1).rank(&list);
        let wyllie = SimRunner::new(Algorithm::Wyllie, 1).rank(&list);
        let ours = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list);
        // Work: serial 1/vertex; ours ≈ 2+/vertex; Wyllie ≈ log n.
        assert!(serial.ops_per_vertex() <= 1.01);
        assert!(ours.ops_per_vertex() < 4.0);
        assert!(wyllie.ops_per_vertex() > 10.0);
        // Space: ours ≪ n; Wyllie and random mates Ω(n).
        assert!(ours.extra_words < n / 10);
        assert!(wyllie.extra_words >= n);
    }
}
