//! Offline shim for the `criterion` API surface used by this workspace.
//!
//! Benchmarks register through [`criterion_group!`] / [`criterion_main!`]
//! and measure with [`Bencher::iter`]. The shim does a fixed warm-up,
//! then times batches until it has a stable sample, and prints a
//! plain-text report (mean time per iteration, plus derived throughput
//! when [`BenchmarkGroup::throughput`] was set). No statistics machinery,
//! no HTML — enough to compare configurations locally and in CI logs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_QUICK=1 shortens runs (used by CI smoke builds).
        let quick = std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { target_time: Duration::from_millis(if quick { 50 } else { 400 }) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher::new(self.target_time);
        f(&mut b);
        b.report(&id.0, None);
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.target_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0), self.throughput);
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.target_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0), self.throughput);
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    target_time: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(target_time: Duration) -> Self {
        Bencher { target_time, iters: 0, elapsed: Duration::ZERO }
    }

    /// Measure `f`, called repeatedly until the sample is stable.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration: one untimed call.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        // Aim for the target time, capped to keep giant cases bounded.
        let iters = (self.target_time.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{label:<48} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        let time = format_time(per_iter);
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / per_iter;
                println!("{label:<48} {time:>12}/iter  {:>14}/s", format_count(rate));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / per_iter;
                println!("{label:<48} {time:>12}/iter  {:>12}B/s", format_count(rate));
            }
            None => println!("{label:<48} {time:>12}/iter  ({} iters)", self.iters),
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn format_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
