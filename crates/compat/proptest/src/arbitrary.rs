//! `any::<T>()` — the full-range strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full range of `T` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// The strategy sampling uniformly from all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range; avoids NaN/inf,
        // which property tests here never want.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}
