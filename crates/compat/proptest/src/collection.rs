//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for vectors with element strategy `S` and a length range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec` whose length is drawn from `len` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
