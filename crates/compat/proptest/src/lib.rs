//! Offline shim for the `proptest` API surface used by this workspace.
//!
//! Supports the `proptest!` macro with an optional
//! `#![proptest_config(...)]` attribute, strategies built from integer
//! and float ranges, tuples, [`arbitrary::any`], and
//! [`collection::vec`], plus `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`.
//!
//! Inputs are sampled from a deterministic per-test RNG (seeded from the
//! test's name), so failures reproduce across runs. There is no
//! shrinking: a failing case panics with the sampled inputs visible in
//! the assertion message.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Glob import matching `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition (expands to `continue` in the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each function runs `config.cases` times with
/// inputs sampled from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&$strat, &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}
