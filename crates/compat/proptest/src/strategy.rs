//! The [`Strategy`] trait and strategies over ranges and tuples.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The type of sampled values.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy yielding a single constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                // Rounding can land exactly on `end`; stay half-open.
                v.min(self.end.next_down())
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

// Strategies are sampled through `&S` references inside generated code;
// a blanket impl keeps composed strategies (e.g. tuples of references)
// working.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}
