//! Test configuration and the deterministic case RNG.

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic RNG for sampling test inputs (SplitMix64 stream seeded
/// from the test's fully-qualified name, so every test draws an
/// independent, reproducible sequence).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)` (`span > 0`).
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
