//! Offline shim for the `rand` API surface used by this workspace.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`] and [`RngExt::random_range`] over
//! integer and float ranges. The generator is deterministic per seed and
//! stable across releases — a property the experiment harness relies on
//! (the real `rand` changes `StdRng` between versions).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Small, fast, and statistically solid for workload
    /// generation and randomized algorithms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range from which a uniform value can be drawn.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a `u64` uniformly from `[0, span)` without modulo bias
/// (Lemire's multiply-shift; the tiny residual bias for astronomically
/// large spans is irrelevant here).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full 64-bit range: every word is uniform already.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + unit * (self.end - self.start);
                // `start + unit*(end-start)` can round up to `end` when
                // ulp(start) exceeds the residual gap; keep the range
                // half-open like the real crate does.
                v.min(self.end.next_down())
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A value drawn uniformly from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniform boolean.
    #[inline]
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.random_range(0..u64::MAX)).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_full_u32_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_high = false;
        for _ in 0..1000 {
            let v = rng.random_range(0..=u32::MAX);
            seen_high |= v > u32::MAX / 2;
        }
        assert!(seen_high);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} far from uniform");
        }
    }
}
