//! The parallel-iterator subset.
//!
//! Adaptors are lazy structs over slices, owned vecs, or index ranges;
//! terminal operations (`for_each`, `collect`, `unzip`) split the index
//! space into contiguous chunks and execute on scoped threads, falling
//! back to an inline loop for small inputs where spawn cost would
//! dominate.

use std::ops::Range;

/// Below roughly this many items per would-be chunk, run inline.
const MIN_CHUNK: usize = 1024;

/// How many chunks/threads to use for `n` items, at least `min_len`
/// items per chunk. `min_len` defaults to [`MIN_CHUNK`] and is lowered
/// by `with_min_len` for coarse-grained items (e.g. one shard of a
/// sharded list per element), mirroring rayon's
/// `IndexedParallelIterator::with_min_len`.
fn threads_for(n: usize, min_len: usize) -> usize {
    let min_len = min_len.max(1);
    if n < 2 * min_len {
        return 1;
    }
    crate::current_num_threads().max(1).min(n.div_ceil(min_len))
}

/// `k` contiguous, order-preserving `(lo, hi)` ranges covering `0..n`.
fn bounds(n: usize, k: usize) -> Vec<(usize, usize)> {
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut lo = 0;
    for i in 0..k {
        let hi = lo + base + usize::from(i < extra);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Run `f(lo, hi)` over chunk ranges, in parallel when worthwhile.
fn run_chunks<F: Fn(usize, usize) + Sync>(n: usize, min_len: usize, f: F) {
    let k = threads_for(n, min_len);
    if k <= 1 {
        f(0, n);
        return;
    }
    std::thread::scope(|s| {
        for (lo, hi) in bounds(n, k) {
            let f = &f;
            s.spawn(move || f(lo, hi));
        }
    });
}

/// Ordered parallel collect: concatenate per-chunk vectors.
fn collect_chunks<U: Send, F: Fn(usize, usize) -> Vec<U> + Sync>(
    n: usize,
    min_len: usize,
    f: F,
) -> Vec<U> {
    let k = threads_for(n, min_len);
    if k <= 1 {
        return f(0, n);
    }
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(k);
        for (lo, hi) in bounds(n, k) {
            let f = &f;
            handles.push(s.spawn(move || f(lo, hi)));
        }
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.append(&mut h.join().expect("compat-rayon worker panicked"));
        }
        out
    })
}

// ---------------------------------------------------------------- traits

/// `.par_iter()` on slices (and anything that derefs to one).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed parallel iterator.
    type Iter;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self, min_len: MIN_CHUNK }
    }
}

/// `.par_iter_mut()` on slices.
pub trait IntoParallelRefMutIterator<'a> {
    /// The mutably-borrowed parallel iterator.
    type Iter;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { slice: self, min_len: MIN_CHUNK }
    }
}

/// `.into_par_iter()` on owning collections and index ranges.
pub trait IntoParallelIterator {
    /// The owning parallel iterator.
    type Iter;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { vec: self, min_len: MIN_CHUNK }
    }
}

/// Integer types usable as parallel range indices.
pub trait ParIndex: Copy + Send + Sync {
    /// Widen to `usize`.
    fn to_usize(self) -> usize;
    /// Narrow from `usize` (caller guarantees fit).
    fn from_usize(i: usize) -> Self;
}

macro_rules! impl_par_index {
    ($($t:ty),*) => {$(
        impl ParIndex for $t {
            #[inline]
            fn to_usize(self) -> usize { self as usize }
            #[inline]
            fn from_usize(i: usize) -> Self { i as $t }
        }
    )*};
}

impl_par_index!(usize, u32, u64, i32, i64);

impl<I: ParIndex> IntoParallelIterator for Range<I> {
    type Iter = ParRange<I>;
    fn into_par_iter(self) -> ParRange<I> {
        ParRange::from(self)
    }
}

/// Parallel in-place slice operations.
pub trait ParallelSliceMut<T> {
    /// Sort (unstable). The shim sorts chunks on scoped threads and
    /// merges; small slices sort inline.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send,
    {
        let n = self.len();
        let k = threads_for(n, MIN_CHUNK);
        if k <= 1 {
            self.sort_unstable();
            return;
        }
        // Sort contiguous chunks in parallel...
        {
            let mut rest = &mut self[..];
            std::thread::scope(|s| {
                for (lo, hi) in bounds(n, k) {
                    let (chunk, tail) = rest.split_at_mut(hi - lo);
                    rest = tail;
                    s.spawn(move || chunk.sort_unstable());
                }
            });
        }
        // ...then one adaptive stable pass merges the k sorted runs:
        // std's stable sort detects pre-sorted runs, so this is a
        // near-linear merge rather than a fresh O(n log n) sort.
        self.sort();
    }
}

// ------------------------------------------------------------ borrowing

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Lower the minimum items-per-chunk threshold (rayon's
    /// `with_min_len`): coarse items — a whole shard per element, say —
    /// deserve a thread each even when the vector is short.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Parallel map.
    pub fn map<U, F: Fn(&'a T) -> U>(self, f: F) -> ParSliceMap<'a, T, F> {
        ParSliceMap { slice: self.slice, f, min_len: self.min_len }
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParSliceEnum<'a, T> {
        ParSliceEnum { slice: self.slice, min_len: self.min_len }
    }

    /// Parallel for-each.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let slice = self.slice;
        run_chunks(slice.len(), self.min_len, |lo, hi| {
            for item in &slice[lo..hi] {
                f(item);
            }
        });
    }
}

/// `par_iter().map(f)`.
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
    min_len: usize,
}

impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
    /// Ordered parallel collect.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
        C: From<Vec<U>>,
    {
        let (slice, f) = (self.slice, &self.f);
        collect_chunks(slice.len(), self.min_len, |lo, hi| slice[lo..hi].iter().map(f).collect())
            .into()
    }
}

/// `par_iter().enumerate()`.
pub struct ParSliceEnum<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParSliceEnum<'a, T> {
    /// Lower the minimum items-per-chunk threshold (see
    /// [`ParSlice::with_min_len`]).
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Parallel for-each over `(index, &item)`.
    pub fn for_each<F: Fn((usize, &'a T)) + Sync>(self, f: F) {
        let slice = self.slice;
        run_chunks(slice.len(), self.min_len, |lo, hi| {
            for (i, item) in slice[lo..hi].iter().enumerate() {
                f((lo + i, item));
            }
        });
    }

    /// Parallel map over `(index, &item)`.
    pub fn map<U, F: Fn((usize, &'a T)) -> U>(self, f: F) -> ParSliceEnumMap<'a, T, F> {
        ParSliceEnumMap { slice: self.slice, f, min_len: self.min_len }
    }
}

/// `par_iter().enumerate().map(f)`.
pub struct ParSliceEnumMap<'a, T, F> {
    slice: &'a [T],
    f: F,
    min_len: usize,
}

impl<'a, T: Sync, F> ParSliceEnumMap<'a, T, F> {
    /// Ordered parallel collect.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn((usize, &'a T)) -> U + Sync,
        U: Send,
        C: From<Vec<U>>,
    {
        let (slice, f) = (self.slice, &self.f);
        collect_chunks(slice.len(), self.min_len, |lo, hi| {
            slice[lo..hi].iter().enumerate().map(|(i, item)| f((lo + i, item))).collect()
        })
        .into()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
    min_len: usize,
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Lower the minimum items-per-chunk threshold (see
    /// [`ParSlice::with_min_len`]).
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Zip with a borrowed parallel iterator.
    pub fn zip<'b, U: Sync>(self, other: ParSlice<'b, U>) -> ParZipMutRef<'a, 'b, T, U> {
        ParZipMutRef { left: self.slice, right: other.slice, min_len: self.min_len }
    }

    /// Parallel for-each over `&mut` items.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        let n = self.slice.len();
        let k = threads_for(n, self.min_len);
        if k <= 1 {
            self.slice.iter_mut().for_each(f);
            return;
        }
        let mut rest = self.slice;
        std::thread::scope(|s| {
            for (lo, hi) in bounds(n, k) {
                let (chunk, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let f = &f;
                s.spawn(move || chunk.iter_mut().for_each(f));
            }
        });
    }
}

/// `par_iter_mut().zip(par_iter())`.
pub struct ParZipMutRef<'a, 'b, T, U> {
    left: &'a mut [T],
    right: &'b [U],
    min_len: usize,
}

impl<T: Send, U: Sync> ParZipMutRef<'_, '_, T, U> {
    /// Parallel for-each over `(&mut left, &right)` pairs.
    pub fn for_each<F: Fn((&mut T, &U)) + Sync>(self, f: F) {
        let n = self.left.len().min(self.right.len());
        let right = &self.right[..n];
        let k = threads_for(n, self.min_len);
        if k <= 1 {
            for (a, b) in self.left[..n].iter_mut().zip(right) {
                f((a, b));
            }
            return;
        }
        let mut rest = &mut self.left[..n];
        std::thread::scope(|s| {
            for (lo, hi) in bounds(n, k) {
                let (chunk, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let r = &right[lo..hi];
                let f = &f;
                s.spawn(move || {
                    for (a, b) in chunk.iter_mut().zip(r) {
                        f((a, b));
                    }
                });
            }
        });
    }
}

// --------------------------------------------------------------- ranges

/// Parallel iterator over an integer range.
pub struct ParRange<I> {
    start: usize,
    end: usize,
    min_len: usize,
    _marker: std::marker::PhantomData<I>,
}

impl<I: ParIndex> ParRange<I> {
    fn new(start: usize, end: usize) -> Self {
        ParRange { start, end, min_len: MIN_CHUNK, _marker: std::marker::PhantomData }
    }

    fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Lower the minimum items-per-chunk threshold (see
    /// [`ParSlice::with_min_len`]).
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Parallel for-each over indices.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        let start = self.start;
        run_chunks(self.len(), self.min_len, |lo, hi| {
            for i in lo..hi {
                f(I::from_usize(start + i));
            }
        });
    }

    /// Parallel map over indices.
    pub fn map<U, F: Fn(I) -> U>(self, f: F) -> ParRangeMap<I, F> {
        ParRangeMap { range: self, f }
    }

    /// Parallel filter-map over indices (order-preserving).
    pub fn filter_map<U, F: Fn(I) -> Option<U>>(self, f: F) -> ParRangeFilterMap<I, F> {
        ParRangeFilterMap { range: self, f }
    }
}

/// `into_par_iter().map(f)` over a range.
pub struct ParRangeMap<I, F> {
    range: ParRange<I>,
    f: F,
}

impl<I: ParIndex, F> ParRangeMap<I, F> {
    /// Ordered parallel collect.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(I) -> U + Sync,
        U: Send,
        C: From<Vec<U>>,
    {
        let (start, f) = (self.range.start, &self.f);
        collect_chunks(self.range.len(), self.range.min_len, |lo, hi| {
            (lo..hi).map(|i| f(I::from_usize(start + i))).collect()
        })
        .into()
    }

    /// Ordered parallel unzip of pair-valued maps.
    pub fn unzip<A, B>(self) -> (Vec<A>, Vec<B>)
    where
        F: Fn(I) -> (A, B) + Sync,
        A: Send,
        B: Send,
    {
        let (start, f) = (self.range.start, &self.f);
        let pairs: Vec<(A, B)> = collect_chunks(self.range.len(), self.range.min_len, |lo, hi| {
            (lo..hi).map(|i| f(I::from_usize(start + i))).collect()
        });
        let mut left = Vec::with_capacity(pairs.len());
        let mut right = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            left.push(a);
            right.push(b);
        }
        (left, right)
    }
}

/// `into_par_iter().filter_map(f)` over a range.
pub struct ParRangeFilterMap<I, F> {
    range: ParRange<I>,
    f: F,
}

impl<I: ParIndex, F> ParRangeFilterMap<I, F> {
    /// Ordered parallel collect of the retained items.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(I) -> Option<U> + Sync,
        U: Send,
        C: From<Vec<U>>,
    {
        let (start, f) = (self.range.start, &self.f);
        collect_chunks(self.range.len(), self.range.min_len, |lo, hi| {
            (lo..hi).filter_map(|i| f(I::from_usize(start + i))).collect()
        })
        .into()
    }
}

impl<I: ParIndex> IntoParallelIterator for std::ops::RangeInclusive<I> {
    type Iter = ParRange<I>;
    fn into_par_iter(self) -> ParRange<I> {
        ParRange::new(self.start().to_usize(), self.end().to_usize() + 1)
    }
}

// Hook the Range impl up through the constructor (kept private above).
impl<I: ParIndex> From<Range<I>> for ParRange<I> {
    fn from(r: Range<I>) -> Self {
        ParRange::new(r.start.to_usize(), r.end.to_usize())
    }
}

// ---------------------------------------------------------------- owned

/// Parallel iterator over an owned `Vec<T>`.
pub struct ParVec<T> {
    vec: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParVec<T> {
    /// Lower the minimum items-per-chunk threshold (see
    /// [`ParSlice::with_min_len`]).
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Parallel map, consuming the vector.
    pub fn map<U, F: Fn(T) -> U>(self, f: F) -> ParVecMap<T, F> {
        ParVecMap { vec: self.vec, f, min_len: self.min_len }
    }

    /// Parallel for-each, consuming the vector.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let _: Vec<()> = self.map(f).collect();
    }
}

/// Split a vector into `k` contiguous owned parts.
fn split_vec<T>(mut v: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let cuts = bounds(v.len(), k);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(k);
    for &(lo, _) in cuts.iter().skip(1).rev() {
        parts.push(v.split_off(lo));
    }
    parts.push(v);
    parts.reverse();
    parts
}

/// `into_par_iter().map(f)` over an owned vec.
pub struct ParVecMap<T, F> {
    vec: Vec<T>,
    f: F,
    min_len: usize,
}

impl<T: Send, F> ParVecMap<T, F> {
    /// Ordered parallel collect.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(T) -> U + Sync,
        U: Send,
        C: From<Vec<U>>,
    {
        let n = self.vec.len();
        let k = threads_for(n, self.min_len);
        let f = &self.f;
        if k <= 1 {
            return self.vec.into_iter().map(f).collect::<Vec<U>>().into();
        }
        let parts = split_vec(self.vec, k);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(k);
            for part in parts {
                handles.push(s.spawn(move || part.into_iter().map(f).collect::<Vec<U>>()));
            }
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.append(&mut h.join().expect("compat-rayon worker panicked"));
            }
            out
        })
        .into()
    }
}
