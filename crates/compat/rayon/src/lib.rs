//! Offline shim for the `rayon` API surface used by this workspace.
//!
//! Implements the data-parallel subset `listrank` and the examples use —
//! `par_iter` / `par_iter_mut` / `into_par_iter` over slices, vecs and
//! index ranges, with `map` / `enumerate` / `zip` / `filter_map` /
//! `for_each` / `collect` / `unzip` — executing on **scoped OS threads**
//! with contiguous chunking. Inputs below a cutoff run inline, so the
//! per-call thread-spawn cost is only paid where it is amortized.
//!
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] set the thread budget
//! for parallel operations dispatched inside `install`; there is no
//! persistent worker pool (threads are scoped per operation), which keeps
//! the shim dependency-free while preserving rayon's semantics for the
//! call patterns in this workspace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;

pub mod iter;

/// Re-exports matching `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel operations may use on this thread:
/// the installed pool's size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let t = CURRENT_THREADS.with(|c| c.get());
    if t > 0 {
        t
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Error building a thread pool (the shim cannot actually fail, but the
/// signature matches rayon's).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the pool's thread count (`0` = available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A thread budget for parallel operations. The shim has no resident
/// workers; [`ThreadPool::install`] scopes the budget and operations
/// spawn scoped threads on demand.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Number of threads this pool grants.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// Run `f` with this pool's thread budget in effect.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        CURRENT_THREADS.with(|c| {
            let old = c.get();
            c.set(self.num_threads);
            let out = f();
            c.set(old);
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn map_collect_matches_serial() {
        let xs: Vec<u64> = (0..100_000).collect();
        let got: Vec<u64> = xs.par_iter().map(|&x| x * 3 + 1).collect();
        let want: Vec<u64> = xs.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_unzip_ordered() {
        let (a, b): (Vec<usize>, Vec<usize>) =
            (0..50_000usize).into_par_iter().map(|i| (i, i * 2)).unzip();
        assert_eq!(a, (0..50_000).collect::<Vec<_>>());
        assert_eq!(b[123], 246);
    }

    #[test]
    fn filter_map_preserves_order() {
        let got: Vec<u32> =
            (0..10_000u32).into_par_iter().filter_map(|i| (i % 3 == 0).then_some(i)).collect();
        let want: Vec<u32> = (0..10_000).filter(|i| i % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zip_mut_writes_every_slot() {
        let src: Vec<usize> = (0..30_000).collect();
        let mut dst = vec![0usize; 30_000];
        dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, &s)| *d = s + 7);
        assert!(dst.iter().enumerate().all(|(i, &v)| v == i + 7));
    }

    #[test]
    fn into_par_iter_vec_by_value() {
        let xs: Vec<String> = (0..5000).map(|i| format!("{i}")).collect();
        let got: Vec<usize> = xs.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(got.len(), 5000);
        assert_eq!(got[0], 1);
        assert_eq!(got[4999], 4);
    }

    #[test]
    fn with_min_len_fans_out_short_inputs() {
        // 8 coarse items would run inline under the default 1024-item
        // chunk threshold; with_min_len(1) must give them real threads.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .with_min_len(1)
                .map(|_| std::thread::current().id())
                .collect()
        });
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), 4, "expected 4 worker threads, saw {ids:?}");
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut xs: Vec<i64> = (0..10_000).map(|i| (i * 2654435761u64 as i64) % 997).collect();
        let mut want = xs.clone();
        want.sort_unstable();
        xs.par_sort_unstable();
        assert_eq!(xs, want);
    }
}
