//! Unified dispatch over the five algorithms and two backends.

use crate::host;
use crate::sim;
use crate::sim::machine::SimRun;
use crate::tuning::SimParams;
use listkit::{LinkedList, ScanOp};
use vmach::MachineConfig;

/// The five list-ranking/list-scan algorithms the paper implements (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Pointer-chasing serial traversal (§2.1).
    Serial,
    /// Wyllie's pointer jumping (§2.2): `O(log n)` time, `O(n log n)`
    /// work.
    Wyllie,
    /// Miller–Reif random mate with per-round packing (§2.3).
    MillerReif,
    /// Anderson–Miller random mate with queues and a biased coin (§2.4).
    AndersonMiller,
    /// The paper's sublist algorithm (§2.5): work-efficient, small
    /// constants.
    ReidMiller,
}

impl Algorithm {
    /// All five, in the paper's presentation order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Serial,
        Algorithm::Wyllie,
        Algorithm::MillerReif,
        Algorithm::AndersonMiller,
        Algorithm::ReidMiller,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Serial => "serial",
            Algorithm::Wyllie => "wyllie",
            Algorithm::MillerReif => "miller-reif",
            Algorithm::AndersonMiller => "anderson-miller",
            Algorithm::ReidMiller => "reid-miller",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs algorithms on the **host backend** (rayon, real parallelism).
#[derive(Clone, Copy, Debug)]
pub struct HostRunner {
    /// Which algorithm.
    pub algorithm: Algorithm,
    /// RNG seed (randomized algorithms).
    pub seed: u64,
    /// Worker threads (`None` = the ambient rayon pool).
    pub threads: Option<usize>,
    /// Reid-Miller split count override.
    pub m: Option<usize>,
    /// Reid-Miller interleaved-lane override (`None` = the backend's
    /// default; see [`listkit::walk`]).
    pub lanes: Option<usize>,
}

impl HostRunner {
    /// A runner with default settings.
    pub fn new(algorithm: Algorithm) -> Self {
        Self { algorithm, seed: 0x1994, threads: None, m: None, lanes: None }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run on a dedicated pool of `t` threads (speedup experiments).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = Some(t);
        self
    }

    /// Override Reid-Miller's split count.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Override Reid-Miller's interleaved-lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = Some(lanes.max(1));
        self
    }

    /// The configured Reid-Miller backend (seed, `m`, lanes applied).
    fn reid_miller(&self) -> host::ReidMiller {
        let mut rm = host::ReidMiller::new(self.seed);
        rm.m = self.m;
        if let Some(lanes) = self.lanes {
            rm.lanes = lanes.max(1);
        }
        rm
    }

    fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match self.threads {
            None => f(),
            Some(t) => rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("thread pool construction")
                .install(f),
        }
    }

    /// List ranking.
    pub fn rank(&self, list: &LinkedList) -> Vec<u64> {
        self.install(|| match self.algorithm {
            Algorithm::Serial => host::serial::rank(list),
            Algorithm::Wyllie => host::Wyllie.rank(list),
            Algorithm::MillerReif => host::MillerReif::new(self.seed).rank(list),
            Algorithm::AndersonMiller => host::AndersonMiller::new(self.seed).rank(list),
            Algorithm::ReidMiller => self.reid_miller().rank(list),
        })
    }

    /// List ranking into caller-provided buffers — the no-alloc entry
    /// point batch executors drive with pooled memory. Output is
    /// byte-identical to [`Self::rank`] for the same configuration.
    /// Serial and Reid-Miller reuse `scratch`/`out` allocations fully;
    /// the other algorithms compute normally and move their result into
    /// `out` (their per-round buffers resist pooling).
    pub fn rank_into(
        &self,
        list: &LinkedList,
        scratch: &mut host::RankScratch,
        out: &mut Vec<u64>,
    ) {
        self.install(|| match self.algorithm {
            Algorithm::Serial => listkit::serial::rank_into(list, out),
            Algorithm::ReidMiller => self.reid_miller().rank_into(list, scratch, out),
            Algorithm::Wyllie => *out = host::Wyllie.rank(list),
            Algorithm::MillerReif => *out = host::MillerReif::new(self.seed).rank(list),
            Algorithm::AndersonMiller => *out = host::AndersonMiller::new(self.seed).rank(list),
        })
    }

    /// Exclusive list scan into caller-provided buffers (see
    /// [`Self::rank_into`]).
    pub fn scan_into<T, Op>(
        &self,
        list: &LinkedList,
        values: &[T],
        op: &Op,
        scratch: &mut host::RankScratch,
        out: &mut Vec<T>,
    ) where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        self.install(|| match self.algorithm {
            Algorithm::Serial => listkit::serial::scan_into(list, values, op, out),
            Algorithm::ReidMiller => self.reid_miller().scan_into(list, values, op, scratch, out),
            Algorithm::Wyllie => *out = host::Wyllie.scan(list, values, op),
            Algorithm::MillerReif => *out = host::MillerReif::new(self.seed).scan(list, values, op),
            Algorithm::AndersonMiller => {
                *out = host::AndersonMiller::new(self.seed).scan(list, values, op)
            }
        })
    }

    /// Exclusive list scan.
    pub fn scan<T, Op>(&self, list: &LinkedList, values: &[T], op: &Op) -> Vec<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        self.install(|| match self.algorithm {
            Algorithm::Serial => host::serial::scan(list, values, op),
            Algorithm::Wyllie => host::Wyllie.scan(list, values, op),
            Algorithm::MillerReif => host::MillerReif::new(self.seed).scan(list, values, op),
            Algorithm::AndersonMiller => {
                host::AndersonMiller::new(self.seed).scan(list, values, op)
            }
            Algorithm::ReidMiller => self.reid_miller().scan(list, values, op),
        })
    }
}

/// Runs algorithms on the **simulated Cray C90** with cycle accounting.
#[derive(Clone, Debug)]
pub struct SimRunner {
    /// Which algorithm.
    pub algorithm: Algorithm,
    /// Machine configuration (processor count, contention, clock).
    pub machine: MachineConfig,
    /// RNG seed (randomized algorithms).
    pub seed: u64,
    /// Reid-Miller parameter override (`None` = model-tuned).
    pub params: Option<SimParams>,
    /// Anderson–Miller tunables.
    pub am: sim::anderson_miller::AmParams,
}

impl SimRunner {
    /// A runner on a `procs`-CPU C90.
    pub fn new(algorithm: Algorithm, procs: usize) -> Self {
        Self {
            algorithm,
            machine: MachineConfig::c90(procs),
            seed: 0x1994,
            params: None,
            am: sim::anderson_miller::AmParams::default(),
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fix Reid-Miller's parameters (ablations).
    pub fn with_params(mut self, params: SimParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Override the Anderson–Miller tunables.
    pub fn with_am(mut self, am: sim::anderson_miller::AmParams) -> Self {
        self.am = am;
        self
    }

    /// List ranking with cycle accounting.
    pub fn rank(&self, list: &LinkedList) -> SimRun<u64> {
        let cfg = self.machine.clone();
        match self.algorithm {
            Algorithm::Serial => sim::serial::rank(list, cfg),
            Algorithm::Wyllie => sim::wyllie::rank(list, cfg),
            Algorithm::MillerReif => sim::miller_reif::rank(list, cfg, self.seed),
            Algorithm::AndersonMiller => sim::anderson_miller::rank(list, cfg, self.am, self.seed),
            Algorithm::ReidMiller => {
                let params = self
                    .params
                    .clone()
                    .unwrap_or_else(|| SimParams::tuned_rank(list.len(), cfg.n_procs));
                sim::ReidMillerSim { params, seed: self.seed }.rank(list, cfg)
            }
        }
    }

    /// Exclusive list scan with cycle accounting.
    pub fn scan<T, Op>(&self, list: &LinkedList, values: &[T], op: &Op) -> SimRun<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        let cfg = self.machine.clone();
        match self.algorithm {
            Algorithm::Serial => sim::serial::scan(list, values, op, cfg),
            Algorithm::Wyllie => sim::wyllie::scan(list, values, op, cfg),
            Algorithm::MillerReif => sim::miller_reif::scan(list, values, op, cfg, self.seed),
            Algorithm::AndersonMiller => {
                sim::anderson_miller::scan(list, values, op, cfg, self.am, self.seed)
            }
            Algorithm::ReidMiller => {
                let params = self
                    .params
                    .clone()
                    .unwrap_or_else(|| SimParams::tuned_scan(list.len(), cfg.n_procs));
                sim::ReidMillerSim { params, seed: self.seed }.scan(list, values, op, cfg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::AddOp;

    #[test]
    fn every_host_algorithm_agrees_with_serial() {
        let list = gen::random_list(5000, 17);
        let reference = listkit::serial::rank(&list);
        for alg in Algorithm::ALL {
            assert_eq!(HostRunner::new(alg).rank(&list), reference, "{alg}");
        }
    }

    #[test]
    fn every_sim_algorithm_agrees_with_serial() {
        let list = gen::random_list(5000, 18);
        let reference = listkit::serial::rank(&list);
        for alg in Algorithm::ALL {
            let run = SimRunner::new(alg, 2).rank(&list);
            assert_eq!(run.out, reference, "{alg}");
            assert!(run.cycles.get() > 0.0, "{alg} must charge cycles");
        }
    }

    #[test]
    fn scan_dispatch_all_algorithms() {
        let list = gen::random_list(3000, 19);
        let vals: Vec<i64> = (0..3000).map(|i| (i as i64 % 13) - 6).collect();
        let reference = listkit::serial::scan(&list, &vals, &AddOp);
        for alg in Algorithm::ALL {
            assert_eq!(HostRunner::new(alg).scan(&list, &vals, &AddOp), reference, "{alg}");
            assert_eq!(SimRunner::new(alg, 1).scan(&list, &vals, &AddOp).out, reference, "{alg}");
        }
    }

    #[test]
    fn host_thread_override() {
        let list = gen::random_list(20_000, 20);
        let reference = listkit::serial::rank(&list);
        for t in [1usize, 2, 4] {
            let r = HostRunner::new(Algorithm::ReidMiller).with_threads(t).rank(&list);
            assert_eq!(r, reference, "threads = {t}");
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Algorithm::ReidMiller.name(), "reid-miller");
        assert_eq!(format!("{}", Algorithm::Wyllie), "wyllie");
        assert_eq!(Algorithm::ALL.len(), 5);
    }
}
