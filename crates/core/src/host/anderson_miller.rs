//! Anderson–Miller random mate (paper §2.4), host backend.
//!
//! Each of `nv` virtual processors owns a queue of `n/nv` vertices and
//! attempts to splice out its queue *top* each round, so processors stay
//! busy without any packing. All vertices are female except queue tops,
//! which flip a **biased** coin — the paper's key optimization: with
//! P\[male\] = 0.9, almost 90% of active processors splice every round
//! (male top pointed to by a female), cutting rounds and runtime by
//! ~40% versus the unbiased coin. When few queues remain, the remainder
//! is finished serially (also per the paper).
//!
//! Splicing removes the top `q` by linking `prev[q] → next[q]`, so both
//! link directions are maintained; the absorber `prev[q]`'s run extends
//! over `q`'s run (order-preserving — non-commutative operators work).

use listkit::{Idx, LinkedList, ScanOp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Anderson–Miller list scan.
#[derive(Clone, Copy, Debug)]
pub struct AndersonMiller {
    /// RNG seed.
    pub seed: u64,
    /// Number of virtual-processor queues (the paper used the 128 vector
    /// elements of one C90 CPU).
    pub queues: usize,
    /// Probability a queue top is assigned male (paper: 0.9).
    pub male_bias: f64,
    /// Switch to the serial finish when live vertices drop to this.
    pub serial_threshold: usize,
}

impl Default for AndersonMiller {
    fn default() -> Self {
        Self { seed: 0xa11ce, queues: 128, male_bias: 0.9, serial_threshold: 64 }
    }
}

impl AndersonMiller {
    /// With an explicit seed, otherwise default parameters.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Override the coin bias (0.5 = the original Miller–Reif-style
    /// unbiased coin; kept for the ablation benchmark).
    pub fn with_bias(mut self, bias: f64) -> Self {
        // Bias 0 would never splice anything and the round loop could
        // not terminate, so it is rejected outright.
        assert!(bias > 0.0 && bias <= 1.0, "male bias must be in (0, 1]");
        self.male_bias = bias;
        self
    }

    /// Override the queue count.
    pub fn with_queues(mut self, queues: usize) -> Self {
        assert!(queues >= 1);
        self.queues = queues;
        self
    }

    /// Exclusive list scan.
    pub fn scan<T, Op>(&self, list: &LinkedList, values: &[T], op: &Op) -> Vec<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        assert_eq!(values.len(), list.len());
        let n = list.len();
        let head = list.head();
        let mut next: Vec<Idx> = list.links().to_vec();
        let mut prev: Vec<Idx> = list.predecessors();
        let mut val: Vec<T> = values.to_vec();
        let mut live = vec![true; n];
        let mut live_count = n;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events: Vec<(Idx, Idx, T)> = Vec::new();

        // Queues: contiguous index ranges; `pos[k]` is the cursor.
        let nv = self.queues.min(n).max(1);
        let chunk = n.div_ceil(nv);
        let mut pos: Vec<usize> = (0..nv).map(|k| k * chunk).collect();
        let ends: Vec<usize> = (0..nv).map(|k| ((k + 1) * chunk).min(n)).collect();
        // The head can never be spliced; precompute a bias threshold.
        let bias_num = (self.male_bias * u32::MAX as f64) as u32;

        let mut active = nv;
        while active > 0 && live_count > self.serial_threshold.max(1) {
            // Advance cursors past the head (never spliceable).
            // Collect this round's tops and their coins.
            let mut tops: Vec<(usize, Idx)> = Vec::with_capacity(active);
            let mut male = vec![false; n];
            for k in 0..nv {
                while pos[k] < ends[k] && pos[k] as Idx == head {
                    pos[k] += 1;
                }
                if pos[k] < ends[k] {
                    let q = pos[k] as Idx;
                    let coin = rng.random_range(0..=u32::MAX) < bias_num;
                    male[q as usize] = coin;
                    tops.push((k, q));
                }
            }
            // Splice every male top whose predecessor is female. The
            // decisions read the pre-round `male`/`prev` state; a male
            // predecessor is necessarily another top, which then is not
            // spliced itself, so sequential application in queue order
            // never acts on stale links for a *spliced* vertex.
            for &(k, q) in &tops {
                let qi = q as usize;
                if !male[qi] || male[prev[qi] as usize] {
                    continue;
                }
                let p = prev[qi];
                let pi = p as usize;
                events.push((p, q, val[pi]));
                val[pi] = op.combine(val[pi], val[qi]);
                if next[qi] == q {
                    next[pi] = p; // q was the terminal; p becomes it
                } else {
                    next[pi] = next[qi];
                    prev[next[qi] as usize] = p;
                }
                live[qi] = false;
                live_count -= 1;
                pos[k] += 1;
            }
            active = (0..nv)
                .filter(|&k| {
                    let mut at = pos[k];
                    while at < ends[k] && at as Idx == head {
                        at += 1;
                    }
                    at < ends[k]
                })
                .count();
        }

        // Serial finish: assign exclusive prefixes to the remaining live
        // run-starts by walking the contracted list from the head.
        let mut out = vec![op.identity(); n];
        let mut acc = op.identity();
        let mut cur = head;
        loop {
            debug_assert!(live[cur as usize]);
            out[cur as usize] = acc;
            acc = op.combine(acc, val[cur as usize]);
            if next[cur as usize] == cur {
                break;
            }
            cur = next[cur as usize];
        }

        // Expansion: reinsert spliced vertices in reverse order.
        for &(p, q, saved) in events.iter().rev() {
            out[q as usize] = op.combine(out[p as usize], saved);
        }
        out
    }

    /// List ranking.
    pub fn rank(&self, list: &LinkedList) -> Vec<u64> {
        let ones = vec![1i64; list.len()];
        self.scan(list, &ones, &listkit::ops::AddOp).into_iter().map(|r| r as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::{AddOp, Affine, AffineOp, MinOp};

    #[test]
    fn rank_matches_serial() {
        for n in [1usize, 2, 3, 17, 128, 1000, 5000] {
            let list = gen::random_list(n, n as u64 + 99);
            assert_eq!(AndersonMiller::new(5).rank(&list), listkit::serial::rank(&list), "n = {n}");
        }
    }

    #[test]
    fn scan_matches_serial() {
        let list = gen::random_list(999, 31);
        let vals: Vec<i64> = (0..999).map(|i| (i as i64 % 23) - 11).collect();
        assert_eq!(
            AndersonMiller::new(4).scan(&list, &vals, &AddOp),
            listkit::serial::scan(&list, &vals, &AddOp)
        );
        assert_eq!(
            AndersonMiller::new(4).scan(&list, &vals, &MinOp),
            listkit::serial::scan(&list, &vals, &MinOp)
        );
    }

    #[test]
    fn scan_noncommutative() {
        let list = gen::random_list(400, 8);
        let vals: Vec<Affine> =
            (0..400).map(|i| Affine::new((i % 3) as i64 + 1, (i % 7) as i64)).collect();
        assert_eq!(
            AndersonMiller::new(11).scan(&list, &vals, &AffineOp),
            listkit::serial::scan(&list, &vals, &AffineOp)
        );
    }

    #[test]
    fn unbiased_coin_still_correct() {
        let list = gen::random_list(600, 2);
        let am = AndersonMiller::new(3).with_bias(0.5);
        assert_eq!(am.rank(&list), listkit::serial::rank(&list));
    }

    #[test]
    fn extreme_bias_still_terminates() {
        // Bias 1.0: every top is male. A chain of adjacent male tops is
        // unblocked from its front (whose predecessor is a non-top,
        // hence female), so progress is still guaranteed.
        let list = gen::random_list(200, 6);
        let am = AndersonMiller::new(6).with_bias(1.0);
        assert_eq!(am.rank(&list), listkit::serial::rank(&list));
    }

    #[test]
    #[should_panic(expected = "male bias")]
    fn zero_bias_rejected() {
        let _ = AndersonMiller::new(6).with_bias(0.0);
    }

    #[test]
    fn few_queues() {
        let list = gen::random_list(300, 44);
        let am = AndersonMiller::new(1).with_queues(2);
        assert_eq!(am.rank(&list), listkit::serial::rank(&list));
    }

    #[test]
    fn many_queues() {
        let list = gen::random_list(300, 45);
        let am = AndersonMiller::new(1).with_queues(1000);
        assert_eq!(am.rank(&list), listkit::serial::rank(&list));
    }
}
