//! Instrumented Reid-Miller runs: phase wall times and sublist-length
//! statistics for the host backend.
//!
//! The paper's entire §4 revolves around how the exponential sublist
//! length distribution drives load balancing; on the host backend the
//! analogous question is whether over-decomposition (`m ≫ threads`)
//! plus work stealing hides that skew. This module measures it.

use listkit::{gen, Idx, LinkedList};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::time::Instant;

/// Measurements from one instrumented ranking run.
#[derive(Clone, Debug)]
pub struct RmStats {
    /// List length.
    pub n: usize,
    /// Split positions requested.
    pub m_requested: usize,
    /// Distinct split positions actually used (competition survivors).
    pub m_actual: usize,
    /// Shortest sublist.
    pub len_min: usize,
    /// Longest sublist (the paper: ≈ `(n/m)·ln(2m+2)` expected).
    pub len_max: usize,
    /// Mean sublist length (`n / (m_actual + 1)`).
    pub len_mean: f64,
    /// Milliseconds: split-position setup.
    pub init_ms: f64,
    /// Milliseconds: Phase 1 (parallel sublist measurement).
    pub phase1_ms: f64,
    /// Milliseconds: Phase 2 (reduced-list prefix).
    pub phase2_ms: f64,
    /// Milliseconds: Phase 3 (parallel rank write-out).
    pub phase3_ms: f64,
}

impl RmStats {
    /// Total measured milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.init_ms + self.phase1_ms + self.phase2_ms + self.phase3_ms
    }

    /// Longest sublist relative to the mean — the skew that work
    /// stealing has to absorb.
    pub fn skew(&self) -> f64 {
        self.len_max as f64 / self.len_mean.max(1.0)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} sublists [{}..{}] mean {:.0} skew {:.1}x | init {:.2}ms p1 {:.2}ms p2 {:.2}ms p3 {:.2}ms",
            self.n,
            self.m_actual,
            self.len_min,
            self.len_max,
            self.len_mean,
            self.skew(),
            self.init_ms,
            self.phase1_ms,
            self.phase2_ms,
            self.phase3_ms
        )
    }
}

/// Rank with instrumentation (same algorithm as
/// [`super::ReidMiller::rank`], measured per phase; the tiny timer
/// overhead is the price of the data).
pub fn rank_with_stats(list: &LinkedList, m_requested: usize, seed: u64) -> (Vec<u64>, RmStats) {
    let n = list.len();
    let links = list.links();

    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let splits = gen::random_split_positions(list, m_requested, &mut rng);
    let mut boundary = vec![false; n];
    boundary[list.tail() as usize] = true;
    for &r in &splits {
        boundary[r as usize] = true;
    }
    let mut heads: Vec<Idx> = Vec::with_capacity(splits.len() + 1);
    heads.push(list.head());
    heads.extend(splits.iter().map(|&r| links[r as usize]));
    let mut sub_of_head = vec![u32::MAX; n];
    for (i, &h) in heads.iter().enumerate() {
        sub_of_head[h as usize] = i as u32;
    }
    let init_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let lens: Vec<(u64, Idx)> = heads
        .par_iter()
        .map(|&h| {
            let mut len = 0u64;
            let mut cur = h as usize;
            loop {
                len += 1;
                if boundary[cur] {
                    return (len, cur as Idx);
                }
                cur = links[cur] as usize;
            }
        })
        .collect();
    let phase1_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let tail_v = list.tail();
    let k = heads.len();
    let next_sub: Vec<Idx> = lens
        .iter()
        .enumerate()
        .map(
            |(i, &(_, term))| {
                if term == tail_v {
                    i as Idx
                } else {
                    sub_of_head[links[term as usize] as usize]
                }
            },
        )
        .collect();
    let mut pre = vec![0u64; k];
    let mut acc = 0u64;
    let mut cur = 0usize;
    loop {
        pre[cur] = acc;
        acc += lens[cur].0;
        if next_sub[cur] as usize == cur {
            break;
        }
        cur = next_sub[cur] as usize;
    }
    let phase2_ms = t2.elapsed().as_secs_f64() * 1e3;

    let t3 = Instant::now();
    let mut out = vec![0u64; n];
    {
        let writer = crate::util::DisjointWriter::new(&mut out);
        heads.par_iter().enumerate().for_each(|(i, &h)| {
            let mut r = pre[i];
            let mut cur = h as usize;
            loop {
                // SAFETY: sublists partition the vertex set.
                unsafe { writer.write(cur, r) };
                r += 1;
                if boundary[cur] {
                    return;
                }
                cur = links[cur] as usize;
            }
        });
    }
    let phase3_ms = t3.elapsed().as_secs_f64() * 1e3;

    let len_min = lens.iter().map(|&(l, _)| l as usize).min().unwrap_or(0);
    let len_max = lens.iter().map(|&(l, _)| l as usize).max().unwrap_or(0);
    let stats = RmStats {
        n,
        m_requested,
        m_actual: splits.len(),
        len_min,
        len_max,
        len_mean: n as f64 / k as f64,
        init_ms,
        phase1_ms,
        phase2_ms,
        phase3_ms,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankmodel::expdist;

    #[test]
    fn instrumented_rank_is_correct() {
        let list = gen::random_list(50_000, 3);
        let (ranks, stats) = rank_with_stats(&list, 500, 7);
        assert_eq!(ranks, listkit::serial::rank(&list));
        assert!(stats.m_actual > 0 && stats.m_actual <= 500);
        assert_eq!(stats.len_mean, 50_000.0 / (stats.m_actual + 1) as f64);
        assert!(stats.len_min >= 1);
        assert!(stats.len_max >= stats.len_min);
        assert!(stats.total_ms() >= 0.0);
        assert!(stats.summary().contains("skew"));
    }

    #[test]
    fn sublist_lengths_partition_n() {
        let list = gen::random_list(30_000, 9);
        let (_, stats) = rank_with_stats(&list, 300, 1);
        // min ≤ mean ≤ max and the mean is exactly n/(m+1).
        assert!(stats.len_min as f64 <= stats.len_mean);
        assert!(stats.len_mean <= stats.len_max as f64);
    }

    #[test]
    fn longest_sublist_tracks_exponential_prediction() {
        // E[max] ≈ (n/m)·ln(2m+2); allow a wide band (one sample).
        let n = 200_000usize;
        let m = 1000usize;
        let list = gen::random_list(n, 4);
        let (_, stats) = rank_with_stats(&list, m, 11);
        let expected = expdist::expected_longest(n as f64, stats.m_actual as f64);
        let ratio = stats.len_max as f64 / expected;
        assert!(
            (0.45..2.2).contains(&ratio),
            "observed max {} vs expected {:.0} (ratio {ratio:.2})",
            stats.len_max,
            expected
        );
    }
}
