//! Miller–Reif random mate (paper §2.3), host backend.
//!
//! Every live vertex flips a coin; a *female* vertex whose successor is
//! *male* splices the successor out, absorbing its aggregated value. On
//! average a quarter of the vertices disappear per round, so O(log n)
//! rounds contract the list to a single run; a reconstruction phase then
//! reinserts the spliced vertices in reverse order, assigning each its
//! exclusive prefix.
//!
//! Invariant: each live vertex `v` represents a *run* of consecutive
//! original vertices starting at `v`; `val[v]` is the operator-sum of
//! the run (in list order, so non-commutative operators work).
//!
//! The splice decision is embarrassingly parallel (pure function of the
//! previous round's state); applying the splices is a short sequential
//! pass over the ~n/4 selected pairs, keeping the implementation free
//! of synchronization — the paper's version pays a pack here instead.

use listkit::{Idx, LinkedList, ScanOp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// One splice event: female absorber, spliced male, absorber's value
/// before absorption.
type Event<T> = (Idx, Idx, T);

/// Miller–Reif random-mate list scan.
#[derive(Clone, Copy, Debug)]
pub struct MillerReif {
    /// RNG seed for the coin flips.
    pub seed: u64,
}

impl Default for MillerReif {
    fn default() -> Self {
        Self { seed: 0x5eed }
    }
}

impl MillerReif {
    /// With an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Exclusive list scan.
    pub fn scan<T, Op>(&self, list: &LinkedList, values: &[T], op: &Op) -> Vec<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        assert_eq!(values.len(), list.len());
        let n = list.len();
        let mut next: Vec<Idx> = list.links().to_vec();
        let mut val: Vec<T> = values.to_vec();
        let mut live = vec![true; n];
        let mut live_count = n;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rounds: Vec<Vec<Event<T>>> = Vec::new();

        while live_count > 1 {
            // Coin flips for this round (false = male, true = female).
            let coins: Vec<bool> = (0..n).map(|_| rng.random_range(0..2u32) == 0).collect();
            // Parallel decision: which live females splice their male
            // successor? Reads only prior-round state.
            let events: Vec<Event<T>> = (0..n as u32)
                .into_par_iter()
                .filter_map(|f| {
                    let fi = f as usize;
                    if !live[fi] || !coins[fi] {
                        return None;
                    }
                    let u = next[fi];
                    if u == f || coins[u as usize] {
                        return None; // f is terminal, or successor female
                    }
                    Some((f, u, val[fi]))
                })
                .collect();
            // Apply: each event touches only (f, u) with f's female and
            // u's male, so the writes are disjoint; a sequential pass is
            // simplest and O(#splices).
            for &(f, u, _) in &events {
                let (fi, ui) = (f as usize, u as usize);
                val[fi] = op.combine(val[fi], val[ui]);
                next[fi] = if next[ui] == u { f } else { next[ui] };
                live[ui] = false;
            }
            live_count -= events.len();
            rounds.push(events);
        }

        // The single live run is the head's; expand in reverse.
        let mut out = vec![op.identity(); n];
        for round in rounds.iter().rev() {
            for &(f, u, saved) in round {
                out[u as usize] = op.combine(out[f as usize], saved);
            }
        }
        out
    }

    /// List ranking.
    pub fn rank(&self, list: &LinkedList) -> Vec<u64> {
        let ones = vec![1i64; list.len()];
        self.scan(list, &ones, &listkit::ops::AddOp).into_iter().map(|r| r as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::{AddOp, Affine, AffineOp, MaxOp};

    #[test]
    fn rank_matches_serial() {
        for n in [1usize, 2, 3, 5, 100, 1000, 4096] {
            let list = gen::random_list(n, 3 * n as u64 + 1);
            assert_eq!(MillerReif::new(7).rank(&list), listkit::serial::rank(&list), "n = {n}");
        }
    }

    #[test]
    fn scan_matches_serial() {
        let list = gen::random_list(777, 13);
        let vals: Vec<i64> = (0..777).map(|i| (i as i64 * 31) % 97 - 48).collect();
        assert_eq!(
            MillerReif::new(1).scan(&list, &vals, &AddOp),
            listkit::serial::scan(&list, &vals, &AddOp)
        );
        assert_eq!(
            MillerReif::new(2).scan(&list, &vals, &MaxOp),
            listkit::serial::scan(&list, &vals, &MaxOp)
        );
    }

    #[test]
    fn scan_noncommutative() {
        let list = gen::random_list(301, 17);
        let vals: Vec<Affine> =
            (0..301).map(|i| Affine::new((i % 5) as i64 - 2, (i % 9) as i64 - 4)).collect();
        assert_eq!(
            MillerReif::new(9).scan(&list, &vals, &AffineOp),
            listkit::serial::scan(&list, &vals, &AffineOp)
        );
    }

    #[test]
    fn different_seeds_same_answer() {
        let list = gen::random_list(500, 21);
        let a = MillerReif::new(1).rank(&list);
        let b = MillerReif::new(999).rank(&list);
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_layout() {
        let list = gen::sequential_list(64);
        assert_eq!(MillerReif::default().rank(&list), listkit::serial::rank(&list));
    }
}
