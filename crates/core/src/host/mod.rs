//! Host backend: the five algorithms with real parallelism (`rayon`).
//!
//! The mapping from the paper's vector-multiprocessor programming model
//! to a modern multicore is direct: *virtual processors* become rayon
//! tasks, the requirement `m ≫ p` becomes over-decomposition (many more
//! tasks than worker threads), and the paper's explicit pack-based load
//! balancing is subsumed by work stealing. The algorithms are otherwise
//! the same ones the paper implements in §2.

pub mod anderson_miller;
pub mod instrument;
pub mod miller_reif;
pub mod prev;
pub mod reid_miller;
pub mod scratch;
pub mod serial;
pub mod sharded;
pub mod wyllie;

pub use anderson_miller::AndersonMiller;
pub use miller_reif::MillerReif;
pub use reid_miller::ReidMiller;
pub use scratch::RankScratch;
pub use sharded::{
    rank_sharded, rank_sharded_into, rank_sharded_prebuilt_into, scan_sharded, scan_sharded_into,
    scan_sharded_prebuilt_into, ShardedReport,
};
pub use wyllie::Wyllie;
