//! Parallel predecessor-link construction.
//!
//! Pointer-jumping computes an *exclusive prefix* scan by walking
//! predecessor links (walking successors yields suffixes, which cannot
//! be turned into prefixes for non-invertible or non-commutative
//! operators). Building `prev` is one parallel scatter; the scatter
//! targets (`next[v]`) are distinct for distinct `v` because a valid
//! list's links are injective on non-tail vertices, so relaxed atomic
//! stores suffice.

use listkit::{Idx, LinkedList};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Build predecessor links in parallel: `prev[next[v]] = v` for
/// non-tail `v`, `prev[head] = head`.
pub fn build_prev(list: &LinkedList) -> Vec<Idx> {
    let n = list.len();
    let prev: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    prev[list.head() as usize].store(list.head(), Ordering::Relaxed);
    list.links().par_iter().enumerate().for_each(|(v, &nx)| {
        if nx as usize != v {
            prev[nx as usize].store(v as Idx, Ordering::Relaxed);
        }
    });
    prev.into_par_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;

    #[test]
    fn matches_serial_predecessors() {
        for n in [1usize, 2, 3, 100, 4096] {
            let list = gen::random_list(n, n as u64);
            assert_eq!(build_prev(&list), list.predecessors(), "n = {n}");
        }
    }

    #[test]
    fn head_self_loops() {
        let list = gen::random_list(64, 9);
        let prev = build_prev(&list);
        assert_eq!(prev[list.head() as usize], list.head());
    }
}
