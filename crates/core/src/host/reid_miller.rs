//! Reid-Miller's sublist algorithm (paper §2.5), host backend.
//!
//! Phase 0 splits the list at `m` random vertices into `m+1` independent
//! sublists; Phase 1 reduces each sublist to its operator-sum; Phase 2
//! scans the reduced list of sums (serially, with Wyllie, or
//! recursively); Phase 3 expands the Phase-2 prefixes back across the
//! sublists. Work ≈ 2× serial (each vertex is touched once in Phase 1
//! and once in Phase 3), constants small, extra space `O(m)`.
//!
//! On a multicore, the paper's virtual processors become rayon tasks:
//! `m ≫ #threads` over-decomposes the work so that work stealing evens
//! out the exponentially distributed sublist lengths — the same role
//! the C90 implementation's pack-based load balancing plays.
//! This backend is **non-destructive** (boundaries live in a side
//! bitmap instead of spliced self-loops).

use crate::host::scratch::RankScratch;
use crate::util::DisjointWriter;
use listkit::walk::{self, LaneStats, WalkPolicy};
use listkit::{gen, Idx, LinkedList, ScanOp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Phase-2 strategy for the reduced list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Phase2 {
    /// Choose by reduced-list size (serial below the recursion cutoff).
    #[default]
    Auto,
    /// Serial scan of the reduced list.
    Serial,
    /// Wyllie pointer jumping on the reduced list.
    Wyllie,
    /// Recursive application of this algorithm.
    Recurse,
}

/// Reid-Miller list scan/rank.
#[derive(Clone, Copy, Debug)]
pub struct ReidMiller {
    /// Seed for the random split positions.
    pub seed: u64,
    /// Number of split positions `m` (`None` = heuristic: a few
    /// thousand vertices per sublist, at least 8 tasks per thread).
    pub m: Option<usize>,
    /// Phase-2 strategy.
    pub phase2: Phase2,
    /// Lists up to this length run serially outright.
    pub serial_cutoff: usize,
    /// Reduced lists longer than this recurse under [`Phase2::Auto`].
    pub recurse_cutoff: usize,
    /// Interleaved traversal lanes per worker in Phases 1 and 3 (the
    /// paper's vectorized sublist traversal as memory-level
    /// parallelism; see [`listkit::walk`]). Never changes results —
    /// only how many cache misses each worker keeps in flight.
    pub lanes: usize,
}

/// Chunked Phase-1 work items: a slice of chain heads paired with the
/// matching slice of per-chain result slots.
type ChainWork<'a, R> = Vec<(&'a [Idx], &'a mut [R])>;

impl Default for ReidMiller {
    fn default() -> Self {
        Self {
            seed: 0x11157,
            m: None,
            phase2: Phase2::Auto,
            serial_cutoff: 2048,
            recurse_cutoff: 8192,
            lanes: walk::DEFAULT_LANES,
        }
    }
}

impl ReidMiller {
    /// With an explicit seed, otherwise defaults.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Fix the number of split positions.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Fix the Phase-2 strategy.
    pub fn with_phase2(mut self, p2: Phase2) -> Self {
        self.phase2 = p2;
        self
    }

    /// Fix the interleaved-lane count for Phases 1 and 3.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// The heuristic `m` for a list of `n` vertices at the default lane
    /// count; see [`Self::default_m_for`].
    pub fn default_m(n: usize) -> usize {
        Self::default_m_for(n, walk::DEFAULT_LANES)
    }

    /// The heuristic `m` for a list of `n` vertices walked with `lanes`
    /// interleaved lanes: targets sublists of ~2048 vertices, but at
    /// least `8·lanes` tasks per worker thread — each worker needs ≥
    /// `lanes` *live* sublists to keep its lanes full, and the 8×
    /// over-decomposition on top lets work stealing level the
    /// exponential sublist-length distribution.
    pub fn default_m_for(n: usize, lanes: usize) -> usize {
        let threads = rayon::current_num_threads();
        (n / 2048).max(threads * 8 * lanes.max(1)).min(n / 4).max(1)
    }

    /// Exclusive list scan.
    pub fn scan<T, Op>(&self, list: &LinkedList, values: &[T], op: &Op) -> Vec<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        let mut scratch = RankScratch::new();
        let mut out = Vec::new();
        self.scan_into(list, values, op, &mut scratch, &mut out);
        out
    }

    /// [`Self::scan`] into caller-provided buffers: `scratch` holds the
    /// O(n) working arrays and `out` receives the result; both are
    /// reused across calls without reallocating once grown. This is the
    /// entry point batch executors (`engine`) drive with pooled buffers.
    pub fn scan_into<T, Op>(
        &self,
        list: &LinkedList,
        values: &[T],
        op: &Op,
        scratch: &mut RankScratch,
        out: &mut Vec<T>,
    ) where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        assert_eq!(values.len(), list.len());
        let n = list.len();
        let m_req = self.m.unwrap_or_else(|| Self::default_m_for(n, self.lanes));
        if n <= self.serial_cutoff.max(4) || m_req < 2 || !self.phase0_split(list, m_req, scratch) {
            listkit::serial::scan_into(list, values, op, out);
            return;
        }
        let links = list.links();
        let RankScratch { boundary, heads, sub_of_head, next_sub, telemetry, .. } = scratch;
        let (boundary, heads, sub_of_head) = (&*boundary, &heads[..], &sub_of_head[..]);
        let telemetry = &*telemetry;
        let policy = WalkPolicy::with_lanes(self.lanes);
        let chunk =
            walk::chunk_len(heads.len(), rayon::current_num_threads(), policy.effective_lanes());

        // ---- Phase 1: sum each sublist. Each worker interleaves K
        // lanes over its chunk of sublists, keeping K independent
        // cache misses in flight (the paper's vectorized traversal).
        let k = heads.len();
        let mut sums: Vec<(T, Idx)> = vec![(op.identity(), 0); k];
        {
            let work: ChainWork<'_, (T, Idx)> =
                heads.chunks(chunk).zip(sums.chunks_mut(chunk)).collect();
            work.into_par_iter().with_min_len(1).for_each(|(hs, sums_chunk)| {
                let mut stats = LaneStats::default();
                walk::reduce_chains(list, values, op, hs, boundary, policy, sums_chunk, &mut stats);
                telemetry.add(&stats);
            });
        }

        // ---- Reduced list.
        fill_next_sub(&sums, links, sub_of_head, list.tail(), next_sub);
        let totals: Vec<T> = sums.iter().map(|&(s, _)| s).collect();

        // ---- Phase 2: exclusive scan of the reduced list.
        let pre = self.phase2_scan(next_sub, &totals, op, k);

        // ---- Phase 3: expand prefixes over the sublists (parallel
        // disjoint writes: sublists partition the vertex set), again
        // K-lane interleaved per worker.
        out.clear();
        out.resize(n, op.identity());
        {
            let writer = DisjointWriter::new(out);
            let work: Vec<(&[Idx], &[T])> = heads.chunks(chunk).zip(pre.chunks(chunk)).collect();
            work.into_par_iter().with_min_len(1).for_each(|(hs, seeds)| {
                let mut stats = LaneStats::default();
                walk::expand_chains(
                    list,
                    values,
                    op,
                    hs,
                    seeds,
                    boundary,
                    policy,
                    // SAFETY: each vertex belongs to exactly one
                    // sublist, and exactly one chunk's walker visits
                    // that sublist.
                    |v, val| unsafe { writer.write(v, val) },
                    &mut stats,
                );
                telemetry.add(&stats);
            });
        }
    }

    /// Phase 0, shared by [`Self::rank_into`] and [`Self::scan_into`]:
    /// pick `m_req` random distinct non-tail split vertices and fill
    /// `scratch`'s boundary bitmap, sublist-head list and head→sublist
    /// map. Returns `false` when no split survived (caller falls back
    /// to the serial path).
    fn phase0_split(&self, list: &LinkedList, m_req: usize, scratch: &mut RankScratch) -> bool {
        let n = list.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let splits = gen::random_split_positions(list, m_req, &mut rng);
        if splits.is_empty() {
            return false;
        }
        let boundary = &mut scratch.boundary;
        boundary.reset(n);
        boundary.set(list.tail() as usize);
        for &r in &splits {
            boundary.set(r as usize);
        }
        // Sublist heads: the whole-list head plus each split's
        // successor — a pure random gather, prefetched ahead.
        let heads = &mut scratch.heads;
        heads.clear();
        heads.push(list.head());
        walk::gather_links(list, &splits, WalkPolicy::with_lanes(self.lanes), heads);
        let sub_of_head = &mut scratch.sub_of_head;
        sub_of_head.clear();
        sub_of_head.resize(n, u32::MAX);
        for (i, &h) in heads.iter().enumerate() {
            sub_of_head[h as usize] = i as u32;
        }
        true
    }

    /// Phase-2 dispatch on the reduced list (`k` sublists, links
    /// `next_sub`, head = sublist 0).
    fn phase2_scan<T, Op>(&self, next_sub: &[Idx], totals: &[T], op: &Op, k: usize) -> Vec<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        let strategy = match self.phase2 {
            Phase2::Auto if k > self.recurse_cutoff => Phase2::Recurse,
            Phase2::Auto => Phase2::Serial,
            other => other,
        };
        match strategy {
            Phase2::Serial | Phase2::Auto => {
                // Walk the reduced list directly; no LinkedList needed.
                let mut pre = vec![op.identity(); k];
                let mut acc = op.identity();
                let mut cur = 0usize;
                loop {
                    pre[cur] = acc;
                    acc = op.combine(acc, totals[cur]);
                    if next_sub[cur] as usize == cur {
                        break;
                    }
                    cur = next_sub[cur] as usize;
                }
                pre
            }
            Phase2::Wyllie => {
                let reduced = LinkedList::new(next_sub.to_vec(), 0)
                    .expect("reduced list is a valid single path");
                super::wyllie::Wyllie.scan(&reduced, totals, op)
            }
            Phase2::Recurse => {
                let reduced = LinkedList::new(next_sub.to_vec(), 0)
                    .expect("reduced list is a valid single path");
                // Fresh seed per level, and — crucially — drop any
                // explicit `m` override: the heuristic re-derives `m`
                // for the smaller list (an inherited large `m` would
                // barely shrink the problem and recurse unboundedly).
                let inner = Self {
                    seed: self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
                    m: None,
                    ..*self
                };
                inner.scan(&reduced, totals, op)
            }
        }
    }

    /// List ranking (the scan of all-ones, specialized to counting: no
    /// value array is materialized and Phase 1 only measures lengths).
    pub fn rank(&self, list: &LinkedList) -> Vec<u64> {
        let mut scratch = RankScratch::new();
        let mut out = Vec::new();
        self.rank_into(list, &mut scratch, &mut out);
        out
    }

    /// [`Self::rank`] into caller-provided buffers: `scratch` holds the
    /// O(n) working arrays, `out` receives the ranks; both are reused
    /// across calls without reallocating once grown. Identical output
    /// to [`Self::rank`] for the same seed.
    pub fn rank_into(&self, list: &LinkedList, scratch: &mut RankScratch, out: &mut Vec<u64>) {
        let n = list.len();
        let m_req = self.m.unwrap_or_else(|| Self::default_m_for(n, self.lanes));
        if n <= self.serial_cutoff.max(4) || m_req < 2 || !self.phase0_split(list, m_req, scratch) {
            listkit::serial::rank_into(list, out);
            return;
        }
        let links = list.links();
        let RankScratch { boundary, heads, sub_of_head, next_sub, pre, telemetry, .. } = scratch;
        let (boundary, heads, sub_of_head) = (&*boundary, &heads[..], &sub_of_head[..]);
        let telemetry = &*telemetry;
        let policy = WalkPolicy::with_lanes(self.lanes);
        let chunk =
            walk::chunk_len(heads.len(), rayon::current_num_threads(), policy.effective_lanes());

        // Phase 1: lengths only, K-lane interleaved per worker.
        let mut lens: Vec<(u64, Idx)> = vec![(0, 0); heads.len()];
        {
            let work: ChainWork<'_, (u64, Idx)> =
                heads.chunks(chunk).zip(lens.chunks_mut(chunk)).collect();
            work.into_par_iter().with_min_len(1).for_each(|(hs, lens_chunk)| {
                let mut stats = LaneStats::default();
                walk::count_chains(list, hs, boundary, policy, lens_chunk, &mut stats);
                telemetry.add(&stats);
            });
        }
        let lens = &lens[..];

        // Reduced list + serial exclusive prefix of lengths (the reduced
        // list is short; ranking it recursively would be overkill —
        // matches the paper's serial Phase 2 for practical m).
        let k = heads.len();
        fill_next_sub(lens, links, sub_of_head, list.tail(), next_sub);
        pre.clear();
        pre.resize(k, 0);
        let mut acc = 0u64;
        let mut cur = 0usize;
        loop {
            pre[cur] = acc;
            acc += lens[cur].0;
            if next_sub[cur] as usize == cur {
                break;
            }
            cur = next_sub[cur] as usize;
        }
        let pre = &*pre;

        // Phase 3: write ranks, K-lane interleaved per worker.
        out.clear();
        out.resize(n, 0);
        {
            let writer = DisjointWriter::new(out);
            let work: Vec<(&[Idx], &[u64])> = heads.chunks(chunk).zip(pre.chunks(chunk)).collect();
            work.into_par_iter().with_min_len(1).for_each(|(hs, seeds)| {
                let mut stats = LaneStats::default();
                walk::expand_rank_chains(
                    list,
                    hs,
                    seeds,
                    boundary,
                    policy,
                    // SAFETY: sublists partition the vertex set.
                    |v, r| unsafe { writer.write(v, r) },
                    &mut stats,
                );
                telemetry.add(&stats);
            });
        }
    }
}

/// Build the reduced list's successor indices from Phase-1 results:
/// sublist `i`'s successor is the sublist starting right after sublist
/// `i`'s terminal vertex (self-loop at the list's final sublist).
fn fill_next_sub<X: Copy>(
    terms: &[(X, Idx)],
    links: &[Idx],
    sub_of_head: &[u32],
    tail: Idx,
    next_sub: &mut Vec<Idx>,
) {
    next_sub.clear();
    next_sub.extend(terms.iter().enumerate().map(|(i, &(_, term))| {
        if term == tail {
            i as Idx
        } else {
            sub_of_head[links[term as usize] as usize]
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::{AddOp, Affine, AffineOp, MaxOp, XorOp};

    #[test]
    fn rank_matches_serial_across_sizes() {
        for n in [1usize, 2, 3, 100, 2048, 2049, 10_000, 50_000] {
            let list = gen::random_list(n, n as u64);
            assert_eq!(ReidMiller::new(1).rank(&list), listkit::serial::rank(&list), "n = {n}");
        }
    }

    #[test]
    fn scan_matches_serial() {
        let list = gen::random_list(30_000, 77);
        let vals: Vec<i64> = (0..30_000).map(|i| (i as i64 % 1001) - 500).collect();
        assert_eq!(
            ReidMiller::new(3).scan(&list, &vals, &AddOp),
            listkit::serial::scan(&list, &vals, &AddOp)
        );
        assert_eq!(
            ReidMiller::new(3).scan(&list, &vals, &MaxOp),
            listkit::serial::scan(&list, &vals, &MaxOp)
        );
    }

    #[test]
    fn scan_noncommutative() {
        let list = gen::random_list(12_000, 5);
        let vals: Vec<Affine> =
            (0..12_000).map(|i| Affine::new((i % 5) as i64 - 2, (i % 11) as i64 - 5)).collect();
        assert_eq!(
            ReidMiller::new(9).scan(&list, &vals, &AffineOp),
            listkit::serial::scan(&list, &vals, &AffineOp)
        );
    }

    #[test]
    fn xor_scan_u64() {
        let list = gen::random_list(9_000, 66);
        let vals: Vec<u64> = (0..9_000u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        assert_eq!(
            ReidMiller::new(2).scan(&list, &vals, &XorOp),
            listkit::serial::scan(&list, &vals, &XorOp)
        );
    }

    #[test]
    fn explicit_m_values() {
        let list = gen::random_list(20_000, 4);
        let reference = listkit::serial::rank(&list);
        for m in [2usize, 16, 100, 1000, 4999] {
            assert_eq!(ReidMiller::new(7).with_m(m).rank(&list), reference, "m = {m}");
        }
    }

    #[test]
    fn all_phase2_strategies_agree() {
        let list = gen::random_list(25_000, 12);
        let vals: Vec<i64> = (0..25_000).map(|i| i as i64 % 17).collect();
        let reference = listkit::serial::scan(&list, &vals, &AddOp);
        for p2 in [Phase2::Serial, Phase2::Wyllie, Phase2::Recurse, Phase2::Auto] {
            let rm = ReidMiller::new(5).with_m(3000).with_phase2(p2);
            assert_eq!(rm.scan(&list, &vals, &AddOp), reference, "{p2:?}");
        }
    }

    #[test]
    fn deep_recursion_via_tiny_cutoffs() {
        let mut rm = ReidMiller::new(8).with_m(10_000).with_phase2(Phase2::Recurse);
        rm.serial_cutoff = 64;
        rm.recurse_cutoff = 64;
        let list = gen::random_list(40_000, 3);
        assert_eq!(rm.rank(&list), listkit::serial::rank(&list));
        let vals = vec![2i64; 40_000];
        assert_eq!(rm.scan(&list, &vals, &AddOp), listkit::serial::scan(&list, &vals, &AddOp));
    }

    #[test]
    fn different_seeds_same_answer() {
        let list = gen::random_list(15_000, 1);
        let a = ReidMiller::new(100).rank(&list);
        let b = ReidMiller::new(200).rank(&list);
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_and_blocked_layouts() {
        let s = gen::sequential_list(10_000);
        assert_eq!(ReidMiller::new(1).rank(&s), listkit::serial::rank(&s));
        let b = gen::list_with_layout(10_000, gen::Layout::Blocked(64), 9);
        assert_eq!(ReidMiller::new(1).rank(&b), listkit::serial::rank(&b));
    }

    #[test]
    fn every_lane_count_is_byte_identical() {
        // The tentpole invariant: interleaving never changes results —
        // rank and non-commutative scan agree with the serial oracle at
        // every lane count, on friendly and hostile layouts.
        use listkit::ops::{Affine, AffineOp};
        let n = 30_000;
        for layout in [gen::Layout::Random, gen::Layout::Blocked(64), gen::Layout::Sequential] {
            let list = gen::list_with_layout(n, layout, 41);
            let rank_ref = listkit::serial::rank(&list);
            let funcs: Vec<Affine> =
                (0..n).map(|i| Affine::new((i % 5) as i64 - 2, (i % 11) as i64 - 5)).collect();
            let scan_ref = listkit::serial::scan(&list, &funcs, &AffineOp);
            for lanes in [1usize, 2, 4, 8, 16] {
                let rm = ReidMiller::new(6).with_lanes(lanes);
                assert_eq!(rm.rank(&list), rank_ref, "{layout:?}, lanes = {lanes}");
                assert_eq!(rm.scan(&list, &funcs, &AffineOp), scan_ref, "{layout:?} lanes {lanes}");
            }
        }
    }

    #[test]
    fn lane_telemetry_accumulates() {
        let list = gen::random_list(50_000, 7);
        let mut scratch = RankScratch::new();
        let mut out = Vec::new();
        ReidMiller::new(1).rank_into(&list, &mut scratch, &mut out);
        let stats = scratch.telemetry.snapshot();
        // Phases 1 and 3 each visit every vertex once.
        assert_eq!(stats.steps, 2 * 50_000);
        assert!(stats.slots >= stats.steps, "occupancy cannot exceed 1");
        assert!(stats.occupancy() > 0.5, "balanced chains keep lanes mostly full: {stats:?}");
    }

    #[test]
    fn default_m_scales_with_lanes() {
        // Each worker wants ≥ K live sublists: the per-thread task
        // floor is 8·K, so (below the n/2048 regime) m grows with K.
        let threads = rayon::current_num_threads();
        let n = 1_000_000;
        assert!(ReidMiller::default_m_for(n, 1) >= threads * 8);
        assert!(ReidMiller::default_m_for(n, 16) >= threads * 8 * 16);
        assert_eq!(ReidMiller::default_m(n), ReidMiller::default_m_for(n, walk::DEFAULT_LANES));
        // The n/4 cap still wins on tiny lists.
        assert!(ReidMiller::default_m_for(40, 16) <= 10);
    }

    #[test]
    fn default_m_sane() {
        assert!(ReidMiller::default_m(1_000_000) >= 8);
        assert!(ReidMiller::default_m(1_000_000) <= 250_000);
        assert!(ReidMiller::default_m(10) >= 1);
    }
}
