//! Reusable per-job scratch buffers for the host Reid-Miller paths.
//!
//! One ranking/scan job allocates several O(n) working arrays (the
//! boundary bitmap, the head-to-sublist map, the output) plus O(m)
//! reduced-list arrays. A batch executor running millions of jobs pays
//! that allocator traffic on every job unless the buffers are threaded
//! back through — [`RankScratch`] is that thread-through: every buffer
//! is cleared and re-sized per run, so its backing allocation is reused
//! whenever the capacity already suffices.

use listkit::walk::{BitSet, LaneTelemetry};
use listkit::Idx;

/// Reusable working memory for [`super::ReidMiller::rank_into`] /
/// [`super::ReidMiller::scan_into`]. Independent of the job's list —
/// one scratch can serve jobs of any size, growing to the largest seen.
#[derive(Debug, Default)]
pub struct RankScratch {
    /// Per-vertex: is this vertex a sublist tail? Packed `u64` bitset:
    /// 1 bit per vertex instead of a `Vec<bool>`'s byte, so the
    /// Phase-0/1/3 boundary checks move 1/8th the memory (O(n/64)
    /// words).
    pub(crate) boundary: BitSet,
    /// Per-vertex: sublist index of each sublist head, `u32::MAX`
    /// elsewhere (O(n)).
    pub(crate) sub_of_head: Vec<u32>,
    /// Sublist head vertices (O(m)).
    pub(crate) heads: Vec<Idx>,
    /// Reduced-list successor indices (O(m)).
    pub(crate) next_sub: Vec<Idx>,
    /// Reduced-list exclusive prefix of sublist lengths (O(m)).
    pub(crate) pre: Vec<u64>,
    /// Stitch-prefix buffer for the sharded rank path (O(fragments)).
    pub(crate) stitch_pre: Vec<u64>,
    /// Lane-occupancy telemetry accumulated by the K-lane walks this
    /// scratch's jobs ran (see [`listkit::walk::LaneStats`]). Batch
    /// executors reset it per measured region and fold the delta into
    /// their stats surface.
    pub telemetry: LaneTelemetry,
}

impl RankScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for lists of up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::default();
        s.boundary.reserve(n);
        s.sub_of_head.reserve(n);
        s
    }

    /// The list length this scratch can currently serve without
    /// reallocating its O(n) buffers.
    pub fn capacity(&self) -> usize {
        self.boundary.capacity().min(self.sub_of_head.capacity())
    }

    /// Approximate heap footprint in bytes (buffer-pool accounting).
    /// The boundary bitset counts its packed words — 1 bit per vertex
    /// of capacity — not one byte per vertex.
    pub fn footprint_bytes(&self) -> usize {
        self.boundary.footprint_bytes()
            + self.sub_of_head.capacity() * std::mem::size_of::<u32>()
            + self.heads.capacity() * std::mem::size_of::<Idx>()
            + self.next_sub.capacity() * std::mem::size_of::<Idx>()
            + self.pre.capacity() * std::mem::size_of::<u64>()
            + self.stitch_pre.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_counts_packed_boundary_bits() {
        let s = RankScratch::with_capacity(4096);
        // 4096 bits = 512 bytes of boundary words, not 4096 bytes of
        // bools; sub_of_head dominates at 4 bytes per vertex.
        assert!(s.boundary.footprint_bytes() >= 4096 / 8);
        assert!(s.boundary.footprint_bytes() < 4096);
        assert!(s.footprint_bytes() >= 4096 / 8 + 4096 * 4);
        assert!(s.capacity() >= 4096);
    }
}
