//! Reusable per-job scratch buffers for the host Reid-Miller paths.
//!
//! One ranking/scan job allocates several O(n) working arrays (the
//! boundary bitmap, the head-to-sublist map, the output) plus O(m)
//! reduced-list arrays. A batch executor running millions of jobs pays
//! that allocator traffic on every job unless the buffers are threaded
//! back through — [`RankScratch`] is that thread-through: every `Vec` is
//! `clear()`ed and re-`resize()`d per run, so its backing allocation is
//! reused whenever the capacity already suffices.

use listkit::Idx;

/// Reusable working memory for [`super::ReidMiller::rank_into`] /
/// [`super::ReidMiller::scan_into`]. Independent of the job's list —
/// one scratch can serve jobs of any size, growing to the largest seen.
#[derive(Debug, Default)]
pub struct RankScratch {
    /// Per-vertex: is this vertex a sublist tail? (O(n)).
    pub(crate) boundary: Vec<bool>,
    /// Per-vertex: sublist index of each sublist head, `u32::MAX`
    /// elsewhere (O(n)).
    pub(crate) sub_of_head: Vec<u32>,
    /// Sublist head vertices (O(m)).
    pub(crate) heads: Vec<Idx>,
    /// Reduced-list successor indices (O(m)).
    pub(crate) next_sub: Vec<Idx>,
    /// Reduced-list exclusive prefix of sublist lengths (O(m)).
    pub(crate) pre: Vec<u64>,
}

impl RankScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for lists of up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self::default();
        s.boundary.reserve(n);
        s.sub_of_head.reserve(n);
        s
    }

    /// The list length this scratch can currently serve without
    /// reallocating its O(n) buffers.
    pub fn capacity(&self) -> usize {
        self.boundary.capacity().min(self.sub_of_head.capacity())
    }

    /// Approximate heap footprint in bytes (buffer-pool accounting).
    pub fn footprint_bytes(&self) -> usize {
        self.boundary.capacity() * std::mem::size_of::<bool>()
            + self.sub_of_head.capacity() * std::mem::size_of::<u32>()
            + self.heads.capacity() * std::mem::size_of::<Idx>()
            + self.next_sub.capacity() * std::mem::size_of::<Idx>()
            + self.pre.capacity() * std::mem::size_of::<u64>()
    }
}
