//! The serial baseline (paper §2.1) — re-exported from `listkit` so the
//! host backend exposes all five algorithms uniformly.

use listkit::{LinkedList, ScanOp};

/// Serial list ranking.
pub fn rank(list: &LinkedList) -> Vec<u64> {
    listkit::serial::rank(list)
}

/// Serial exclusive list scan.
pub fn scan<T: Copy, Op: ScanOp<T>>(list: &LinkedList, values: &[T], op: &Op) -> Vec<T> {
    listkit::serial::scan(list, values, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::AddOp;

    #[test]
    fn reexports_agree() {
        let list = gen::random_list(128, 3);
        assert_eq!(rank(&list), listkit::serial::rank(&list));
        let vals = vec![2i64; 128];
        assert_eq!(scan(&list, &vals, &AddOp), listkit::serial::scan(&list, &vals, &AddOp));
    }
}
