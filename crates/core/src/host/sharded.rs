//! Shard-parallel huge-list ranking with a model-dispatched stitch.
//!
//! The representation and the parallel shard-local/broadcast phases
//! live in [`listkit::sharded`]; this module supplies the policy the
//! substrate deliberately leaves open: **how to rank the contracted
//! boundary list**. The stitch is itself a list-ranking problem — a
//! weighted scan over one vertex per fragment — so it is dispatched
//! through the paper's cost model ([`rankmodel::predict::predict_best`])
//! exactly like a top-level job: a serial walk when the contracted list
//! is small, Reid-Miller when a fragment-heavy topology leaves it long
//! enough to amortize a parallel pass.

use crate::api::Algorithm;
use crate::host::RankScratch;
use listkit::ops::AddOp;
use listkit::sharded::ShardedList;
use listkit::walk::LaneStats;
use listkit::{LinkedList, ScanOp};
use rankmodel::predict::{predict_best_op_lanes, AlgChoice};
use std::time::Instant;

/// Execution metadata of one sharded ranking run.
#[derive(Clone, Copy, Debug)]
pub struct ShardedReport {
    /// Shards the list was split into.
    pub shards: usize,
    /// Fragments in the contracted boundary list.
    pub fragments: usize,
    /// Algorithm the stitch phase was dispatched to.
    pub stitch_algorithm: Algorithm,
    /// Nanoseconds spent in the stitch phase (contracted-list scan).
    pub stitch_ns: u64,
}

/// Rank `list` through the shard-parallel path with shards of at most
/// `shard_size` vertices, walking each shard's fragments with `lanes`
/// interleaved cursors, writing the ranks into `out` (byte-identical
/// to [`listkit::serial::rank`] at every lane count). `scratch` serves
/// the stitch phase — its dedicated prefix buffer when the contracted
/// list ranks serially (no per-call allocation), its working arrays
/// when the contracted list is long enough to rank in parallel — and
/// accumulates the walkers' lane-occupancy telemetry.
pub fn rank_sharded_into(
    list: &LinkedList,
    shard_size: usize,
    lanes: usize,
    seed: u64,
    scratch: &mut RankScratch,
    out: &mut Vec<u64>,
) -> ShardedReport {
    let sharded = ShardedList::build(list, shard_size).with_lanes(lanes);
    rank_sharded_prebuilt_into(&sharded, seed, scratch, out)
}

/// Rank through an **already-built** [`ShardedList`] — the resident-
/// dataset fast path: the shard decomposition, boundary table, and lane
/// policy were fixed at build time (or fetched from an artifact cache),
/// so this run pays only the stitch and the final prefix walk. The
/// sharded representation's lane telemetry is cumulative across runs;
/// only this call's delta is folded into `scratch.telemetry` so shared
/// artifacts don't double-count (concurrent runs over the same artifact
/// may attribute each other's steps — the counters are advisory).
pub fn rank_sharded_prebuilt_into(
    sharded: &ShardedList,
    seed: u64,
    scratch: &mut RankScratch,
    out: &mut Vec<u64>,
) -> ShardedReport {
    let lanes = sharded.policy().lanes;
    let before = sharded.lane_stats();
    let bt = sharded.boundary();
    let choice = stitch_choice(bt.fragment_count(), std::mem::size_of::<u64>(), lanes);
    let t0 = Instant::now();
    match choice {
        Algorithm::Serial => bt.serial_prefix_into(&mut scratch.stitch_pre),
        _ => {
            let contracted = bt.to_list();
            let lens: Vec<i64> = bt.lens().iter().map(|&l| l as i64).collect();
            let mut rm = crate::host::ReidMiller::new(seed).with_lanes(lanes);
            rm.m = None;
            let mut scanned = Vec::new();
            rm.scan_into(&contracted, &lens, &AddOp, scratch, &mut scanned);
            scratch.stitch_pre.clear();
            scratch.stitch_pre.extend(scanned.iter().map(|&x| x as u64));
        }
    }
    let stitch_ns = t0.elapsed().as_nanos() as u64;
    sharded.rank_into_with_prefix(&scratch.stitch_pre, out);
    let after = sharded.lane_stats();
    scratch.telemetry.add(&LaneStats {
        steps: after.steps.saturating_sub(before.steps),
        slots: after.slots.saturating_sub(before.slots),
    });
    ShardedReport {
        shards: sharded.shard_count(),
        fragments: sharded.fragment_count(),
        stitch_algorithm: choice,
        stitch_ns,
    }
}

/// Convenience wrapper allocating fresh buffers at the default lane
/// count.
pub fn rank_sharded(list: &LinkedList, shard_size: usize, seed: u64) -> (Vec<u64>, ShardedReport) {
    let mut out = Vec::new();
    let mut scratch = RankScratch::new();
    let report = rank_sharded_into(
        list,
        shard_size,
        listkit::walk::DEFAULT_LANES,
        seed,
        &mut scratch,
        &mut out,
    );
    (out, report)
}

/// Exclusive **generic-operator scan** through the shard-parallel path:
/// per-fragment operator totals are computed shard-locally in parallel
/// (the generic analogue of the boundary table's fragment lengths), the
/// contracted list of totals is op-scanned as the stitch — dispatched
/// through the op- and lane-aware cost model ([`predict_best_op_lanes`],
/// which accounts for the value width) — and every fragment is re-walked seeded with
/// its global prefix. Byte-identical to [`listkit::serial::scan`] for
/// any associative operator, commutative or not: fragment order along
/// the contracted list *is* global list order.
#[allow(clippy::too_many_arguments)]
pub fn scan_sharded_into<T, Op>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    shard_size: usize,
    lanes: usize,
    seed: u64,
    scratch: &mut RankScratch,
    out: &mut Vec<T>,
) -> ShardedReport
where
    T: Copy + Send + Sync,
    Op: ScanOp<T>,
{
    let sharded = ShardedList::build(list, shard_size).with_lanes(lanes);
    scan_sharded_prebuilt_into(&sharded, values, op, seed, scratch, out)
}

/// Generic-operator scan through an **already-built** [`ShardedList`]
/// — the scan analogue of [`rank_sharded_prebuilt_into`], with the same
/// telemetry-delta contract.
pub fn scan_sharded_prebuilt_into<T, Op>(
    sharded: &ShardedList,
    values: &[T],
    op: &Op,
    seed: u64,
    scratch: &mut RankScratch,
    out: &mut Vec<T>,
) -> ShardedReport
where
    T: Copy + Send + Sync,
    Op: ScanOp<T>,
{
    let lanes = sharded.policy().lanes;
    let before = sharded.lane_stats();
    let totals = sharded.fragment_totals(values, op);
    let bt = sharded.boundary();
    let k = bt.fragment_count();
    let choice = stitch_choice(k, std::mem::size_of::<T>(), lanes);
    let t0 = Instant::now();
    let prefix = match choice {
        Algorithm::Serial => bt.serial_exclusive(&totals, op),
        _ => {
            let contracted = bt.to_list();
            let mut rm = crate::host::ReidMiller::new(seed).with_lanes(lanes);
            rm.m = None;
            let mut scanned = Vec::new();
            rm.scan_into(&contracted, &totals, op, scratch, &mut scanned);
            scanned
        }
    };
    let stitch_ns = t0.elapsed().as_nanos() as u64;
    sharded.scan_into_with_prefix(values, op, &prefix, out);
    let after = sharded.lane_stats();
    scratch.telemetry.add(&LaneStats {
        steps: after.steps.saturating_sub(before.steps),
        slots: after.slots.saturating_sub(before.slots),
    });
    ShardedReport {
        shards: sharded.shard_count(),
        fragments: k,
        stitch_algorithm: choice,
        stitch_ns,
    }
}

/// Convenience wrapper for [`scan_sharded_into`] allocating fresh
/// buffers at the default lane count.
pub fn scan_sharded<T, Op>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    shard_size: usize,
    seed: u64,
) -> (Vec<T>, ShardedReport)
where
    T: Copy + Send + Sync,
    Op: ScanOp<T>,
{
    let mut out = Vec::new();
    let mut scratch = RankScratch::new();
    let report = scan_sharded_into(
        list,
        values,
        op,
        shard_size,
        listkit::walk::DEFAULT_LANES,
        seed,
        &mut scratch,
        &mut out,
    );
    (out, report)
}

/// One dispatch rule for every stitch (rank and generic scan): the
/// op-width-aware cost model picks the backend for the contracted
/// length, the ambient thread budget, and the lane count the stitch
/// would actually run with (a single-lane pin must not be promised the
/// multi-lane discount). Reid-Miller is the host's only work-efficient
/// parallel algorithm, so every parallel pick maps there (same
/// reasoning as the engine planner's prior).
fn stitch_choice(fragments: usize, elem_bytes: usize, lanes: usize) -> Algorithm {
    match predict_best_op_lanes(fragments, rayon::current_num_threads(), elem_bytes, lanes) {
        AlgChoice::Serial => Algorithm::Serial,
        _ => Algorithm::ReidMiller,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen::{self, Layout};

    #[test]
    fn sharded_rank_matches_serial_and_reports() {
        let list = gen::list_with_layout(60_000, Layout::Blocked(128), 5);
        let (ranks, report) = rank_sharded(&list, 4096, 0x1994);
        assert_eq!(ranks, listkit::serial::rank(&list));
        assert_eq!(report.shards, 60_000usize.div_ceil(4096));
        // One fragment per block, minus the blocks that happen to land
        // adjacent to their traversal predecessor inside one shard.
        let blocks = 60_000usize.div_ceil(128);
        assert!(
            report.fragments <= blocks && report.fragments >= blocks / 2,
            "{} fragments for {blocks} blocks",
            report.fragments
        );
        assert_eq!(report.stitch_algorithm, Algorithm::Serial, "a few hundred rank serially");
    }

    #[test]
    fn fragment_heavy_topology_dispatches_parallel_stitch() {
        // A random permutation contracts to ≈ n fragments; the model
        // must route a list that long to the parallel stitch — and the
        // result must still be exact.
        let n = 200_000;
        let list = gen::random_list(n, 3);
        let (ranks, report) = rank_sharded(&list, 16_384, 7);
        assert_eq!(ranks, listkit::serial::rank(&list));
        assert!(report.fragments > n / 2);
        if rayon::current_num_threads() >= 2 {
            assert_eq!(report.stitch_algorithm, Algorithm::ReidMiller);
        }
    }

    #[test]
    fn tiny_and_degenerate_sizes() {
        for n in [1usize, 2, 3, 5] {
            let list = gen::random_list(n, n as u64);
            let (ranks, report) = rank_sharded(&list, 2, 0);
            assert_eq!(ranks, listkit::serial::rank(&list), "n = {n}");
            assert_eq!(report.shards, n.div_ceil(2));
        }
    }

    #[test]
    fn generic_scan_sharded_matches_serial() {
        use listkit::ops::{Affine, AffineOp, MaxOp};
        let n = 50_000;
        let list = gen::list_with_layout(n, Layout::Blocked(128), 5);
        let vals: Vec<i64> = (0..n as i64).map(|i| (i % 19) - 9).collect();
        let (got, report) = scan_sharded(&list, &vals, &MaxOp, 4096, 0x1994);
        assert_eq!(got, listkit::serial::scan(&list, &vals, &MaxOp));
        assert_eq!(report.shards, n.div_ceil(4096));
        // The non-commutative trap through the full dispatched path,
        // on the fragment-heavy topology that forces a parallel stitch.
        let list = gen::random_list(n, 9);
        let funcs: Vec<Affine> =
            (0..n).map(|i| Affine::new((i % 3) as i64 - 1, (i % 7) as i64)).collect();
        let (got, report) = scan_sharded(&list, &funcs, &AffineOp, 4096, 7);
        assert_eq!(got, listkit::serial::scan(&list, &funcs, &AffineOp));
        assert!(report.fragments > n / 2, "random permutation barely contracts");
        if rayon::current_num_threads() >= 2 {
            assert_eq!(report.stitch_algorithm, Algorithm::ReidMiller);
        }
    }
}
