//! Wyllie's pointer jumping (paper §2.2), host backend.
//!
//! Every vertex repeatedly replaces its predecessor pointer with its
//! predecessor's predecessor while folding in the predecessor's partial
//! sum; after `⌈log₂ n⌉` rounds every vertex holds the inclusive prefix
//! of the whole list up to itself. Simple, `O(log n)` time — but
//! `O(n log n)` work, which is why it loses to the work-efficient
//! algorithm on long lists (Fig. 1).
//!
//! We jump *predecessor* links (built by one parallel scatter) so the
//! scan is a true exclusive prefix for arbitrary associative operators,
//! including non-commutative ones.

use crate::host::prev::build_prev;
use listkit::{Idx, LinkedList, ScanOp};
use rayon::prelude::*;

/// Wyllie's algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Wyllie;

impl Wyllie {
    /// Number of jumping rounds for a list of `n` vertices:
    /// `⌈log₂(n−1)⌉` (the paper §2.2). The seeding pass already covers a
    /// window of one predecessor, so doubling `⌈log₂(n−1)⌉` times
    /// reaches the maximum exclusive-window length `n−1`.
    pub fn rounds(n: usize) -> u32 {
        if n <= 2 {
            0
        } else {
            (n - 1).next_power_of_two().trailing_zeros()
        }
    }

    /// Exclusive list scan.
    pub fn scan<T, Op>(&self, list: &LinkedList, values: &[T], op: &Op) -> Vec<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        assert_eq!(values.len(), list.len());
        let n = list.len();
        let head = list.head() as usize;
        let mut prev = build_prev(list);
        // Seed each vertex with its *predecessor's* value (identity at
        // the head): `s[i]` then always covers the window of up-to-2^r
        // values strictly before `i`, and once a pointer saturates at
        // the head it keeps folding in the identity — idempotent, no
        // conditionals needed (the same trick the paper plays with
        // zeroed sublist tails).
        let mut s: Vec<T> = (0..n)
            .map(|i| if i == head { op.identity() } else { values[prev[i] as usize] })
            .collect();

        for _ in 0..Self::rounds(n) {
            let (new_s, new_prev): (Vec<T>, Vec<Idx>) = (0..n)
                .into_par_iter()
                .map(|i| {
                    let p = prev[i] as usize;
                    (op.combine(s[p], s[i]), prev[p])
                })
                .unzip();
            s = new_s;
            prev = new_prev;
        }
        // `s` is the exclusive prefix directly.
        s
    }

    /// List ranking.
    pub fn rank(&self, list: &LinkedList) -> Vec<u64> {
        let ones = vec![1i64; list.len()];
        self.scan(list, &ones, &listkit::ops::AddOp).into_iter().map(|r| r as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::{AddOp, Affine, AffineOp, MaxOp};

    #[test]
    fn rounds_formula() {
        assert_eq!(Wyllie::rounds(1), 0);
        assert_eq!(Wyllie::rounds(2), 0); // seeding alone covers n = 2
        assert_eq!(Wyllie::rounds(3), 1);
        assert_eq!(Wyllie::rounds(1025), 10); // 2^10 = 1024 = n−1 exactly
        assert_eq!(Wyllie::rounds(1026), 11); // the sawtooth step
    }

    #[test]
    fn rank_matches_serial() {
        for n in [1usize, 2, 3, 7, 64, 1000, 4097] {
            let list = gen::random_list(n, n as u64 + 7);
            assert_eq!(Wyllie.rank(&list), listkit::serial::rank(&list), "n = {n}");
        }
    }

    #[test]
    fn scan_matches_serial_add() {
        let list = gen::random_list(513, 5);
        let vals: Vec<i64> = (0..513).map(|i| (i as i64 % 11) - 5).collect();
        assert_eq!(Wyllie.scan(&list, &vals, &AddOp), listkit::serial::scan(&list, &vals, &AddOp));
    }

    #[test]
    fn scan_matches_serial_max() {
        let list = gen::random_list(300, 8);
        let vals: Vec<i64> = (0..300).map(|i| ((i * 37) % 101) as i64).collect();
        assert_eq!(Wyllie.scan(&list, &vals, &MaxOp), listkit::serial::scan(&list, &vals, &MaxOp));
    }

    #[test]
    fn scan_noncommutative_affine() {
        let list = gen::random_list(256, 11);
        let vals: Vec<Affine> =
            (0..256).map(|i| Affine::new((i % 7) as i64 - 3, (i % 13) as i64)).collect();
        assert_eq!(
            Wyllie.scan(&list, &vals, &AffineOp),
            listkit::serial::scan(&list, &vals, &AffineOp)
        );
    }

    #[test]
    fn sequential_layout_also_works() {
        let list = gen::sequential_list(100);
        assert_eq!(Wyllie.rank(&list), listkit::serial::rank(&list));
    }
}
