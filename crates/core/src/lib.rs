//! # listrank — parallel list ranking and list scan
//!
//! This crate is the paper's primary contribution: **Reid-Miller's
//! sublist-based list-ranking/list-scan algorithm**, together with the
//! four comparison algorithms the paper implements (§2), each on two
//! backends:
//!
//! * [`host`] — real parallelism on the build machine via `rayon`.
//!   Virtual processors become work-stealing tasks; the paper's
//!   requirement `m ≫ p` maps directly onto over-decomposition.
//! * [`sim`] — the algorithms executed over real data on the `vmach`
//!   Cray C90 cost simulator, with every vectorized loop charged the
//!   paper's published (or calibrated) cycle costs. This backend
//!   regenerates the paper's tables and figures deterministically.
//!
//! ## The algorithm (paper §2.5)
//!
//! 1. **Phase 0 / Initialization** — split the list at `m` random
//!    vertices into `m+1` independent sublists.
//! 2. **Phase 1** — traverse every sublist, computing its operator-sum;
//!    periodically *pack* away completed sublists at the analytically
//!    optimal points `S_1 < S_2 < …` (see `rankmodel`).
//! 3. **Phase 2** — list-scan the reduced list of `m+1` sublist sums
//!    (serially, with Wyllie's algorithm, or recursively).
//! 4. **Phase 3** — re-traverse each sublist, seeding it with its
//!    Phase-2 prefix, producing the final scan values.
//! 5. **Restore** — reconnect the destructively split list (simulated
//!    backend; the host backend is non-destructive).
//!
//! The result is work-efficient (≈ 2× serial work), has small constants,
//! and needs only `5p + c` extra space — at the cost of `O(n/p +
//! (n/m)·log m)` instead of optimal `O(n/p + log n)` time, a trade the
//! paper argues is right whenever `n ≫ p`.
//!
//! ## Quick start
//!
//! ```
//! use listkit::gen;
//! use listrank::prelude::*;
//!
//! let list = gen::random_list(10_000, 42);
//! let ranks = HostRunner::new(Algorithm::ReidMiller).rank(&list);
//! assert_eq!(ranks[list.head() as usize], 0);
//!
//! // Same computation on the simulated Cray C90, with a cycle count:
//! let run = SimRunner::new(Algorithm::ReidMiller, 1).rank(&list);
//! assert_eq!(run.out, ranks);
//! println!("{} cycles ({:.1} ns/vertex)", run.cycles,
//!          run.cycles.ns_per(list.len(), 4.2));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
pub mod host;
pub mod sim;
pub mod tuning;
mod util;

pub use api::{Algorithm, HostRunner, SimRunner};
pub use sim::SimRun;
pub use tuning::SimParams;

/// Convenient glob import.
pub mod prelude {
    pub use crate::api::{Algorithm, HostRunner, SimRunner};
    pub use crate::sim::SimRun;
    pub use crate::tuning::SimParams;
    pub use listkit::ops::{AddOp, AffineOp, MaxOp, MinOp, XorOp};
    pub use listkit::{LinkedList, ScanOp, ValuedList};
}
