//! Simulated Anderson–Miller random mate (paper §2.4).
//!
//! Virtual-processor queues (one per vector element on the C90: the
//! paper had 128 per CPU), a biased coin with P\[male\] = 0.9 (the
//! paper's optimization — "the result was to reduce the number of
//! rounds and the run time by about 40%"), no packing, and a switch to
//! the serial algorithm when only a few queues remain. Per-round cost
//! is proportional to the number of *active queues*, so rounds are
//! executed for real.

use super::machine::{SimMachine, SimRun};
use listkit::{Idx, LinkedList, ScanOp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vmach::{Kernel, MachineConfig};

/// Tunables for the simulated Anderson–Miller run.
#[derive(Clone, Copy, Debug)]
pub struct AmParams {
    /// Queues per CPU (paper: the 128 vector elements).
    pub queues_per_proc: usize,
    /// P\[male\] for queue tops (paper's optimized value: 0.9; the
    /// original algorithm: 0.5).
    pub male_bias: f64,
    /// Switch to the serial finish when this many queues remain active.
    pub serial_queue_threshold: usize,
}

impl Default for AmParams {
    fn default() -> Self {
        Self { queues_per_proc: 128, male_bias: 0.9, serial_queue_threshold: 8 }
    }
}

/// Simulated Anderson–Miller list scan.
pub fn scan<T, Op>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    config: MachineConfig,
    params: AmParams,
    seed: u64,
) -> SimRun<T>
where
    T: Copy,
    Op: ScanOp<T>,
{
    assert!(params.male_bias > 0.0 && params.male_bias <= 1.0);
    assert_eq!(values.len(), list.len());
    let n = list.len();
    let head = list.head();
    let mut m = SimMachine::new(config);
    let nv = (params.queues_per_proc * m.config().n_procs).min(n).max(1);

    let mut next: Vec<Idx> = list.links().to_vec();
    let mut prev: Vec<Idx> = list.predecessors();
    m.set_region("setup");
    m.charge_split(Kernel::BuildPrev, n);
    let mut val: Vec<T> = values.to_vec();
    let mut live = vec![true; n];
    let mut live_count = n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events: Vec<(Idx, Idx, T)> = Vec::new();

    let chunk = n.div_ceil(nv);
    let mut pos: Vec<usize> = (0..nv).map(|k| k * chunk).collect();
    let ends: Vec<usize> = (0..nv).map(|k| ((k + 1) * chunk).min(n)).collect();
    let bias_num = (params.male_bias * u32::MAX as f64) as u32;

    m.set_region("contract");
    loop {
        // Gather this round's tops.
        let mut tops: Vec<(usize, Idx)> = Vec::new();
        let mut male = vec![false; n];
        for k in 0..nv {
            while pos[k] < ends[k] && (pos[k] as Idx == head || !live[pos[k]]) {
                pos[k] += 1;
            }
            if pos[k] < ends[k] {
                let q = pos[k] as Idx;
                male[q as usize] = rng.random_range(0..=u32::MAX) < bias_num;
                tops.push((k, q));
            }
        }
        let active = tops.len();
        if active <= params.serial_queue_threshold || live_count <= 2 {
            break;
        }
        // One round over the active queues: coin, mate check, splice.
        m.charge_split(Kernel::AndersonMillerRound, active);
        m.charge_sync();
        for &(k, q) in &tops {
            let qi = q as usize;
            if !male[qi] || male[prev[qi] as usize] {
                continue;
            }
            let p = prev[qi];
            let pi = p as usize;
            events.push((p, q, val[pi]));
            val[pi] = op.combine(val[pi], val[qi]);
            if next[qi] == q {
                next[pi] = p;
            } else {
                next[pi] = next[qi];
                prev[next[qi] as usize] = p;
            }
            live[qi] = false;
            live_count -= 1;
            pos[k] += 1;
        }
    }

    // Serial finish over the remaining live run-starts.
    m.set_region("serial-finish");
    m.charge_serial(Kernel::SerialScan, live_count);
    let mut out = vec![op.identity(); n];
    let mut acc = op.identity();
    let mut cur = head;
    loop {
        out[cur as usize] = acc;
        acc = op.combine(acc, val[cur as usize]);
        if next[cur as usize] == cur {
            break;
        }
        cur = next[cur as usize];
    }

    // Expansion (vectorized over the whole event list; events are
    // independent given reverse order, processed in waves of nv).
    m.set_region("expand");
    if !events.is_empty() {
        m.charge_split(Kernel::AndersonMillerExpand, events.len());
    }
    for &(p, q, saved) in events.iter().rev() {
        out[q as usize] = op.combine(out[p as usize], saved);
    }
    // Space: prev links + working copies + event stack (Table II: >2n).
    let extra = n + 2 * n + 3 * n;
    m.finish(out, n, extra)
}

/// Simulated Anderson–Miller list rank.
pub fn rank(list: &LinkedList, config: MachineConfig, params: AmParams, seed: u64) -> SimRun<u64> {
    let ones = vec![1i64; list.len()];
    let run = scan(list, &ones, &listkit::ops::AddOp, config, params, seed);
    SimRun {
        out: run.out.into_iter().map(|x| x as u64).collect(),
        counter: run.counter,
        cycles: run.cycles,
        n: run.n,
        clock_ns: run.clock_ns,
        element_ops: run.element_ops,
        extra_words: run.extra_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::AddOp;

    fn c90() -> MachineConfig {
        MachineConfig::c90(1)
    }

    #[test]
    fn output_matches_serial() {
        let list = gen::random_list(3000, 4);
        let r = rank(&list, c90(), AmParams::default(), 7);
        assert_eq!(r.out, listkit::serial::rank(&list));
    }

    #[test]
    fn faster_than_miller_reif_slower_than_ours() {
        // Paper: AM ≈ 3× faster than MR, ≈ 7× slower than Reid-Miller
        // (≈ 52 cycles/vertex vs ≈ 150 vs 7.4).
        let list = gen::random_list(200_000, 5);
        let am = rank(&list, c90(), AmParams::default(), 1);
        let mr = super::super::miller_reif::rank(&list, c90(), 1);
        let ratio = mr.cycles.get() / am.cycles.get();
        assert!(ratio > 2.0 && ratio < 4.5, "MR/AM ratio {ratio:.2}");
        let am_pv = am.cycles_per_vertex();
        assert!(am_pv > 35.0 && am_pv < 75.0, "AM cycles/vertex {am_pv:.1}");
    }

    #[test]
    fn biased_coin_beats_unbiased() {
        // The paper's 0.9 bias cut runtime by ≈ 40% vs 0.5.
        let list = gen::random_list(100_000, 9);
        let biased = rank(&list, c90(), AmParams::default(), 3);
        let unbiased = rank(&list, c90(), AmParams { male_bias: 0.5, ..AmParams::default() }, 3);
        let saving = 1.0 - biased.cycles.get() / unbiased.cycles.get();
        assert!(saving > 0.15 && saving < 0.6, "bias saving {:.0}% (paper: ≈40%)", saving * 100.0);
        assert_eq!(biased.out, unbiased.out);
    }

    #[test]
    fn scan_values_correct() {
        let list = gen::random_list(900, 2);
        let vals: Vec<i64> = (0..900).map(|i| (i as i64 % 7) - 3).collect();
        let s = scan(&list, &vals, &AddOp, c90(), AmParams::default(), 4);
        assert_eq!(s.out, listkit::serial::scan(&list, &vals, &AddOp));
    }

    #[test]
    fn multiprocessor_scales() {
        let list = gen::random_list(300_000, 6);
        let t1 = rank(&list, MachineConfig::c90(1), AmParams::default(), 1);
        let t8 = rank(&list, MachineConfig::c90(8), AmParams::default(), 1);
        let speedup = t1.cycles.get() / t8.cycles.get();
        assert!(speedup > 3.0, "AM should scale on multiple CPUs: {speedup:.2}");
    }
}
