//! Shared cycle-charging helper and run record for the simulated
//! backend.

use vmach::{CostProfile, CycleCounter, Cycles, Kernel, MachineConfig};

/// The result of one simulated run: exact output plus deterministic
/// cycle accounting.
#[derive(Clone, Debug)]
pub struct SimRun<T> {
    /// The computed ranks/scan values.
    pub out: Vec<T>,
    /// Per-region cycle breakdown.
    pub counter: CycleCounter,
    /// Elapsed cycles (on multiprocessors: the critical path, not the
    /// summed work).
    pub cycles: Cycles,
    /// List length.
    pub n: usize,
    /// Clock period used for ns conversions.
    pub clock_ns: f64,
    /// Total element-operations charged (work measure, Table II).
    pub element_ops: u64,
    /// Extra space beyond the list itself, in 64-bit words (Table II).
    pub extra_words: usize,
}

impl<T> SimRun<T> {
    /// Nanoseconds per vertex — the unit of Table I and Figs. 1/11.
    pub fn ns_per_vertex(&self) -> f64 {
        self.cycles.ns_per(self.n, self.clock_ns)
    }

    /// Cycles per vertex — the unit of §5's asymptotic numbers.
    pub fn cycles_per_vertex(&self) -> f64 {
        self.cycles.per(self.n)
    }

    /// Work per vertex: charged element-operations / n.
    pub fn ops_per_vertex(&self) -> f64 {
        self.element_ops as f64 / self.n as f64
    }
}

/// A charging context for flat (non-phase-structured) simulated
/// algorithms: per-element costs are contention-scaled and divided
/// across the machine's CPUs (Eq. 6's `g(x)/p`).
#[derive(Clone, Debug)]
pub struct SimMachine {
    config: MachineConfig,
    profile: CostProfile,
    base_profile: CostProfile,
    counter: CycleCounter,
    region: &'static str,
    element_ops: u64,
}

impl SimMachine {
    /// A machine with the C90 profile at the configured processor count.
    pub fn new(config: MachineConfig) -> Self {
        let profile = CostProfile::c90().with_contention(config.contention_factor());
        Self {
            config,
            profile,
            base_profile: CostProfile::c90(),
            counter: CycleCounter::new(),
            region: "main",
            element_ops: 0,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Set the region label for subsequent charges.
    pub fn set_region(&mut self, region: &'static str) {
        self.region = region;
    }

    /// Charge a data-parallel kernel over `x` elements, split across the
    /// machine's CPUs: `te·x/p + t0` (with contention in `te`).
    pub fn charge_split(&mut self, k: Kernel, x: usize) {
        let c = self.profile.kernel(k);
        let p = self.config.n_procs as f64;
        self.counter.charge(self.region, c.te * x as f64 / p + c.t0);
        self.element_ops += x as u64;
    }

    /// Charge inherently serial work (one CPU busy, no self-contention):
    /// `te·x + t0` at the uncontended profile.
    pub fn charge_serial(&mut self, k: Kernel, x: usize) {
        let c = self.base_profile.kernel(k);
        self.counter.charge(self.region, c.te * x as f64 + c.t0);
        self.element_ops += x as u64;
    }

    /// Charge one barrier synchronization.
    pub fn charge_sync(&mut self) {
        self.counter.charge("sync", self.config.sync_cycles);
    }

    /// Elapsed cycles so far.
    pub fn elapsed(&self) -> Cycles {
        self.counter.total()
    }

    /// Finish the run.
    pub fn finish<T>(self, out: Vec<T>, n: usize, extra_words: usize) -> SimRun<T> {
        SimRun {
            out,
            cycles: self.counter.total(),
            counter: self.counter,
            n,
            clock_ns: self.config.clock_ns,
            element_ops: self.element_ops,
            extra_words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_divides_by_procs() {
        let mut m1 = SimMachine::new(MachineConfig::c90(1));
        let mut m8 = SimMachine::new(MachineConfig::c90(8));
        m1.charge_split(Kernel::WyllieRound, 10_000);
        m8.charge_split(Kernel::WyllieRound, 10_000);
        let r = m1.elapsed().get() / m8.elapsed().get();
        assert!(r > 4.0 && r < 8.0, "speedup {r} should be sublinear-but-large");
    }

    #[test]
    fn serial_ignores_contention() {
        let mut m8 = SimMachine::new(MachineConfig::c90(8));
        m8.charge_serial(Kernel::SerialScan, 1000);
        let expect = 43.6 * 1000.0 + 100.0;
        assert!((m8.elapsed().get() - expect).abs() < 1e-9);
    }

    #[test]
    fn run_reports_per_vertex() {
        let mut m = SimMachine::new(MachineConfig::c90(1));
        m.charge_serial(Kernel::SerialRank, 1000);
        let run = m.finish(vec![0u64; 1000], 1000, 0);
        assert!((run.ns_per_vertex() - 42.1 * 4.2).abs() < 1.0);
        assert_eq!(run.element_ops, 1000);
        assert!(run.ops_per_vertex() > 0.99);
    }
}
