//! Simulated Miller–Reif random mate (paper §2.3).
//!
//! Unlike Wyllie, the cost here is data-dependent: each round's charge
//! is proportional to the number of *live* vertices (the paper's
//! version packs every round, so the vector length tracks the live
//! count), and the sequence of live counts depends on the coin flips.
//! The contraction is therefore executed for real, round by round.
//!
//! Per the paper's measurements, this algorithm lands ≈ 20× slower than
//! the Reid-Miller algorithm and ≈ 3.5× slower than serial on long
//! lists — the [`vmach::Kernel::MillerReifRound`] calibration encodes
//! exactly that.

use super::machine::{SimMachine, SimRun};
use listkit::{Idx, LinkedList, ScanOp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vmach::{Kernel, MachineConfig};

/// Simulated Miller–Reif list scan.
pub fn scan<T, Op>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    config: MachineConfig,
    seed: u64,
) -> SimRun<T>
where
    T: Copy,
    Op: ScanOp<T>,
{
    assert_eq!(values.len(), list.len());
    let n = list.len();
    let mut m = SimMachine::new(config);
    let mut next: Vec<Idx> = list.links().to_vec();
    let mut val: Vec<T> = values.to_vec();
    let mut live = vec![true; n];
    // The packed representation keeps live vertices contiguous; we model
    // that by tracking the live id set explicitly.
    let mut live_ids: Vec<Idx> = (0..n as Idx).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rounds: Vec<Vec<(Idx, Idx, T)>> = Vec::new();

    m.set_region("contract");
    while live_ids.len() > 1 {
        // Cost: one full round over the current (packed) live vector,
        // including coin generation, mate checks, splice and re-pack.
        m.charge_split(Kernel::MillerReifRound, live_ids.len());
        m.charge_sync();
        let coins: Vec<bool> = live_ids.iter().map(|_| rng.random_range(0..2u32) == 0).collect();
        let mut coin_of = vec![false; n];
        for (&v, &c) in live_ids.iter().zip(&coins) {
            coin_of[v as usize] = c;
        }
        let mut events: Vec<(Idx, Idx, T)> = Vec::new();
        for &f in &live_ids {
            let fi = f as usize;
            if !coin_of[fi] {
                continue; // male
            }
            let u = next[fi];
            if u == f || coin_of[u as usize] || !live[u as usize] {
                continue;
            }
            events.push((f, u, val[fi]));
            val[fi] = op.combine(val[fi], val[u as usize]);
            next[fi] = if next[u as usize] == u { f } else { next[u as usize] };
            live[u as usize] = false;
        }
        if !events.is_empty() {
            live_ids.retain(|&v| live[v as usize]);
        }
        rounds.push(events);
    }

    // Expansion: reverse the rounds, each a vectorized reinsert.
    m.set_region("expand");
    let mut out = vec![op.identity(); n];
    for round in rounds.iter().rev() {
        if round.is_empty() {
            continue;
        }
        m.charge_split(Kernel::MillerReifExpand, round.len());
        m.charge_sync();
        for &(f, u, saved) in round {
            out[u as usize] = op.combine(out[f as usize], saved);
        }
    }
    // Space: working links + values + live flags + the event stack
    // (vertex, mate, value per splice ≈ 3n words): > 2n, per Table II.
    let extra = 2 * n + n + 3 * n;
    m.finish(out, n, extra)
}

/// Simulated Miller–Reif list rank.
pub fn rank(list: &LinkedList, config: MachineConfig, seed: u64) -> SimRun<u64> {
    let ones = vec![1i64; list.len()];
    let run = scan(list, &ones, &listkit::ops::AddOp, config, seed);
    SimRun {
        out: run.out.into_iter().map(|x| x as u64).collect(),
        counter: run.counter,
        cycles: run.cycles,
        n: run.n,
        clock_ns: run.clock_ns,
        element_ops: run.element_ops,
        extra_words: run.extra_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::AddOp;

    #[test]
    fn output_matches_serial() {
        let list = gen::random_list(1500, 4);
        let r = rank(&list, MachineConfig::c90(1), 7);
        assert_eq!(r.out, listkit::serial::rank(&list));
    }

    #[test]
    fn cost_is_much_higher_than_serial() {
        // Paper: ≈ 3.5× slower than serial for long lists.
        let list = gen::random_list(100_000, 5);
        let mr = rank(&list, MachineConfig::c90(1), 1);
        let serial_cycles = 42.1 * 100_000.0;
        let ratio = mr.cycles.get() / serial_cycles;
        assert!(ratio > 2.0 && ratio < 5.5, "MR/serial ratio {ratio:.2}");
    }

    #[test]
    fn work_is_linear() {
        // Live mass sums to ≈ 4n + n expansion: element ops ≈ 5n.
        let list = gen::random_list(50_000, 6);
        let mr = rank(&list, MachineConfig::c90(1), 2);
        let opv = mr.ops_per_vertex();
        assert!(opv > 3.0 && opv < 7.5, "ops/vertex {opv:.2}");
    }

    #[test]
    fn scan_values() {
        let list = gen::random_list(800, 8);
        let vals: Vec<i64> = (0..800).map(|i| (i as i64 % 31) - 15).collect();
        let s = scan(&list, &vals, &AddOp, MachineConfig::c90(4), 3);
        assert_eq!(s.out, listkit::serial::scan(&list, &vals, &AddOp));
    }
}
