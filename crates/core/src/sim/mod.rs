//! Simulated backend: the five algorithms on the `vmach` Cray C90 cost
//! model.
//!
//! Every implementation executes the real algorithm over real data (so
//! outputs are exact and testable against the serial reference) while
//! charging each vectorized loop its calibrated C90 cycle cost. Results
//! are deterministic, which is what lets the `repro` harness regenerate
//! the paper's tables and figures byte-for-byte across runs.

pub mod anderson_miller;
pub mod machine;
pub mod miller_reif;
pub mod reid_miller;
pub mod serial;
pub mod wyllie;

pub use machine::{SimMachine, SimRun};
pub use reid_miller::ReidMillerSim;
