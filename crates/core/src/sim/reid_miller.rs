//! Simulated Reid-Miller algorithm (paper §3): the faithful C90
//! implementation.
//!
//! This backend mirrors the paper's vectorized implementation closely:
//!
//! * **Destructive splitting** — each chosen random vertex becomes a
//!   sublist tail: its link is replaced by a self-loop and its value by
//!   the identity, after saving the originals. The traversal loops are
//!   then *branch-free*: a finished virtual processor keeps re-adding
//!   the identity at its self-loop ("we can repeatedly add the tail
//!   value without changing the sum").
//! * **Strip-mined virtual processors** — one virtual processor per
//!   sublist; charges are per link-step over the live vector
//!   (`T_InitialScan(x) = 3.4x + 35` etc.).
//! * **Scheduled packing** — load balancing happens at the
//!   model-optimal points `S_1 < S_2 < …` from `rankmodel` (Eq. 4).
//! * **Local-only multiprocessing** — virtual processors are divided
//!   among CPUs once; each CPU packs only its own (paper §5: "we
//!   synchronize only a constant number of times and do no load
//!   balancing across processors"); elapsed time is the slowest CPU.
//! * **Hybrid Phase 2** — serial, Wyllie or recursive by tuned choice.

use super::machine::SimRun;
use crate::tuning::SimParams;
use listkit::{gen, Idx, LinkedList, ScanOp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rankmodel::predict::Phase2Choice;
use vmach::{Kernel, MachineConfig, ParallelTimer};

/// Kernel selection: scan uses the two-gather loops, rank the packed
/// one-gather loops.
#[derive(Clone, Copy, Debug)]
struct Kernels {
    init_scan: Kernel,
    final_scan: Kernel,
    serial: Kernel,
}

const SCAN_KERNELS: Kernels = Kernels {
    init_scan: Kernel::InitialScan,
    final_scan: Kernel::FinalScan,
    serial: Kernel::SerialScan,
};

const RANK_KERNELS: Kernels = Kernels {
    init_scan: Kernel::InitialScanRank,
    final_scan: Kernel::FinalScanRank,
    serial: Kernel::SerialRank,
};

/// The simulated Reid-Miller list scan/rank.
#[derive(Clone, Debug)]
pub struct ReidMillerSim {
    /// Split count, pack schedule and Phase-2 strategy.
    pub params: SimParams,
    /// Seed for the random split positions.
    pub seed: u64,
}

impl ReidMillerSim {
    /// With model-tuned scan parameters.
    pub fn tuned_scan(n: usize, procs: usize, seed: u64) -> Self {
        Self { params: SimParams::tuned_scan(n, procs), seed }
    }

    /// With model-tuned rank parameters.
    pub fn tuned_rank(n: usize, procs: usize, seed: u64) -> Self {
        Self { params: SimParams::tuned_rank(n, procs), seed }
    }

    /// Simulated list scan.
    pub fn scan<T, Op>(
        &self,
        list: &LinkedList,
        values: &[T],
        op: &Op,
        config: MachineConfig,
    ) -> SimRun<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        self.run(list, values, op, config, SCAN_KERNELS)
    }

    /// Simulated list rank (packed one-gather kernels; the scan of
    /// all-ones).
    pub fn rank(&self, list: &LinkedList, config: MachineConfig) -> SimRun<u64> {
        let ones = vec![1i64; list.len()];
        let run = self.run(list, &ones, &listkit::ops::AddOp, config, RANK_KERNELS);
        SimRun {
            out: run.out.into_iter().map(|x| x as u64).collect(),
            counter: run.counter,
            cycles: run.cycles,
            n: run.n,
            clock_ns: run.clock_ns,
            element_ops: run.element_ops,
            extra_words: run.extra_words,
        }
    }

    fn run<T, Op>(
        &self,
        list: &LinkedList,
        values: &[T],
        op: &Op,
        config: MachineConfig,
        kernels: Kernels,
    ) -> SimRun<T>
    where
        T: Copy + Send + Sync,
        Op: ScanOp<T>,
    {
        assert_eq!(values.len(), list.len());
        let n = list.len();
        let p = config.n_procs;
        let mut timer = ParallelTimer::new(config.clone());
        let mut element_ops: u64 = 0;

        // ---- Degenerate sizes: the tuner prescribes plain serial.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let splits = if self.params.m >= 2 && n > 4 {
            gen::random_split_positions(list, self.params.m, &mut rng)
        } else {
            Vec::new()
        };
        if splits.is_empty() {
            let base = vmach::CostProfile::c90();
            let c = base.kernel(kernels.serial);
            timer.charge(0, "serial-fallback", c.at(n));
            let out = listkit::serial::scan(list, values, op);
            return SimRun {
                out,
                cycles: timer.elapsed(),
                counter: timer.merged_counter().clone(),
                n,
                clock_ns: config.clock_ns,
                element_ops: n as u64,
                extra_words: 0,
            };
        }

        // ---- Initialization (destructive, on working copies).
        let k = splits.len() + 1;
        let mut links: Vec<Idx> = list.links().to_vec();
        let mut vals: Vec<T> = values.to_vec();
        let tail = list.tail();

        // Virtual-processor state: the paper's "5p + c" extra words.
        let mut head: Vec<Idx> = Vec::with_capacity(k);
        head.push(list.head());
        head.extend(splits.iter().map(|&r| links[r as usize]));
        // owner[b] = vp whose sublist *follows* boundary b.
        let mut owner = vec![u32::MAX; n];
        // Saved originals of destructively zeroed boundary vertices.
        let mut saved: Vec<T> = vec![op.identity(); n];
        for (i, &r) in splits.iter().enumerate() {
            owner[r as usize] = (i + 1) as u32;
            saved[r as usize] = vals[r as usize];
            vals[r as usize] = op.identity();
            links[r as usize] = r; // self-loop: sublist tail
        }
        saved[tail as usize] = vals[tail as usize];
        vals[tail as usize] = op.identity();

        // CPU c owns virtual processors cpu_lo[c]..cpu_hi[c].
        let cpu_lo: Vec<usize> = (0..p).map(|c| c * k / p).collect();
        let cpu_hi: Vec<usize> = (0..p).map(|c| (c + 1) * k / p).collect();

        for c in 0..p {
            let mut proc = timer.make_proc();
            proc.set_region("init");
            proc.charge_kernel(Kernel::Initialize, cpu_hi[c] - cpu_lo[c]);
            timer.commit(c, proc);
        }
        element_ops += k as u64;
        timer.barrier();

        // ---- Phase 1: sublist sums.
        let mut cur: Vec<usize> = head.iter().map(|&h| h as usize).collect();
        let mut sum: Vec<T> = vec![op.identity(); k];
        for c in 0..p {
            let mut proc = timer.make_proc();
            proc.set_region("phase1");
            let mut active: Vec<usize> = (cpu_lo[c]..cpu_hi[c]).collect();
            let mut done = vec![false; k];
            let mut live = active.len();
            let mut step = 0usize;
            let mut schedule = self.params.schedule.iter().copied().peekable();
            while live > 0 {
                // Branch-free traversal step over the packed vector: the
                // charged length shrinks ONLY at packs — finished virtual
                // processors idle at their self-loops, re-adding the
                // identity, exactly as the paper's loop does.
                proc.charge_kernel(kernels.init_scan, active.len());
                element_ops += active.len() as u64;
                for &i in &active {
                    let v = cur[i];
                    sum[i] = op.combine(sum[i], vals[v]);
                    let nx = links[v] as usize;
                    if nx == v {
                        if !done[i] {
                            done[i] = true;
                            live -= 1;
                        }
                    } else {
                        cur[i] = nx;
                    }
                }
                step += 1;
                // Pack at scheduled points (local-only load balancing).
                if schedule.next_if(|&s| step >= s).is_some() {
                    proc.charge_kernel(Kernel::InitialPack, active.len());
                    element_ops += active.len() as u64;
                    active.retain(|&i| !done[i]);
                }
            }
            timer.commit(c, proc);
        }
        timer.barrier();

        // ---- Build the reduced list of sublist sums.
        let mut totals: Vec<T> = Vec::with_capacity(k);
        let mut next_sub: Vec<Idx> = Vec::with_capacity(k);
        for i in 0..k {
            let t = cur[i]; // terminal boundary vertex of sublist i
            totals.push(op.combine(sum[i], saved[t]));
            let o = owner[t];
            next_sub.push(if o == u32::MAX { i as Idx } else { o });
        }
        for c in 0..p {
            let mut proc = timer.make_proc();
            proc.set_region("find-sublists");
            proc.charge_kernel(Kernel::FindSublistList, cpu_hi[c] - cpu_lo[c]);
            timer.commit(c, proc);
        }
        element_ops += k as u64;
        timer.barrier();

        // ---- Phase 2: scan the reduced list.
        let pre: Vec<T> = match self.params.phase2 {
            Phase2Choice::Serial => {
                let base = vmach::CostProfile::c90();
                timer.charge(0, "phase2", base.kernel(kernels.serial).at(k));
                element_ops += k as u64;
                serial_scan_reduced(&next_sub, &totals, op)
            }
            Phase2Choice::Wyllie => {
                let reduced = LinkedList::new(next_sub.clone(), 0)
                    .expect("reduced list is a valid single path");
                let run = super::wyllie::scan(&reduced, &totals, op, config.clone());
                timer.charge_all("phase2", run.cycles.get());
                element_ops += run.element_ops;
                run.out
            }
            Phase2Choice::Recurse => {
                let reduced = LinkedList::new(next_sub.clone(), 0)
                    .expect("reduced list is a valid single path");
                let inner = ReidMillerSim {
                    params: SimParams::tuned_scan(k, p),
                    seed: self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
                };
                let run = inner.scan(&reduced, &totals, op, config.clone());
                timer.charge_all("phase2", run.cycles.get());
                element_ops += run.element_ops;
                run.out
            }
        };
        timer.barrier();

        // ---- Phase 3: expand prefixes across the sublists.
        let mut out = vec![op.identity(); n];
        let mut acc: Vec<T> = pre;
        let mut cur3: Vec<usize> = head.iter().map(|&h| h as usize).collect();
        for c in 0..p {
            let mut proc = timer.make_proc();
            proc.set_region("phase3");
            let mut active: Vec<usize> = (cpu_lo[c]..cpu_hi[c]).collect();
            let mut done = vec![false; k];
            let mut live = active.len();
            let mut step = 0usize;
            let mut schedule = self.params.schedule.iter().copied().peekable();
            while live > 0 {
                proc.charge_kernel(kernels.final_scan, active.len());
                element_ops += active.len() as u64;
                for &i in &active {
                    let v = cur3[i];
                    out[v] = acc[i];
                    acc[i] = op.combine(acc[i], vals[v]);
                    let nx = links[v] as usize;
                    if nx == v {
                        if !done[i] {
                            done[i] = true;
                            live -= 1;
                        }
                    } else {
                        cur3[i] = nx;
                    }
                }
                step += 1;
                if schedule.next_if(|&s| step >= s).is_some() {
                    proc.charge_kernel(Kernel::FinalPack, active.len());
                    element_ops += active.len() as u64;
                    active.retain(|&i| !done[i]);
                }
            }
            timer.commit(c, proc);
        }
        timer.barrier();

        // ---- Restoration (the real implementation reconnects the list;
        // our working copies are dropped, but the cycles are charged).
        for c in 0..p {
            let mut proc = timer.make_proc();
            proc.set_region("restore");
            proc.charge_kernel(Kernel::RestoreList, cpu_hi[c] - cpu_lo[c]);
            timer.commit(c, proc);
        }
        element_ops += k as u64;
        timer.barrier();

        // The paper's space accounting: five per-virtual-processor words
        // (head, position, sum, random position, successor) + constants.
        let extra_words = 5 * k;
        SimRun {
            out,
            cycles: timer.elapsed(),
            counter: timer.merged_counter().clone(),
            n,
            clock_ns: config.clock_ns,
            element_ops,
            extra_words,
        }
    }
}

/// Serial exclusive scan of the reduced list (head = index 0).
fn serial_scan_reduced<T: Copy, Op: ScanOp<T>>(next_sub: &[Idx], totals: &[T], op: &Op) -> Vec<T> {
    let mut pre = vec![op.identity(); next_sub.len()];
    let mut acc = op.identity();
    let mut at = 0usize;
    loop {
        pre[at] = acc;
        acc = op.combine(acc, totals[at]);
        if next_sub[at] as usize == at {
            break;
        }
        at = next_sub[at] as usize;
    }
    pre
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::{AddOp, Affine, AffineOp, MaxOp};

    fn c90(p: usize) -> MachineConfig {
        MachineConfig::c90(p)
    }

    #[test]
    fn rank_matches_serial() {
        for n in [1usize, 5, 100, 1000, 10_000, 100_000] {
            let list = gen::random_list(n, n as u64 + 3);
            let rm = ReidMillerSim::tuned_rank(n, 1, 9);
            assert_eq!(rm.rank(&list, c90(1)).out, listkit::serial::rank(&list), "n = {n}");
        }
    }

    #[test]
    fn scan_matches_serial_all_ops() {
        let n = 20_000;
        let list = gen::random_list(n, 5);
        let rm = ReidMillerSim::tuned_scan(n, 1, 3);
        let vals: Vec<i64> = (0..n as i64).map(|i| (i % 101) - 50).collect();
        assert_eq!(
            rm.scan(&list, &vals, &AddOp, c90(1)).out,
            listkit::serial::scan(&list, &vals, &AddOp)
        );
        assert_eq!(
            rm.scan(&list, &vals, &MaxOp, c90(1)).out,
            listkit::serial::scan(&list, &vals, &MaxOp)
        );
        let funcs: Vec<Affine> =
            (0..n).map(|i| Affine::new((i % 3) as i64 + 1, (i % 7) as i64 - 3)).collect();
        assert_eq!(
            rm.scan(&list, &funcs, &AffineOp, c90(1)).out,
            listkit::serial::scan(&list, &funcs, &AffineOp)
        );
    }

    #[test]
    fn multiprocessor_output_identical() {
        let n = 50_000;
        let list = gen::random_list(n, 8);
        let reference = listkit::serial::rank(&list);
        for p in [1usize, 2, 4, 8] {
            let rm = ReidMillerSim::tuned_rank(n, p, 4);
            assert_eq!(rm.rank(&list, c90(p)).out, reference, "p = {p}");
        }
    }

    #[test]
    fn asymptotic_scan_cost_near_paper() {
        // Paper §5: 7.4 cycles/vertex asymptotically on one CPU (the
        // model slightly over-predicts; accept 6.5..10.5).
        let n = 2_000_000;
        let list = gen::random_list(n, 1);
        let vals = vec![1i64; n];
        let rm = ReidMillerSim::tuned_scan(n, 1, 1);
        let run = rm.scan(&list, &vals, &AddOp, c90(1));
        let pv = run.cycles_per_vertex();
        assert!(pv > 6.5 && pv < 10.5, "scan cycles/vertex {pv:.2}");
    }

    #[test]
    fn asymptotic_rank_cheaper_than_scan() {
        let n = 2_000_000;
        let list = gen::random_list(n, 2);
        let rank = ReidMillerSim::tuned_rank(n, 1, 1).rank(&list, c90(1));
        let vals = vec![1i64; n];
        let scan = ReidMillerSim::tuned_scan(n, 1, 1).scan(&list, &vals, &AddOp, c90(1));
        assert!(
            rank.cycles.get() < scan.cycles.get() * 0.85,
            "rank {:.2} vs scan {:.2} cycles/vertex",
            rank.cycles_per_vertex(),
            scan.cycles_per_vertex()
        );
    }

    #[test]
    fn beats_serial_eightfold_at_scale() {
        // Paper: "On one processor it is over eight times faster than
        // the serial algorithm on the Cray C90" (rank).
        let n = 4_000_000;
        let list = gen::random_list(n, 3);
        let ours = ReidMillerSim::tuned_rank(n, 1, 1).rank(&list, c90(1));
        let serial_cycles = 42.1 * n as f64;
        let speedup = serial_cycles / ours.cycles.get();
        assert!(speedup > 5.5, "speedup over serial {speedup:.1} (paper: >8)");
    }

    #[test]
    fn multiprocessor_speedup_shape() {
        // Fig. 3: near-linear for long lists, degrading with p.
        let n = 2_000_000;
        let list = gen::random_list(n, 4);
        let vals = vec![1i64; n];
        let t1 = ReidMillerSim::tuned_scan(n, 1, 1).scan(&list, &vals, &AddOp, c90(1)).cycles;
        let t8 = ReidMillerSim::tuned_scan(n, 8, 1).scan(&list, &vals, &AddOp, c90(8)).cycles;
        let s8 = t1.get() / t8.get();
        assert!(s8 > 4.5 && s8 < 8.0, "8-CPU speedup {s8:.2}");
    }

    #[test]
    fn work_is_about_twice_serial() {
        // Contract + expand: each vertex touched twice, plus overheads.
        let n = 1_000_000;
        let list = gen::random_list(n, 5);
        let run = ReidMillerSim::tuned_rank(n, 1, 2).rank(&list, c90(1));
        let opv = run.ops_per_vertex();
        assert!(opv > 1.9 && opv < 3.5, "ops/vertex {opv:.2}");
    }

    #[test]
    fn space_is_5p_plus_c() {
        let n = 500_000;
        let list = gen::random_list(n, 6);
        let rm = ReidMillerSim::tuned_rank(n, 1, 2);
        let run = rm.rank(&list, c90(1));
        assert!(run.extra_words <= 5 * (rm.params.m + 1));
        assert!(run.extra_words < n, "far less than the randomized algorithms' 2n+");
    }

    #[test]
    fn explicit_params_and_no_packing() {
        let n = 30_000;
        let list = gen::random_list(n, 7);
        let reference = listkit::serial::rank(&list);
        let fixed = ReidMillerSim { params: SimParams::fixed_interval(n, 300, 20), seed: 3 };
        assert_eq!(fixed.rank(&list, c90(1)).out, reference);
        let nopack = ReidMillerSim { params: SimParams::no_packing(300), seed: 3 };
        let nopack_run = nopack.rank(&list, c90(1));
        assert_eq!(nopack_run.out, reference);
        // Never packing wastes traversal work on dead sublists.
        let packed_run = fixed.rank(&list, c90(1));
        assert!(
            nopack_run.cycles.get() > packed_run.cycles.get(),
            "no-packing {} should cost more than scheduled packing {}",
            nopack_run.cycles,
            packed_run.cycles
        );
    }

    #[test]
    fn phase_breakdown_present() {
        let n = 100_000;
        let list = gen::random_list(n, 8);
        let run = ReidMillerSim::tuned_rank(n, 1, 1).rank(&list, c90(1));
        for region in ["init", "phase1", "find-sublists", "phase2", "phase3", "restore"] {
            assert!(
                run.counter.region(region).get() > 0.0,
                "missing region {region}: {:?}",
                run.counter
            );
        }
    }
}
