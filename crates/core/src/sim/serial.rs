//! Simulated serial baseline (paper §2.1, Table I's "Serial" column).

use super::machine::{SimMachine, SimRun};
use listkit::{LinkedList, ScanOp};
use vmach::{Kernel, MachineConfig};

/// Serial list rank on the simulated C90 (42.1 cycles/vertex ≈ 177 ns).
pub fn rank(list: &LinkedList, config: MachineConfig) -> SimRun<u64> {
    let mut m = SimMachine::new(config);
    m.set_region("serial-rank");
    m.charge_serial(Kernel::SerialRank, list.len());
    let out = listkit::serial::rank(list);
    m.finish(out, list.len(), 0)
}

/// Serial list scan on the simulated C90 (43.6 cycles/vertex ≈ 183 ns).
pub fn scan<T: Copy, Op: ScanOp<T>>(
    list: &LinkedList,
    values: &[T],
    op: &Op,
    config: MachineConfig,
) -> SimRun<T> {
    let mut m = SimMachine::new(config);
    m.set_region("serial-scan");
    m.charge_serial(Kernel::SerialScan, list.len());
    let out = listkit::serial::scan(list, values, op);
    m.finish(out, list.len(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::AddOp;

    #[test]
    fn table1_serial_times() {
        let list = gen::random_list(100_000, 1);
        let r = rank(&list, MachineConfig::c90(1));
        assert!((r.ns_per_vertex() - 177.0).abs() < 2.0, "rank {}", r.ns_per_vertex());
        let vals = vec![1i64; 100_000];
        let s = scan(&list, &vals, &AddOp, MachineConfig::c90(1));
        assert!((s.ns_per_vertex() - 183.0).abs() < 2.0, "scan {}", s.ns_per_vertex());
    }

    #[test]
    fn output_is_correct() {
        let list = gen::random_list(500, 3);
        let r = rank(&list, MachineConfig::c90(1));
        assert_eq!(r.out, listkit::serial::rank(&list));
    }

    #[test]
    fn serial_does_not_scale_with_procs() {
        let list = gen::random_list(10_000, 2);
        let t1 = rank(&list, MachineConfig::c90(1)).cycles;
        let t8 = rank(&list, MachineConfig::c90(8)).cycles;
        assert_eq!(t1, t8, "a serial algorithm cannot use more CPUs");
    }
}
