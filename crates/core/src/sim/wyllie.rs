//! Simulated Wyllie pointer jumping (paper §2.2, Fig. 1's sawtooth).
//!
//! Wyllie's cost is data-independent — every one of the `⌈log₂(n−1)⌉`
//! rounds processes all `n` elements — so the cycle charge is computed
//! from `n` while the output is produced by the (identical-result) host
//! implementation. The per-round charge `2.8x + 100` is the calibration
//! discussed on [`vmach::Kernel::WyllieRound`]; the `⌈log⌉` is what
//! produces the paper's sawtooth.

use super::machine::{SimMachine, SimRun};
use crate::host::wyllie::Wyllie;
use listkit::{LinkedList, ScanOp};
use vmach::{Kernel, MachineConfig};

/// Charge one full Wyllie execution for a list of `n` vertices.
fn charge(m: &mut SimMachine, n: usize) {
    // Predecessor scatter + gathering the predecessor values as the
    // initial partial sums.
    m.set_region("build-prev");
    m.charge_split(Kernel::BuildPrev, n);
    m.charge_split(Kernel::BuildPrev, n);
    m.set_region("jumping");
    for _ in 0..Wyllie::rounds(n) {
        m.charge_split(Kernel::WyllieRound, n);
        m.charge_sync();
    }
}

/// Simulated Wyllie list rank.
pub fn rank(list: &LinkedList, config: MachineConfig) -> SimRun<u64> {
    let mut m = SimMachine::new(config);
    charge(&mut m, list.len());
    let out = Wyllie.rank(list);
    // Wyllie needs working copies of links and values: 2n words.
    let extra = 2 * list.len();
    m.finish(out, list.len(), extra)
}

/// Simulated Wyllie list scan.
pub fn scan<T, Op>(list: &LinkedList, values: &[T], op: &Op, config: MachineConfig) -> SimRun<T>
where
    T: Copy + Send + Sync,
    Op: ScanOp<T>,
{
    let mut m = SimMachine::new(config);
    charge(&mut m, list.len());
    let out = Wyllie.scan(list, values, op);
    let extra = 2 * list.len();
    m.finish(out, list.len(), extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::gen;
    use listkit::ops::AddOp;

    #[test]
    fn output_matches_serial() {
        let list = gen::random_list(2000, 7);
        let r = rank(&list, MachineConfig::c90(1));
        assert_eq!(r.out, listkit::serial::rank(&list));
    }

    #[test]
    fn sawtooth_at_power_of_two() {
        // One more round at n = 1025 than at n = 1024 (⌈log₂(n−1)⌉).
        let a = rank(&gen::random_list(1025, 1), MachineConfig::c90(1));
        let b = rank(&gen::random_list(1026, 1), MachineConfig::c90(1));
        assert!(b.cycles_per_vertex() > a.cycles_per_vertex(), "crossing 2^10 must add a round");
    }

    #[test]
    fn work_grows_log_linearly() {
        let small = rank(&gen::random_list(1 << 12, 2), MachineConfig::c90(1));
        let large = rank(&gen::random_list(1 << 16, 2), MachineConfig::c90(1));
        // Per-vertex cost grows with log n: 16 rounds vs 12.
        let ratio = large.cycles_per_vertex() / small.cycles_per_vertex();
        assert!(ratio > 1.2 && ratio < 1.5, "ratio {ratio}");
    }

    #[test]
    fn scales_almost_linearly_with_procs() {
        let list = gen::random_list(1 << 18, 3);
        let t1 = rank(&list, MachineConfig::c90(1)).cycles;
        let t8 = rank(&list, MachineConfig::c90(8)).cycles;
        let speedup = t1.get() / t8.get();
        assert!(speedup > 5.0 && speedup < 8.0, "speedup {speedup}");
    }

    #[test]
    fn scan_output_correct() {
        let list = gen::random_list(300, 9);
        let vals: Vec<i64> = (0..300).map(|i| i as i64).collect();
        let s = scan(&list, &vals, &AddOp, MachineConfig::c90(2));
        assert_eq!(s.out, listkit::serial::scan(&list, &vals, &AddOp));
    }
}
