//! Tuned parameters for the simulated backend.
//!
//! The paper picks `m` (number of split positions) and `S_1` (first
//! load-balance point) by minimizing the Eq. (3) cost model, then fits
//! polylog curves for use at runtime. [`SimParams::tuned_scan`] /
//! [`SimParams::tuned_rank`] run the `rankmodel` tuner directly (it is
//! fast enough per call that the fitted-curve indirection is optional;
//! the curves themselves are exercised in `rankmodel`).

use rankmodel::predict::Phase2Choice;
use rankmodel::schedule::Schedule;
use rankmodel::tuner::{Tuner, TunerOptions};
use rankmodel::ModelCoeffs;

/// Parameters controlling one simulated Reid-Miller run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimParams {
    /// Number of random split positions requested (`m+1` sublists).
    pub m: usize,
    /// Integer pack points: traverse until `schedule[i]` links, then
    /// pack, for each `i` (strictly increasing).
    pub schedule: Vec<usize>,
    /// Phase-2 strategy.
    pub phase2: Phase2Choice,
}

impl SimParams {
    /// Model-tuned parameters for a list **scan** of `n` vertices on `p`
    /// C90 CPUs.
    pub fn tuned_scan(n: usize, p: usize) -> Self {
        Self::tuned(n, p, ModelCoeffs::c90_scan())
    }

    /// Model-tuned parameters for list **ranking** (packed one-gather
    /// loops).
    pub fn tuned_rank(n: usize, p: usize) -> Self {
        Self::tuned(n, p, ModelCoeffs::c90_rank())
    }

    fn tuned(n: usize, p: usize, coeffs: ModelCoeffs) -> Self {
        let mut tuner = Tuner::new(coeffs, TunerOptions::c90(p));
        let t = tuner.tune(n);
        if t.m < 2 {
            return Self { m: 0, schedule: Vec::new(), phase2: Phase2Choice::Serial };
        }
        // One schedule drives both phases (the paper tunes a single S1);
        // use the Phase-1 pack/traverse cost ratio.
        let sched = Schedule::from_s1(
            n as f64,
            t.m as f64,
            t.s1.max(1.0),
            coeffs.phase1.c_over_a(),
            tuner.options().stop_g,
        );
        Self { m: t.m, schedule: sched.integer_points(), phase2: t.phase2 }
    }

    /// Explicit parameters (ablations): a fixed `m` with packs every
    /// `interval` links up to the expected longest sublist.
    pub fn fixed_interval(n: usize, m: usize, interval: usize) -> Self {
        assert!(interval >= 1);
        let longest = rankmodel::expdist::expected_longest(n as f64, m as f64);
        let schedule =
            (1..).map(|i| i * interval).take_while(|&s| (s as f64) < longest * 1.5).collect();
        Self { m, schedule, phase2: Phase2Choice::Serial }
    }

    /// Explicit parameters with **no** intermediate packing (ablation:
    /// the cost of never load balancing).
    pub fn no_packing(m: usize) -> Self {
        Self { m, schedule: Vec::new(), phase2: Phase2Choice::Serial }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_scan_reasonable() {
        let p = SimParams::tuned_scan(100_000, 1);
        assert!(p.m > 100, "m = {}", p.m);
        assert!(p.m < 100_000 / 4);
        assert!(!p.schedule.is_empty());
        for w in p.schedule.windows(2) {
            assert!(w[1] > w[0], "schedule must increase");
        }
    }

    #[test]
    fn tuned_rank_differs_from_scan() {
        let r = SimParams::tuned_rank(1_000_000, 1);
        let s = SimParams::tuned_scan(1_000_000, 1);
        assert!(r.m > 0 && s.m > 0);
        // Rank's cheaper traversal tolerates more packing/sublists or a
        // different schedule; at minimum the params object is valid.
        assert!(!r.schedule.is_empty());
    }

    #[test]
    fn tiny_n_degenerates_to_serial() {
        let p = SimParams::tuned_scan(64, 1);
        assert_eq!(p.m, 0);
        assert_eq!(p.phase2, Phase2Choice::Serial);
    }

    #[test]
    fn fixed_interval_schedule() {
        let p = SimParams::fixed_interval(10_000, 199, 25);
        assert_eq!(p.m, 199);
        assert_eq!(p.schedule[0], 25);
        assert_eq!(p.schedule[1], 50);
        assert!(p.schedule.len() > 3);
    }

    #[test]
    fn multiprocessor_params_valid() {
        for p in [2usize, 4, 8] {
            let sp = SimParams::tuned_scan(1_000_000, p);
            assert!(sp.m >= 2, "p={p}: m={}", sp.m);
        }
    }
}
