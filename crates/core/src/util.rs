//! Internal utilities: disjoint parallel writes.

use std::cell::UnsafeCell;

/// A slice wrapper allowing concurrent writes to **provably disjoint**
/// indices from multiple rayon tasks.
///
/// List ranking's output is a scatter: each sublist task writes the scan
/// values of its own vertices, and sublists partition the vertex set, so
/// no two tasks ever touch the same index. Rust cannot see that
/// disjointness through an index set, hence this narrowly-scoped unsafe
/// cell (the only unsafe code in the crate).
pub struct DisjointWriter<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

// SAFETY: access is only through `write`, whose contract requires callers
// to guarantee index-disjointness across threads; with disjoint indices
// there is no aliasing and `T: Send` suffices.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wrap a mutable slice for disjoint parallel writing.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` grants exclusive access; `UnsafeCell<T>` has
        // the same layout as `T`, so reinterpreting the unique borrow as
        // a shared slice of cells is sound (std's Cell::from_mut does the
        // same transposition).
        let ptr = slice.as_mut_ptr() as *const UnsafeCell<T>;
        let len = slice.len();
        Self { slice: unsafe { std::slice::from_raw_parts(ptr, len) } }
    }

    /// Number of elements.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    /// Whether the underlying slice is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// No other thread may read or write `index` for the lifetime of
    /// this writer. Callers uphold this by partitioning the index space
    /// (each sublist owns its vertices).
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        // SAFETY: caller guarantees exclusive use of `index`.
        unsafe { *self.slice[index].get() = value };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn parallel_disjoint_writes_land() {
        let mut data = vec![0usize; 10_000];
        {
            let w = DisjointWriter::new(&mut data);
            // Each task owns a distinct residue class: disjoint.
            (0..4usize).into_par_iter().for_each(|r| {
                for i in (r..w.len()).step_by(4) {
                    // SAFETY: residue classes mod 4 are disjoint.
                    unsafe { w.write(i, i * 3) };
                }
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn len_reports() {
        let mut data = vec![0u8; 7];
        let w = DisjointWriter::new(&mut data);
        assert_eq!(w.len(), 7);
        assert!(!w.is_empty());
    }
}
