//! Edge cases and failure injection for the algorithms crate.

use listkit::ops::AddOp;
use listkit::validate::validate_links;
use listkit::{gen, LinkedList};
use listrank::host::{AndersonMiller, MillerReif, ReidMiller, Wyllie};
use listrank::{Algorithm, HostRunner, SimParams, SimRunner};

#[test]
fn malformed_lists_rejected_at_the_boundary() {
    // Algorithms take `LinkedList`, whose constructor enforces validity,
    // so malformed structures never reach the hot loops.
    assert!(LinkedList::new(vec![1, 2, 0], 0).is_err()); // pure cycle
    assert!(LinkedList::new(vec![1, 5, 2], 0).is_err()); // dangling link
    assert!(LinkedList::new(vec![0, 1], 0).is_err()); // two components
    assert!(LinkedList::new(vec![], 0).is_err()); // empty

    // rho shape: 0→1→2→3→1 with an unrelated self-loop at 4.
    assert!(validate_links(&[1, 2, 3, 1, 4], 0).is_err());
}

#[test]
fn single_vertex_everywhere() {
    let list = LinkedList::from_order(&[0]).unwrap();
    for alg in Algorithm::ALL {
        assert_eq!(HostRunner::new(alg).rank(&list), vec![0], "{alg}");
        assert_eq!(SimRunner::new(alg, 4).rank(&list).out, vec![0], "{alg}");
    }
    let vals = vec![123i64];
    assert_eq!(HostRunner::new(Algorithm::ReidMiller).scan(&list, &vals, &AddOp), vec![0]);
}

#[test]
fn two_vertices_everywhere() {
    let list = LinkedList::from_order(&[1, 0]).unwrap();
    for alg in Algorithm::ALL {
        let r = HostRunner::new(alg).rank(&list);
        assert_eq!(r, vec![1, 0], "{alg}");
    }
}

#[test]
fn m_larger_than_n_is_clamped() {
    let list = gen::random_list(100, 5);
    let reference = listkit::serial::rank(&list);
    // Requesting far more splits than vertices must not break anything.
    let rm = ReidMiller::new(1).with_m(10_000);
    assert_eq!(rm.rank(&list), reference);
    let run = SimRunner::new(Algorithm::ReidMiller, 1)
        .with_params(SimParams::no_packing(10_000))
        .rank(&list);
    assert_eq!(run.out, reference);
}

#[test]
fn m_of_zero_or_one_degenerates_to_serial() {
    let list = gen::random_list(5000, 6);
    let reference = listkit::serial::rank(&list);
    for m in [0usize, 1] {
        assert_eq!(ReidMiller::new(1).with_m(m).rank(&list), reference, "m={m}");
    }
}

#[test]
fn value_length_mismatch_panics() {
    let list = gen::random_list(100, 7);
    let short = vec![1i64; 99];
    let result = std::panic::catch_unwind(|| {
        HostRunner::new(Algorithm::ReidMiller).scan(&list, &short, &AddOp)
    });
    assert!(result.is_err(), "mismatched value array must be rejected");
}

#[test]
fn degenerate_am_and_mr_params_still_correct() {
    let list = gen::random_list(2000, 8);
    let reference = listkit::serial::rank(&list);
    // One queue: Anderson–Miller degenerates to near-serial splicing.
    assert_eq!(AndersonMiller::new(1).with_queues(1).rank(&list), reference);
    // Queue per vertex.
    assert_eq!(AndersonMiller::new(1).with_queues(2000).rank(&list), reference);
    // Miller–Reif with pathological seeds.
    for seed in [0u64, u64::MAX, 0x5555_5555_5555_5555] {
        assert_eq!(MillerReif::new(seed).rank(&list), reference);
    }
}

#[test]
fn wyllie_handles_exact_powers_of_two() {
    for n in [2usize, 4, 1024, 1025, 1026] {
        let list = gen::random_list(n, n as u64);
        assert_eq!(Wyllie.rank(&list), listkit::serial::rank(&list), "n={n}");
    }
}

#[test]
fn empty_schedule_and_oversized_schedule() {
    let n = 20_000;
    let list = gen::random_list(n, 9);
    let reference = listkit::serial::rank(&list);
    // Packs scheduled far beyond the longest sublist: harmless.
    let params = SimParams {
        m: 100,
        schedule: vec![1_000_000, 2_000_000],
        phase2: rankmodel::predict::Phase2Choice::Serial,
    };
    let run = SimRunner::new(Algorithm::ReidMiller, 1).with_params(params).rank(&list);
    assert_eq!(run.out, reference);
}

#[test]
fn sequential_list_is_the_friendly_case_for_everyone() {
    let list = gen::sequential_list(50_000);
    let reference = listkit::serial::rank(&list);
    for alg in Algorithm::ALL {
        assert_eq!(HostRunner::new(alg).rank(&list), reference, "{alg}");
    }
}

#[test]
fn seeds_change_cycles_not_answers() {
    let list = gen::random_list(30_000, 10);
    let a = SimRunner::new(Algorithm::ReidMiller, 1).with_seed(1).rank(&list);
    let b = SimRunner::new(Algorithm::ReidMiller, 1).with_seed(2).rank(&list);
    assert_eq!(a.out, b.out);
    // Different random splits → different live traces → different cycles.
    assert_ne!(a.cycles, b.cycles);
}
