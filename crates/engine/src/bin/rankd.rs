//! `rankd` — drive a sustained mixed ranking/scan workload through the
//! batch engine and report throughput against the naive
//! sequential-submit baseline, or (`rankd serve`) run the engine as a
//! long-lived daemon behind a Unix-domain-socket wire protocol.
//!
//! ```sh
//! cargo run --release -p engine --bin rankd -- --help
//! cargo run --release -p engine --bin rankd -- serve --socket /tmp/rankd.sock
//! ```

use engine::workload::{
    run_baseline, run_engine, run_sharded_scenario, HugeListConfig, OpSelect, Workload,
    WorkloadConfig,
};
#[cfg(unix)]
use engine::{Client, ServeConfig, Server};
use engine::{Engine, EngineConfig};
use std::sync::Arc;

/// Minimal signal plumbing for `rankd serve`, declared directly
/// against the C runtime so the daemon needs no extra dependency:
/// SIGPIPE ignored (a dead client must surface as a write error on
/// its own connection, not kill the daemon), SIGTERM latched into an
/// atomic that a watcher thread turns into a graceful drain.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Latched by the SIGTERM handler; polled by the watcher thread.
    pub static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGPIPE: i32 = 13;
    const SIGTERM: i32 = 15;
    const SIG_IGN: usize = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Async-signal-safe: one relaxed store, nothing else.
    extern "C" fn on_term(_sig: i32) {
        TERM_REQUESTED.store(true, Ordering::Relaxed);
    }

    /// Install both dispositions; call once before serving.
    pub fn install() {
        unsafe {
            signal(SIGPIPE, SIG_IGN);
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        }
    }
}

struct Args {
    workload: WorkloadConfig,
    engine: EngineConfig,
    skip_baseline: bool,
    repeats: u32,
    sharded_scenario: bool,
    huge: HugeListConfig,
    /// Whether --workers / --inner-threads were given explicitly (the
    /// sharded scenario picks its own defaults otherwise).
    workers_set: bool,
    inner_threads_set: bool,
}

fn usage() -> ! {
    eprintln!(
        "rankd — batch list-ranking engine throughput driver

USAGE: rankd [OPTIONS]
       rankd serve [OPTIONS]     long-running socket daemon (see rankd serve --help)
       rankd stats [OPTIONS]     live telemetry dashboard for a daemon (see rankd stats --help)

Workload:
  --min-exp E            smallest job decade, 10^E vertices   [default 2]
  --max-exp E            largest job decade, 10^E vertices    [default 7]
  --elems-per-decade N   element budget per decade            [default 2000000]
  --max-jobs-per-decade N  job-count cap per decade           [default 3000]
  --scan-frac F          fraction of scan (vs rank) jobs      [default 0.3]
  --op OP                scan operator: add|max|min|xor|affine|seg|mixed
                         (mixed rotates through all of them)  [default mixed]
  --seed S               workload seed                        [default 0xC90]
  --repeats R            run the workload R times through the engine
                         (planner history carries over)       [default 1]

Engine:
  --workers W            worker threads                 [default: cores/2, 2..8]
  --inner-threads T      threads per job                [default: cores/workers]
  --queue-cap Q          queue capacity (backpressure)  [default 1024]
  --small-cutoff N       batch jobs up to N vertices    [default 4096]
  --batch-max B          max jobs per batch             [default 64]
  --no-pool              disable scratch-buffer pooling
  --lanes K              interleaved traversal lanes per worker for the
                         multi-chain walks; 0 = let the planner tune K
                         per size bucket                    [default 0]
  --shard-budget N       per-worker vertex budget: RankSharded jobs
                         above N split into shards    [default 2097152]
  --no-telemetry         disable latency histograms / span recording
  --slow-ms MS           slow-request warn threshold in ms (also
                         RANKD_SLOW_MS)                  [default 250]
  --skip-baseline        skip the naive sequential-submit baseline

Logging: set RANKD_LOG=error|warn|info|debug|trace   [default warn]

Huge-list sharded scenario (replaces the mixed workload):
  --sharded-scenario     rank one huge list sharded vs monolithic
  --huge-n N             vertices in the huge list (up to 10^8)
                                                   [default 16777216]
  --huge-jobs J          ranking jobs per pass             [default 4]
  --huge-block B         blocked-layout block size      [default 4096]"
    );
    std::process::exit(2)
}

/// Consume one engine-sizing flag (shared between the workload driver
/// and `rankd serve`). `Ok(true)` = consumed, `Ok(false)` = not an
/// engine flag, `Err(())` = the flag's value failed to parse — the
/// caller reports it with its own usage screen (workload vs serve).
fn parse_engine_flag(
    flag: &str,
    engine: &mut EngineConfig,
    val: &mut dyn FnMut(&str) -> String,
) -> Result<bool, ()> {
    fn num<T: std::str::FromStr>(s: String) -> Result<T, ()> {
        s.parse().map_err(|_| ())
    }
    match flag {
        "--workers" => engine.workers = num(val("--workers"))?,
        "--inner-threads" => engine.inner_threads = num(val("--inner-threads"))?,
        "--queue-cap" => engine.queue_capacity = num(val("--queue-cap"))?,
        "--small-cutoff" => engine.small_cutoff = num(val("--small-cutoff"))?,
        "--batch-max" => engine.batch_max = num(val("--batch-max"))?,
        "--no-pool" => engine.pool_scratch = false,
        "--lanes" => {
            let k: usize = num(val("--lanes"))?;
            engine.lanes = (k > 0).then_some(k);
        }
        "--shard-budget" => engine.shard_budget = num(val("--shard-budget"))?,
        "--no-telemetry" => engine.telemetry = false,
        "--slow-ms" => engine.slow_request_ms = Some(num(val("--slow-ms"))?),
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Args {
    let mut args = Args {
        workload: WorkloadConfig::default(),
        engine: EngineConfig::default(),
        skip_baseline: false,
        repeats: 1,
        sharded_scenario: false,
        huge: HugeListConfig::default(),
        workers_set: false,
        inner_threads_set: false,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--min-exp" => {
                args.workload.min_exp = val("--min-exp").parse().unwrap_or_else(|_| usage())
            }
            "--max-exp" => {
                args.workload.max_exp = val("--max-exp").parse().unwrap_or_else(|_| usage())
            }
            "--elems-per-decade" => {
                args.workload.elems_per_decade =
                    val("--elems-per-decade").parse().unwrap_or_else(|_| usage())
            }
            "--max-jobs-per-decade" => {
                args.workload.max_jobs_per_decade =
                    val("--max-jobs-per-decade").parse().unwrap_or_else(|_| usage())
            }
            "--scan-frac" => {
                args.workload.scan_frac = val("--scan-frac").parse().unwrap_or_else(|_| usage())
            }
            "--op" => {
                args.workload.op = OpSelect::parse(&val("--op")).unwrap_or_else(|| {
                    eprintln!("unknown --op (want add|max|min|xor|affine|seg|mixed)");
                    usage()
                })
            }
            "--seed" => args.workload.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--repeats" => args.repeats = val("--repeats").parse().unwrap_or_else(|_| usage()),
            "--sharded-scenario" => args.sharded_scenario = true,
            "--huge-n" => args.huge.n = val("--huge-n").parse().unwrap_or_else(|_| usage()),
            "--huge-jobs" => {
                args.huge.jobs = val("--huge-jobs").parse().unwrap_or_else(|_| usage())
            }
            "--huge-block" => {
                args.huge.block = val("--huge-block").parse().unwrap_or_else(|_| usage())
            }
            "--skip-baseline" => args.skip_baseline = true,
            "--help" | "-h" => usage(),
            other => match parse_engine_flag(other, &mut args.engine, &mut val) {
                Ok(true) => match other {
                    "--workers" => args.workers_set = true,
                    "--inner-threads" => args.inner_threads_set = true,
                    _ => {}
                },
                Ok(false) => {
                    eprintln!("unknown flag {other}");
                    usage()
                }
                Err(()) => {
                    eprintln!("bad value for {other}");
                    usage()
                }
            },
        }
    }
    args
}

#[cfg(unix)]
fn serve_usage() -> ! {
    eprintln!(
        "rankd serve — long-running socket daemon for the batch engine

USAGE: rankd serve [OPTIONS]

Accepts concurrent clients over a Unix domain socket speaking the
length-prefixed binary protocol in docs/PROTOCOL.md; every frame maps
onto the engine's typed request API, and the bounded queue's
backpressure becomes per-client admission control.

Serving:
  --socket PATH          Unix socket path            [default /tmp/rankd.sock]
  --tcp HOST:PORT        also listen on a TCP address (same protocol,
                         same reactor); port 0 picks a free port
                                                          [default off]
  --max-clients N        concurrent client cap; excess connections get
                         a typed `busy` error             [default 64]
  --serve-secs S         exit after S seconds; 0 = serve until a client
                         sends SHUTDOWN                    [default 0]
  --store-budget BYTES   resident dataset store byte budget for PUT
                         datasets + cached artifacts; accepts k/m/g
                         suffixes (e.g. 256m, 2g)          [default 1g]

Resilience:
  --fault SPEC           seeded fault injection for chaos testing, e.g.
                         \"io_err=0.01,delay=5ms@0.05,short_write=0.02,\\
                         exec_panic=0.001,store_err=0.01,seed=7\" —
                         \"default\" enables documented default rates;
                         falls back to RANKD_FAULT          [default off]
  --shed-queue N         shed job requests with a typed `overloaded`
                         while queue depth ≥ N; 0 = rely on blocking
                         backpressure                       [default 0]
  --shed-store BYTES     shed PUTs with a typed `overloaded` while the
                         store holds ≥ BYTES (k/m/g suffixes); 0 = off
                                                            [default 0]

QoS (protocol v6):
  --inflight-quota N     per-connection cap on pipelined requests in
                         flight; excess gets a typed `quota_exceeded`;
                         0 = unlimited                     [default 64]
  --store-quota BYTES    per-connection cap on resident store bytes
                         (k/m/g suffixes); 0 = only the global budget
                                                            [default 0]

Engine (as in plain rankd):
  --workers W --inner-threads T --queue-cap Q --small-cutoff N
  --batch-max B --no-pool --lanes K --shard-budget N
  --no-telemetry --slow-ms MS

Signals: SIGTERM drains gracefully (in-flight replies complete, socket
file removed, stats printed); SIGPIPE is ignored (dead clients surface
as write errors on their own connection only).

Logging: set RANKD_LOG=error|warn|info|debug|trace   [default warn]"
    );
    std::process::exit(2)
}

#[cfg(unix)]
fn parse_serve_args(mut it: impl Iterator<Item = String>) -> (ServeConfig, EngineConfig) {
    let mut cfg = ServeConfig::new("/tmp/rankd.sock");
    let mut engine = EngineConfig::default();
    let mut fault_spec: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                serve_usage()
            })
        };
        match flag.as_str() {
            "--socket" => cfg.socket = val("--socket").into(),
            "--tcp" => cfg = cfg.with_tcp(Some(val("--tcp"))),
            "--inflight-quota" => {
                cfg = cfg.with_inflight_quota(
                    val("--inflight-quota").parse().unwrap_or_else(|_| serve_usage()),
                )
            }
            "--store-quota" => {
                let bytes = parse_bytes(&val("--store-quota")).unwrap_or_else(|| {
                    eprintln!("bad --store-quota (want BYTES with optional k/m/g suffix)");
                    serve_usage()
                });
                cfg = cfg.with_store_quota(bytes);
            }
            "--max-clients" => {
                cfg = cfg.with_max_clients(
                    val("--max-clients").parse().unwrap_or_else(|_| serve_usage()),
                )
            }
            "--serve-secs" => {
                let s: u64 = val("--serve-secs").parse().unwrap_or_else(|_| serve_usage());
                cfg = cfg.with_serve_secs((s > 0).then_some(s));
            }
            "--store-budget" => {
                let bytes = parse_bytes(&val("--store-budget")).unwrap_or_else(|| {
                    eprintln!("bad --store-budget (want BYTES with optional k/m/g suffix)");
                    serve_usage()
                });
                cfg = cfg.with_store_budget(bytes);
            }
            "--fault" => fault_spec = Some(val("--fault")),
            "--shed-queue" => {
                cfg = cfg.with_shed_queue_depth(
                    val("--shed-queue").parse().unwrap_or_else(|_| serve_usage()),
                )
            }
            "--shed-store" => {
                let bytes = parse_bytes(&val("--shed-store")).unwrap_or_else(|| {
                    eprintln!("bad --shed-store (want BYTES with optional k/m/g suffix)");
                    serve_usage()
                });
                cfg = cfg.with_shed_store_bytes(bytes);
            }
            "--help" | "-h" => serve_usage(),
            other => match parse_engine_flag(other, &mut engine, &mut val) {
                Ok(true) => {}
                Ok(false) => {
                    eprintln!("unknown flag {other}");
                    serve_usage()
                }
                Err(()) => {
                    eprintln!("bad value for {other}");
                    serve_usage()
                }
            },
        }
    }
    // One plane shared by the serving layer (socket/store injection)
    // and the engine (worker-exec injection), so a single seed drives
    // one reproducible decision stream.
    let fault_spec = fault_spec.or_else(|| std::env::var("RANKD_FAULT").ok());
    if let Some(spec) = fault_spec {
        let fc = engine::FaultConfig::parse(&spec).unwrap_or_else(|e| {
            eprintln!("bad --fault spec: {e}");
            serve_usage()
        });
        let plane = Arc::new(engine::FaultPlane::new(fc));
        cfg = cfg.with_fault(Arc::clone(&plane));
        engine = engine.with_fault(plane);
    }
    (cfg, engine)
}

#[cfg(unix)]
fn run_serve(cfg: ServeConfig, engine_cfg: EngineConfig) {
    signals::install();
    let max_clients = cfg.max_clients;
    let serve_secs = cfg.serve_secs;
    let store_budget = cfg.store_budget;
    let faults_on = cfg.fault.is_enabled();
    let engine = Arc::new(Engine::new(engine_cfg));
    let server = Server::bind(Arc::clone(&engine), cfg).unwrap_or_else(|e| {
        eprintln!("rankd serve: bind failed: {e}");
        std::process::exit(1);
    });
    // SIGTERM → graceful drain: the handler only flips an atomic; this
    // watcher turns it into the same shutdown path a SHUTDOWN frame
    // takes. Daemon thread — dies with the process.
    {
        let control = server.control();
        std::thread::Builder::new()
            .name("rankd-signals".to_string())
            .spawn(move || {
                use std::sync::atomic::Ordering;
                while !signals::TERM_REQUESTED.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                eprintln!("rankd serve: SIGTERM, draining");
                control.request_shutdown();
            })
            .expect("spawn signal watcher");
    }
    if let Some(addr) = server.tcp_local_addr() {
        println!("rankd serve: tcp listening on {addr}");
    }
    println!(
        "rankd serve: listening on {} ({} workers × {} inner threads, queue {}, ≤{} clients, store {}, {}{})",
        server.socket_path().display(),
        engine.config().workers,
        engine.config().inner_threads,
        engine.config().queue_capacity,
        max_clients,
        fmt_bytes(store_budget),
        match serve_secs {
            Some(s) => format!("serving {s}s"),
            None => "serving until SHUTDOWN".to_string(),
        },
        if faults_on { ", FAULT INJECTION ON" } else { "" }
    );
    let failed = match server.run() {
        Ok(stats) => {
            println!("\n-- serving stats --\n{stats}");
            false
        }
        Err(e) => {
            eprintln!("rankd serve: accept loop failed: {e}");
            true
        }
    };
    // All handler threads are joined by `run`, so this is the last Arc.
    if let Ok(engine) = Arc::try_unwrap(engine) {
        println!("\n-- engine stats --\n{}", engine.shutdown());
    }
    if failed {
        // Supervisors (and the CI smoke job's `wait`) must see a
        // crashed accept loop as a failure, not a clean exit.
        std::process::exit(1);
    }
}

#[cfg(unix)]
fn stats_usage() -> ! {
    eprintln!(
        "rankd stats — live telemetry dashboard for a rankd serve daemon

USAGE: rankd stats [OPTIONS]

Polls the daemon's STATS_V2 frame and renders per-op / per-phase
latency percentiles, throughput, queue depth, lane occupancy, and the
planner's dispatch matrix.

  --socket PATH          daemon socket path       [default /tmp/rankd.sock]
  --watch N              refresh every N seconds until interrupted
                         (omit for a single snapshot)"
    );
    std::process::exit(2)
}

#[cfg(unix)]
fn parse_stats_args(mut it: impl Iterator<Item = String>) -> (String, Option<u64>) {
    let mut socket = "/tmp/rankd.sock".to_string();
    let mut watch = None;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                stats_usage()
            })
        };
        match flag.as_str() {
            "--socket" => socket = val("--socket"),
            "--watch" => {
                let n: u64 = val("--watch").parse().unwrap_or_else(|_| stats_usage());
                watch = Some(n.max(1));
            }
            "--help" | "-h" => stats_usage(),
            other => {
                eprintln!("unknown flag {other}");
                stats_usage()
            }
        }
    }
    (socket, watch)
}

/// One `samples p50 p95 p99 max` dashboard row (milliseconds).
#[cfg(unix)]
fn hist_row(h: &engine::Histogram) -> String {
    format!(
        "{:>9} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        h.count(),
        h.percentile(50.0) as f64 / 1e6,
        h.percentile(95.0) as f64 / 1e6,
        h.percentile(99.0) as f64 / 1e6,
        h.max() as f64 / 1e6
    )
}

/// Render one STATS_V2 snapshot as the top-style dashboard.
#[cfg(unix)]
fn render_dashboard(socket: &str, v2: &engine::protocol::WireStatsV2) -> String {
    use listrank::Algorithm;
    use std::fmt::Write;

    let g = &v2.gauges;
    let uptime_s = g.uptime_ns as f64 / 1e9;
    let mut out = String::new();
    let _ = writeln!(out, "rankd stats — {socket}  (daemon uptime {uptime_s:.1}s)");
    let _ = writeln!(
        out,
        "jobs: {} completed / {} submitted ({} cancelled, {} failed, {} rejected)",
        g.completed, g.submitted, g.cancelled, g.failed, g.rejected_full
    );
    let jobs_per_sec = if uptime_s > 0.0 { g.completed as f64 / uptime_s } else { 0.0 };
    let elems_per_sec = if uptime_s > 0.0 { g.elements as f64 / uptime_s } else { 0.0 };
    let occupancy = if g.lane_slots > 0 {
        format!("{:.0}%", g.lane_steps as f64 / g.lane_slots as f64 * 100.0)
    } else {
        "-".to_string()
    };
    let _ = writeln!(
        out,
        "throughput: {} jobs/s, {} elems/s   queue: {} (peak {})   lanes: {} occupancy   conns: {} open / {} total",
        fmt_rate(jobs_per_sec),
        fmt_rate(elems_per_sec),
        g.queue_depth,
        g.peak_queue_depth,
        occupancy,
        g.connections_active,
        g.connections_total
    );
    let s = &v2.store;
    let hit_rate = if s.lookups > 0 {
        format!("{:.1}%", s.hits as f64 / s.lookups as f64 * 100.0)
    } else {
        "-".to_string()
    };
    let _ = writeln!(
        out,
        "store: {} datasets, {} / {} resident   hits: {}/{} lookups ({} hit rate)   evictions: {}   puts: {} ({} rejected)   artifacts: {} built / {} reused",
        s.resident_count,
        fmt_bytes(s.resident_bytes),
        fmt_bytes(s.budget_bytes),
        s.hits,
        s.lookups,
        hit_rate,
        s.evictions,
        s.puts,
        s.put_rejected,
        s.artifacts_built,
        s.artifacts_reused
    );
    let m = &v2.mutate;
    if m.mutations > 0 {
        let passes = m.incremental + m.full;
        let patch_rate = if m.incremental > 0 {
            format!(
                "{:.1} dirty shards/patch",
                m.dirty_shards_patched as f64 / m.incremental as f64
            )
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "mutations: {} batches ({} edits)   maintenance: {} incremental / {} full of {} passes   {}   artifacts patched: {}",
            m.mutations,
            m.edits,
            m.incremental,
            m.full,
            passes,
            patch_rate,
            m.artifacts_patched
        );
    }
    let fg = &v2.fault;
    let injected = fg.injected_io_errors
        + fg.injected_delays
        + fg.injected_short_writes
        + fg.injected_exec_panics
        + fg.injected_store_errors;
    if injected > 0 {
        let _ = writeln!(
            out,
            "faults: {} injected ({} io, {} delay, {} short-write, {} exec-panic, {} store)",
            injected,
            fg.injected_io_errors,
            fg.injected_delays,
            fg.injected_short_writes,
            fg.injected_exec_panics,
            fg.injected_store_errors
        );
    }
    if fg.panics_recovered > 0
        || fg.workers_respawned > 0
        || fg.deadline_expired > 0
        || fg.shed_queue > 0
        || fg.shed_store > 0
    {
        let _ = writeln!(
            out,
            "resilience: {} panics recovered, {} workers respawned, {} deadlines expired, shed {} (queue) / {} (store)",
            fg.panics_recovered,
            fg.workers_respawned,
            fg.deadline_expired,
            fg.shed_queue,
            fg.shed_store
        );
    }
    let sc = &v2.sched;
    let _ = writeln!(
        out,
        "scheduler: {} interactive / {} batch dispatched ({}/{} in flight), {} aged",
        sc.dispatched_interactive,
        sc.dispatched_batch,
        sc.inflight_interactive,
        sc.inflight_batch,
        sc.aged_dispatches
    );
    let _ = writeln!(
        out,
        "pipeline: {} pipelined requests, max depth {}, {} reordered replies; quota rejections: {} in-flight / {} store",
        sc.pipelined_requests,
        sc.max_pipeline_depth,
        sc.reply_reorders,
        sc.quota_rejected_inflight,
        sc.quota_rejected_store
    );
    if !v2.pipeline_depth.is_empty() {
        let d = &v2.pipeline_depth;
        let _ = writeln!(
            out,
            "pipeline depth at admission: p50 {}  p95 {}  p99 {}  max {} over {} samples",
            d.percentile(50.0),
            d.percentile(95.0),
            d.percentile(99.0),
            d.max(),
            d.count()
        );
    }
    if v2.per_op.iter().any(|h| !h.is_empty()) {
        let _ = writeln!(out, "\nexec latency by op (ms):");
        let _ = writeln!(
            out,
            "  {:>11} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "op", "samples", "p50", "p95", "p99", "max"
        );
        for op in engine::OpKind::ALL {
            let h = &v2.per_op[op.index()];
            if !h.is_empty() {
                let _ = writeln!(out, "  {:>11} {}", op.name(), hist_row(h));
            }
        }
    }
    if v2.phase.iter().any(|h| !h.is_empty()) {
        let _ = writeln!(out, "\nlatency by phase (ms):");
        let _ = writeln!(
            out,
            "  {:>11} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "phase", "samples", "p50", "p95", "p99", "max"
        );
        for phase in engine::Phase::ALL {
            let h = &v2.phase[phase.index()];
            if !h.is_empty() {
                let _ = writeln!(out, "  {:>11} {}", phase.name(), hist_row(h));
            }
        }
    }
    if !v2.dispatch_by_op.is_empty() {
        let _ = writeln!(out, "\nplanner dispatch (completions per algorithm):");
        let _ = write!(out, "  {:>11}", "op");
        for alg in Algorithm::ALL {
            let _ = write!(out, " {:>12}", alg.name());
        }
        let _ = writeln!(out);
        for (op, row) in &v2.dispatch_by_op {
            let _ = write!(out, "  {:>11}", op.name());
            for c in row {
                let _ = write!(out, " {c:>12}");
            }
            let _ = writeln!(out);
        }
    }
    if !v2.mispredict.is_empty() {
        let scale = engine::planner::MISPREDICT_SCALE as f64;
        let _ = writeln!(
            out,
            "\nplanner mispredict (measured/predicted): p50 {:.2}x  p95 {:.2}x  p99 {:.2}x  over {} scored",
            v2.mispredict.percentile(50.0) as f64 / scale,
            v2.mispredict.percentile(95.0) as f64 / scale,
            v2.mispredict.percentile(99.0) as f64 / scale,
            v2.mispredict.count()
        );
    }
    out
}

#[cfg(unix)]
fn run_stats(socket: String, watch: Option<u64>) {
    loop {
        let v2 = Client::connect(&socket).and_then(|mut c| c.stats_v2()).unwrap_or_else(|e| {
            eprintln!("rankd stats: {e}");
            std::process::exit(1);
        });
        if watch.is_some() {
            // ANSI clear + home, like top(1).
            print!("\x1B[2J\x1B[H");
        }
        println!("{}", render_dashboard(&socket, &v2));
        match watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
            None => return,
        }
    }
}

/// Parse a byte count with an optional k/m/g suffix (powers of 1024),
/// case-insensitive: `1g`, `256M`, `65536`.
#[cfg(unix)]
fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_shl(shift)
}

/// Render a byte count with a binary-unit suffix.
#[cfg(unix)]
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn fmt_rate(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// The huge-list scenario: job-level parallelism is pointless when one
/// job saturates the machine, so *unless overridden on the command
/// line* run one worker with the full thread budget inside it, and
/// compare the shard-parallel path against the monolithic fallback on
/// the same engine.
fn run_sharded_cli(args: &Args) {
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut cfg = args.engine.clone();
    if !args.workers_set {
        cfg = cfg.with_workers(1);
    }
    if !args.inner_threads_set {
        cfg = cfg.with_inner_threads(avail);
    }
    eprintln!(
        "generating huge list: {} vertices, block {}, seed {:#x} ...",
        args.huge.n, args.huge.block, args.huge.seed
    );
    let engine = Engine::new(cfg);
    println!(
        "engine: {} worker(s) × {} inner threads, shard budget {} vertices",
        engine.config().workers,
        engine.config().inner_threads,
        engine.config().shard_budget
    );
    let cmp = run_sharded_scenario(&engine, &args.huge);
    let stats = engine.stats();
    println!(
        "sharded:    {} jobs in {:.3}s  ({} elems/s)  [{} jobs over {} shards, stitch {:.3} ms]",
        cmp.sharded.jobs,
        cmp.sharded.elapsed.as_secs_f64(),
        fmt_rate(cmp.sharded.elements_per_sec()),
        stats.sharded_jobs,
        stats.shards_ranked,
        stats.stitch_ns as f64 / 1e6,
    );
    println!(
        "monolithic: {} jobs in {:.3}s  ({} elems/s)",
        cmp.monolithic.jobs,
        cmp.monolithic.elapsed.as_secs_f64(),
        fmt_rate(cmp.monolithic.elements_per_sec()),
    );
    println!("\nsharded vs monolithic: {:.2}× throughput", cmp.speedup());
    println!("\n-- engine stats --\n{}", engine.stats());
    engine.shutdown();
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        #[cfg(unix)]
        {
            let (cfg, engine_cfg) = parse_serve_args(argv);
            run_serve(cfg, engine_cfg);
            return;
        }
        #[cfg(not(unix))]
        {
            eprintln!("rankd serve requires unix domain sockets");
            std::process::exit(2);
        }
    }
    if argv.peek().map(String::as_str) == Some("stats") {
        argv.next();
        #[cfg(unix)]
        {
            let (socket, watch) = parse_stats_args(argv);
            run_stats(socket, watch);
            return;
        }
        #[cfg(not(unix))]
        {
            eprintln!("rankd stats requires unix domain sockets");
            std::process::exit(2);
        }
    }
    let args = parse_args(argv);
    if args.sharded_scenario {
        run_sharded_cli(&args);
        return;
    }
    if args.workload.min_exp > args.workload.max_exp {
        eprintln!(
            "--min-exp ({}) must be ≤ --max-exp ({})",
            args.workload.min_exp, args.workload.max_exp
        );
        std::process::exit(2);
    }

    eprintln!(
        "generating workload: decades 10^{}..10^{}, ~{} elems/decade, {:.0}% scans, seed {:#x} ...",
        args.workload.min_exp,
        args.workload.max_exp,
        args.workload.elems_per_decade,
        args.workload.scan_frac * 100.0,
        args.workload.seed
    );
    let workload = Workload::generate(&args.workload);
    println!(
        "workload: {} jobs, {} total vertices (sizes 10^{}..10^{})",
        workload.num_jobs(),
        workload.total_elements,
        args.workload.min_exp,
        args.workload.max_exp
    );

    let engine = Engine::new(args.engine.clone());
    println!(
        "engine: {} workers × {} inner threads, queue {} (batch ≤{} jobs ≤{} vertices, pool {}, lanes {})",
        engine.config().workers,
        engine.config().inner_threads,
        engine.config().queue_capacity,
        engine.config().batch_max,
        engine.config().small_cutoff,
        if engine.config().pool_scratch { "on" } else { "off" },
        match engine.config().lanes {
            Some(k) => k.to_string(),
            None => "auto".to_string(),
        }
    );

    let mut engine_result = None;
    for r in 0..args.repeats.max(1) {
        let res = run_engine(&engine, &workload);
        println!(
            "engine pass {}: {} jobs in {:.3}s  ({} jobs/s, {} elems/s)",
            r + 1,
            res.jobs,
            res.elapsed.as_secs_f64(),
            fmt_rate(res.jobs_per_sec()),
            fmt_rate(res.elements_per_sec()),
        );
        engine_result = Some(res);
    }
    let engine_result = engine_result.expect("at least one pass");

    // The stats Display includes the per-op throughput lines ("by op:")
    // alongside the dispatch-by-size and dispatch-by-op matrices.
    println!("\n-- engine stats --\n{}", engine.stats());

    if !args.skip_baseline {
        eprintln!("running naive sequential-submit baseline ...");
        let base = run_baseline(&workload);
        println!(
            "baseline: {} jobs in {:.3}s  ({} jobs/s, {} elems/s)",
            base.jobs,
            base.elapsed.as_secs_f64(),
            fmt_rate(base.jobs_per_sec()),
            fmt_rate(base.elements_per_sec()),
        );
        assert_eq!(base.checksum, engine_result.checksum, "engine and baseline outputs diverged");
        let speedup = base.elapsed.as_secs_f64() / engine_result.elapsed.as_secs_f64();
        println!(
            "\nengine vs baseline: {speedup:.2}× throughput ({} vs {} elems/s)",
            fmt_rate(engine_result.elements_per_sec()),
            fmt_rate(base.elements_per_sec()),
        );
    }

    engine.shutdown();
}
