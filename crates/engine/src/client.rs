//! In-process client for a `rankd serve` daemon.
//!
//! [`Client`] speaks the [`crate::protocol`] over a Unix domain
//! socket: connect (which performs the HELLO handshake), then call the
//! typed request methods — each writes one frame, blocks for the
//! reply, and decodes it into a [`ServedOutput`]. A server-side
//! [`FrameKind::Error`] reply surfaces as [`ClientError::Server`] with
//! its typed code; the connection stays usable afterwards exactly when
//! the server kept it open (every code except the handshake failures
//! and [`ErrorCode::FrameTooLarge`]).
//!
//! This is the same codec the server uses, so the integration tests
//! and the `serve_bench` driver exercise the real wire format, not a
//! shortcut.
//!
//! ## Transports
//!
//! [`Client::connect`] dials a Unix domain socket;
//! [`Client::connect_tcp`] dials the daemon's optional TCP listener
//! (`rankd serve --tcp HOST:PORT`). Both speak the identical protocol
//! — the transport is invisible above the handshake. TCP connections
//! set `TCP_NODELAY` so small pipelined frames are not held back by
//! Nagle's algorithm.
//!
//! ## Pipelining (protocol v6)
//!
//! The blocking methods above are one-frame-in-flight. Against a v6
//! server a client may instead tag each job request with a nonzero
//! `request_id` ([`protocol::ReqFlags::with_request_id`]), write many
//! frames back to back with [`Client::send_encoded`], and collect the
//! replies — which arrive in *completion* order, not submission order
//! — with [`Client::recv_pipelined`]. Pipelined sends are never
//! retried by the [`RetryPolicy`]: a reconnect would silently drop
//! every other in-flight request, so any failure mid-pipeline
//! surfaces immediately and the caller decides what to replay.
//!
//! ## Resilience
//!
//! A [`RetryPolicy`] (installed with [`Client::with_retry`]) makes the
//! client ride out *transient* failures on its own: dropped
//! connections and torn replies trigger a reconnect + fresh handshake,
//! typed [`ErrorCode::Busy`]/[`ErrorCode::Overloaded`] refusals back
//! off and resend, all under capped exponential backoff with
//! deterministic jitter. Everything else — including every MUTATE,
//! whose first attempt may have applied before the reply was lost — is
//! surfaced to the caller on the first failure.

use crate::protocol::{
    self, read_frame, write_frame, ErrorCode, Frame, FrameKind, OutputMeta, ReadFrameError,
    WireElem, WireMutateOk, WireOp, WireStats, WireStatsV2, MAX_FRAME_DEFAULT,
};
use crate::store::PutReceipt;
use listkit::dynamic::Edit;
use listkit::ops::Affine;
use listkit::LinkedList;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Where a [`Client`] dials — kept so retry-driven reconnects can
/// re-open the same endpoint.
#[derive(Clone, Debug)]
enum Endpoint {
    /// A Unix domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` address.
    Tcp(String),
}

impl Endpoint {
    fn open(&self) -> std::io::Result<Stream> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                // Pipelined frames are small; Nagle would batch them
                // against the round trip we are trying to hide.
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
        }
    }
}

/// The connected transport, erased behind `Read + Write`.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, unexpected EOF).
    Io(std::io::Error),
    /// The server answered with a typed error frame.
    Server {
        /// Raw error code from the wire.
        code: u16,
        /// The decoded code, when this client version knows it.
        kind: Option<ErrorCode>,
        /// Server-provided detail message.
        message: String,
    },
    /// The reply violated the protocol (wrong kind, undecodable body).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, kind, message } => match kind {
                Some(k) => write!(f, "server error {code} ({k}): {message}"),
                None => write!(f, "server error {code}: {message}"),
            },
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The typed error code, when the failure was a server error frame
    /// with a code this client knows.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { kind, .. } => *kind,
            _ => None,
        }
    }
}

/// How a [`Client`] retries transient failures: capped exponential
/// backoff with deterministic jitter.
///
/// The delay before retry `attempt` (0-based) is drawn from
/// `[exp / 2, exp]` where `exp = min(base_delay << attempt,
/// max_delay)` — "equal jitter", so the delay never exceeds
/// `max_delay` and never collapses below half the exponential
/// schedule. The jitter is a pure function of `(jitter_seed,
/// attempt)`, so a fleet of clients seeded differently desynchronises
/// while any single run is exactly reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (`0` disables retrying).
    pub max_retries: u32,
    /// First-retry backoff; doubles each further attempt.
    pub base_delay: Duration,
    /// Backoff ceiling (pre-jitter; jitter never exceeds it).
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 4 retries, 10 ms base, 500 ms ceiling.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The no-retry policy: every failure surfaces immediately (the
    /// behaviour of a plain [`Client::connect`]).
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// Replace the jitter seed (distinct seeds desynchronise a fleet).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The backoff before retry `attempt` (0-based). Pure and total:
    /// saturates instead of overflowing for any `attempt`, and the
    /// result is always within `[exp / 2, exp]` for
    /// `exp = min(base_delay * 2^attempt, max_delay)`.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let base_ns = u64::try_from(self.base_delay.as_nanos()).unwrap_or(u64::MAX);
        let max_ns = u64::try_from(self.max_delay.as_nanos()).unwrap_or(u64::MAX);
        // Widen before shifting: `u64::checked_shl` only guards the
        // shift *amount*, not value overflow, and a silently wrapped
        // exponent would collapse the backoff for large attempts.
        // Capping the shift at 64 keeps the u128 shift defined while
        // preserving saturation (any base ≥ 1 shifted 64 exceeds
        // every u64 ceiling).
        let exp_wide = (u128::from(base_ns) << attempt.min(64)).min(u128::from(max_ns));
        let exp_ns = u64::try_from(exp_wide).unwrap_or(u64::MAX);
        let floor_ns = exp_ns / 2;
        // Span is exp - floor + 1 >= 1, so the modulo is well-defined.
        let span = exp_ns - floor_ns + 1;
        let jitter = crate::fault::splitmix64(self.jitter_seed ^ u64::from(attempt)) % span;
        Duration::from_nanos(floor_ns + jitter)
    }

    /// Whether `error` is worth retrying: transport failures that a
    /// reconnect can heal, plus the server's explicit
    /// back-off-and-come-back refusals ([`ErrorCode::Busy`],
    /// [`ErrorCode::Overloaded`]). Typed application errors (stale
    /// handles, malformed requests, failed jobs…) are not transient.
    pub fn is_transient(error: &ClientError) -> bool {
        match error {
            ClientError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::WriteZero
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::NotFound
            ),
            ClientError::Server { kind, .. } => {
                matches!(kind, Some(ErrorCode::Busy) | Some(ErrorCode::Overloaded))
            }
            ClientError::Protocol(_) => false,
        }
    }
}

/// A served result: the typed output payload plus the execution
/// metadata the OUTPUT frame carries.
#[derive(Clone, Debug)]
pub struct ServedOutput<T> {
    /// The output values (ranks as `Vec<u64>`, scans as the operator's
    /// element type).
    pub output: Vec<T>,
    /// Dispatch/timing metadata of the job that produced them.
    pub meta: OutputMeta,
}

/// A connected, handshaken `rankd serve` client.
pub struct Client {
    stream: Stream,
    /// The dialed endpoint, kept for retry-driven reconnects.
    endpoint: Endpoint,
    retry: RetryPolicy,
    server_version: u16,
    server_max_frame: u32,
}

impl Client {
    fn connect_endpoint(endpoint: Endpoint) -> Result<Client, ClientError> {
        let stream = endpoint.open()?;
        let mut client = Client {
            stream,
            endpoint,
            retry: RetryPolicy::none(),
            server_version: 0,
            server_max_frame: MAX_FRAME_DEFAULT,
        };
        client.handshake()?;
        Ok(client)
    }

    /// Connect to the daemon's socket and perform the HELLO handshake.
    pub fn connect(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Client::connect_endpoint(Endpoint::Unix(path.as_ref().to_path_buf()))
    }

    /// Connect to the daemon's TCP listener (`rankd serve --tcp
    /// HOST:PORT`) and perform the HELLO handshake. Identical protocol
    /// to [`Client::connect`]; `TCP_NODELAY` is set so pipelined
    /// frames go out immediately.
    pub fn connect_tcp(addr: impl Into<String>) -> Result<Client, ClientError> {
        Client::connect_endpoint(Endpoint::Tcp(addr.into()))
    }

    fn connect_endpoint_with_retry(
        endpoint: Endpoint,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        let mut attempt = 0u32;
        loop {
            match Client::connect_endpoint(endpoint.clone()) {
                Ok(client) => return Ok(client.with_retry(policy)),
                Err(e) if attempt < policy.max_retries && RetryPolicy::is_transient(&e) => {
                    std::thread::sleep(policy.backoff_delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Connect under `policy`: a refused/missing socket (daemon still
    /// binding, or briefly restarting) is retried on the policy's
    /// backoff schedule before giving up. The policy stays installed
    /// on the returned client, as if by [`Client::with_retry`].
    pub fn connect_with_retry(
        path: impl AsRef<Path>,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        Client::connect_endpoint_with_retry(Endpoint::Unix(path.as_ref().to_path_buf()), policy)
    }

    /// [`Client::connect_tcp`] under `policy` (see
    /// [`Client::connect_with_retry`]).
    pub fn connect_tcp_with_retry(
        addr: impl Into<String>,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        Client::connect_endpoint_with_retry(Endpoint::Tcp(addr.into()), policy)
    }

    /// Install a retry policy on this client (see [`RetryPolicy`] for
    /// what gets retried).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Perform the HELLO handshake on the current stream.
    fn handshake(&mut self) -> Result<(), ClientError> {
        let reply = self.call_once(FrameKind::Hello, &protocol::hello_body())?;
        match FrameKind::from_u8(reply.kind) {
            Some(FrameKind::HelloOk) => {
                let (version, max_frame) = protocol::decode_hello_ok(&reply.body)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                self.server_version = version;
                self.server_max_frame = max_frame;
                Ok(())
            }
            other => Err(ClientError::Protocol(format!("expected HELLO_OK, got {other:?}"))),
        }
    }

    /// Replace the dead stream with a fresh connection + handshake.
    /// Server-side per-connection state (resident dataset handles!)
    /// died with the old connection; callers holding handles must
    /// re-PUT after a reconnect, which surfaces to them as
    /// [`ErrorCode::StaleHandle`] on the next handle op.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = self.endpoint.open()?;
        self.handshake()
    }

    /// The protocol version the server reported in HELLO_OK.
    pub fn server_version(&self) -> u16 {
        self.server_version
    }

    /// The frame-size cap the server reported in HELLO_OK.
    pub fn server_max_frame(&self) -> u32 {
        self.server_max_frame
    }

    /// The frame-size cap applied when reading replies. The server's
    /// advertised cap bounds *requests*; a reply can legitimately be
    /// larger (a RANK request carries `u32` links but its OUTPUT reply
    /// carries `u64` ranks — twice the payload), so allow 2× plus
    /// header slack.
    fn reply_cap(&self) -> u32 {
        self.server_max_frame.saturating_mul(2).saturating_add(64)
    }

    /// One round trip under the retry policy: transient failures
    /// reconnect (for transport errors) and resend, with backoff.
    /// MUTATE is never retried — its first attempt may have applied
    /// before the reply was lost, and resending would double-apply.
    fn call(&mut self, kind: FrameKind, body: &[u8]) -> Result<Frame, ClientError> {
        let mut attempt = 0u32;
        loop {
            let err = match self.call_once(kind, body) {
                Ok(frame) => return Ok(frame),
                Err(e) => e,
            };
            if kind == FrameKind::Mutate
                || attempt >= self.retry.max_retries
                || !RetryPolicy::is_transient(&err)
            {
                return Err(err);
            }
            std::thread::sleep(self.retry.backoff_delay(attempt));
            attempt += 1;
            if matches!(err, ClientError::Io(_)) {
                // A failed reconnect just burns this attempt; the next
                // call_once on the stale stream fails fast and loops.
                let _ = self.reconnect();
            }
        }
    }

    /// Read one reply frame off the stream (no error-frame
    /// conversion; EOF and oversized replies surface as errors).
    fn read_reply_frame(&mut self) -> Result<Frame, ClientError> {
        let reply_cap = self.reply_cap();
        match read_frame(&mut self.stream, reply_cap) {
            Ok(Some(f)) => Ok(f),
            Ok(None) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Err(ReadFrameError::Io(e)) => Err(ClientError::Io(e)),
            Err(e @ ReadFrameError::TooLarge { .. }) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// One round trip: write a frame, read the reply, surface error
    /// frames as [`ClientError::Server`].
    fn call_once(&mut self, kind: FrameKind, body: &[u8]) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, kind as u8, body)?;
        let frame = self.read_reply_frame()?;
        if FrameKind::from_u8(frame.kind) == Some(FrameKind::Error) {
            let (code, kind, message) = protocol::decode_error(&frame.body)
                .map_err(|e| ClientError::Protocol(e.to_string()))?;
            return Err(ClientError::Server { code, kind, message });
        }
        Ok(frame)
    }

    /// Write one request frame **without** waiting for its reply —
    /// the pipelined send half. The body should carry a nonzero
    /// `request_id` (see [`protocol::ReqFlags::with_request_id`] and
    /// the `*_body_flags` encoders) so the completion-ordered reply
    /// can be matched back; collect replies with
    /// [`Client::recv_pipelined`]. Never retried: a reconnect would
    /// orphan the rest of the pipeline.
    pub fn send_encoded(&mut self, kind: FrameKind, body: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, kind as u8, body)?;
        Ok(())
    }

    /// Read one pipelined reply: `(request_id, per-request result)`.
    /// Replies arrive in the server's *completion* order, so the id is
    /// how the caller matches a reply to its request. A per-request
    /// failure (deadline, quota, stale handle…) arrives as `Ok((id,
    /// Err(..)))` — the connection is still usable and other
    /// in-flight requests are unaffected. A connection-level error
    /// frame (malformed pipeline bytes, duplicate id the server could
    /// not attribute) or transport failure is the outer `Err`.
    pub fn recv_pipelined<T: WireElem>(
        &mut self,
    ) -> Result<(u64, Result<ServedOutput<T>, ClientError>), ClientError> {
        let frame = self.read_reply_frame()?;
        match FrameKind::from_u8(frame.kind) {
            Some(FrameKind::OutputP) => {
                let (id, inner) = protocol::decode_pipelined(&frame.body)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                let (meta, output) = protocol::decode_output::<T>(inner)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Ok((id, Ok(ServedOutput { output, meta })))
            }
            Some(FrameKind::ErrorP) => {
                let (id, inner) = protocol::decode_pipelined(&frame.body)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                let (code, kind, message) = protocol::decode_error(inner)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Ok((id, Err(ClientError::Server { code, kind, message })))
            }
            Some(FrameKind::Error) => {
                let (code, kind, message) = protocol::decode_error(&frame.body)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Err(ClientError::Server { code, kind, message })
            }
            other => Err(ClientError::Protocol(format!(
                "expected pipelined OUTPUT/ERROR, got {other:?}"
            ))),
        }
    }

    fn expect_output<T: WireElem>(
        &mut self,
        kind: FrameKind,
        body: &[u8],
    ) -> Result<ServedOutput<T>, ClientError> {
        let reply = self.call(kind, body)?;
        match FrameKind::from_u8(reply.kind) {
            Some(FrameKind::Output) => {
                let (meta, output) = protocol::decode_output::<T>(&reply.body)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Ok(ServedOutput { output, meta })
            }
            other => Err(ClientError::Protocol(format!("expected OUTPUT, got {other:?}"))),
        }
    }

    /// Rank `list` on the server; `output[v]` is the rank of vertex
    /// `v` — byte-identical to a local
    /// [`listrank::HostRunner`] rank of the same list.
    pub fn rank(&mut self, list: &LinkedList) -> Result<ServedOutput<u64>, ClientError> {
        self.expect_output(FrameKind::Rank, &protocol::rank_body(list, false))
    }

    /// [`Client::rank`] through the engine's budget-aware
    /// shard-parallel path.
    pub fn rank_sharded(&mut self, list: &LinkedList) -> Result<ServedOutput<u64>, ClientError> {
        self.expect_output(FrameKind::Rank, &protocol::rank_body(list, true))
    }

    /// [`Client::rank`] with a queue deadline: if the job has not
    /// started executing within `deadline_ms` of submission, the
    /// server drops it and answers
    /// [`ErrorCode::DeadlineExceeded`]. Requires a v5 server.
    pub fn rank_with_deadline(
        &mut self,
        list: &LinkedList,
        deadline_ms: u64,
    ) -> Result<ServedOutput<u64>, ClientError> {
        self.expect_output(
            FrameKind::Rank,
            &protocol::rank_body_deadline(list, false, Some(deadline_ms)),
        )
    }

    /// [`Client::rank_h`] with a queue deadline (see
    /// [`Client::rank_with_deadline`]).
    pub fn rank_h_with_deadline(
        &mut self,
        handle: u64,
        deadline_ms: u64,
    ) -> Result<ServedOutput<u64>, ClientError> {
        self.expect_output(
            FrameKind::RankH,
            &protocol::rank_h_body_deadline(handle, false, Some(deadline_ms)),
        )
    }

    /// Pipelined [`Client::rank`]: send only, tagged `request_id`
    /// (nonzero). Pair with [`Client::recv_pipelined::<u64>`].
    pub fn send_rank(&mut self, list: &LinkedList, request_id: u64) -> Result<(), ClientError> {
        let flags = protocol::ReqFlags::default().with_request_id(request_id);
        self.send_encoded(FrameKind::Rank, &protocol::rank_body_flags(list, flags))
    }

    /// Pipelined [`Client::rank_h`]: send only, tagged `request_id`.
    pub fn send_rank_h(&mut self, handle: u64, request_id: u64) -> Result<(), ClientError> {
        let flags = protocol::ReqFlags::default().with_request_id(request_id);
        self.send_encoded(FrameKind::RankH, &protocol::rank_h_body_flags(handle, flags))
    }

    /// Pipelined [`Client::scan_add`]: send only, tagged `request_id`.
    pub fn send_scan_add(
        &mut self,
        list: &LinkedList,
        values: &[i64],
        request_id: u64,
    ) -> Result<(), ClientError> {
        let flags = protocol::ReqFlags::default().with_request_id(request_id);
        self.send_encoded(
            FrameKind::Scan,
            &protocol::scan_body_flags(list, values, WireOp::Add, flags),
        )
    }

    fn scan_with<T: WireElem>(
        &mut self,
        list: &LinkedList,
        values: &[T],
        op: WireOp,
        sharded: bool,
    ) -> Result<ServedOutput<T>, ClientError> {
        self.expect_output(FrameKind::Scan, &protocol::scan_body(list, values, op, sharded))
    }

    /// Exclusive `+`-scan of `values` along `list`.
    pub fn scan_add(
        &mut self,
        list: &LinkedList,
        values: &[i64],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.scan_with(list, values, WireOp::Add, false)
    }

    /// Exclusive max-scan of `values` along `list`.
    pub fn scan_max(
        &mut self,
        list: &LinkedList,
        values: &[i64],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.scan_with(list, values, WireOp::Max, false)
    }

    /// Exclusive min-scan of `values` along `list`.
    pub fn scan_min(
        &mut self,
        list: &LinkedList,
        values: &[i64],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.scan_with(list, values, WireOp::Min, false)
    }

    /// Exclusive xor-scan of `values` along `list`.
    pub fn scan_xor(
        &mut self,
        list: &LinkedList,
        values: &[u64],
    ) -> Result<ServedOutput<u64>, ClientError> {
        self.scan_with(list, values, WireOp::Xor, false)
    }

    /// Exclusive affine-composition scan (non-commutative) of `values`
    /// along `list`.
    pub fn scan_affine(
        &mut self,
        list: &LinkedList,
        values: &[Affine],
    ) -> Result<ServedOutput<Affine>, ClientError> {
        self.scan_with(list, values, WireOp::Affine, false)
    }

    /// [`Client::scan_add`] through the shard-parallel path.
    pub fn scan_add_sharded(
        &mut self,
        list: &LinkedList,
        values: &[i64],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.scan_with(list, values, WireOp::Add, true)
    }

    /// Exclusive **segmented** `+`-scan: restarts wherever `starts` is
    /// set (the head always starts a segment).
    pub fn segmented_add(
        &mut self,
        list: &LinkedList,
        values: &[i64],
        starts: &[bool],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.expect_output(
            FrameKind::SegScan,
            &protocol::segscan_body(list, starts, values, WireOp::Add, false),
        )
    }

    /// Exclusive segmented max-scan.
    pub fn segmented_max(
        &mut self,
        list: &LinkedList,
        values: &[i64],
        starts: &[bool],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.expect_output(
            FrameKind::SegScan,
            &protocol::segscan_body(list, starts, values, WireOp::Max, false),
        )
    }

    /// Send a pre-encoded request body for `kind` and decode the
    /// OUTPUT reply. Benchmark drivers use this to keep the encode
    /// cost out of their latency measurement; the typed methods are
    /// thin wrappers over it.
    pub fn request_encoded<T: WireElem>(
        &mut self,
        kind: FrameKind,
        body: &[u8],
    ) -> Result<ServedOutput<T>, ClientError> {
        self.expect_output(kind, body)
    }

    /// Upload `list` into the server's resident dataset store. The
    /// returned receipt carries the handle for subsequent
    /// [`Client::rank_h`]/[`Client::scan_add_h`]/… calls and the bytes
    /// charged against the store budget. Handles are scoped to this
    /// connection and die with it.
    pub fn put(&mut self, list: &LinkedList) -> Result<PutReceipt, ClientError> {
        let reply = self.call(FrameKind::Put, &protocol::put_body(list))?;
        match FrameKind::from_u8(reply.kind) {
            Some(FrameKind::PutOk) => {
                let (handle, bytes) = protocol::decode_put_ok(&reply.body)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Ok(PutReceipt { handle, bytes })
            }
            other => Err(ClientError::Protocol(format!("expected PUT_OK, got {other:?}"))),
        }
    }

    /// Rank the resident dataset `handle` — byte-identical to
    /// [`Client::rank`] of the list that was PUT.
    pub fn rank_h(&mut self, handle: u64) -> Result<ServedOutput<u64>, ClientError> {
        self.expect_output(FrameKind::RankH, &protocol::rank_h_body(handle, false))
    }

    /// [`Client::rank_h`] through the shard-parallel path (reuses the
    /// store's cached sharded artifact when one exists).
    pub fn rank_h_sharded(&mut self, handle: u64) -> Result<ServedOutput<u64>, ClientError> {
        self.expect_output(FrameKind::RankH, &protocol::rank_h_body(handle, true))
    }

    fn scan_h_with<T: WireElem>(
        &mut self,
        handle: u64,
        values: &[T],
        op: WireOp,
        sharded: bool,
    ) -> Result<ServedOutput<T>, ClientError> {
        self.expect_output(FrameKind::ScanH, &protocol::scan_h_body(handle, values, op, sharded))
    }

    /// Exclusive `+`-scan of `values` along the resident dataset.
    pub fn scan_add_h(
        &mut self,
        handle: u64,
        values: &[i64],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.scan_h_with(handle, values, WireOp::Add, false)
    }

    /// Exclusive max-scan of `values` along the resident dataset.
    pub fn scan_max_h(
        &mut self,
        handle: u64,
        values: &[i64],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.scan_h_with(handle, values, WireOp::Max, false)
    }

    /// Exclusive min-scan of `values` along the resident dataset.
    pub fn scan_min_h(
        &mut self,
        handle: u64,
        values: &[i64],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.scan_h_with(handle, values, WireOp::Min, false)
    }

    /// Exclusive xor-scan of `values` along the resident dataset.
    pub fn scan_xor_h(
        &mut self,
        handle: u64,
        values: &[u64],
    ) -> Result<ServedOutput<u64>, ClientError> {
        self.scan_h_with(handle, values, WireOp::Xor, false)
    }

    /// Exclusive affine-composition scan of `values` along the
    /// resident dataset.
    pub fn scan_affine_h(
        &mut self,
        handle: u64,
        values: &[Affine],
    ) -> Result<ServedOutput<Affine>, ClientError> {
        self.scan_h_with(handle, values, WireOp::Affine, false)
    }

    /// [`Client::scan_add_h`] through the shard-parallel path.
    pub fn scan_add_h_sharded(
        &mut self,
        handle: u64,
        values: &[i64],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.scan_h_with(handle, values, WireOp::Add, true)
    }

    /// Exclusive segmented `+`-scan along the resident dataset.
    pub fn segmented_add_h(
        &mut self,
        handle: u64,
        values: &[i64],
        starts: &[bool],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.expect_output(
            FrameKind::SegScanH,
            &protocol::segscan_h_body(handle, starts, values, WireOp::Add, false),
        )
    }

    /// Exclusive segmented max-scan along the resident dataset.
    pub fn segmented_max_h(
        &mut self,
        handle: u64,
        values: &[i64],
        starts: &[bool],
    ) -> Result<ServedOutput<i64>, ClientError> {
        self.expect_output(
            FrameKind::SegScanH,
            &protocol::segscan_h_body(handle, starts, values, WireOp::Max, false),
        )
    }

    /// Apply a batch of edits to the resident dataset `handle`. The
    /// batch is atomic: either every edit applies (and every cached
    /// sharded artifact is brought up to date, incrementally or by
    /// rebuild per the server's planner) or the whole batch is refused
    /// — [`ErrorCode::BadMutation`] for a structurally invalid batch,
    /// [`ErrorCode::StaleHandle`] for a handle this connection does
    /// not own. The connection survives either refusal.
    pub fn mutate(&mut self, handle: u64, edits: &[Edit]) -> Result<WireMutateOk, ClientError> {
        self.mutate_encoded(&protocol::mutate_body(handle, edits))
    }

    /// Send a pre-encoded MUTATE body (see
    /// [`protocol::mutate_body`]) and decode the MUTATE_OK reply.
    /// Benchmark drivers use this to keep encode cost out of their
    /// latency measurement, like [`Client::request_encoded`] for
    /// queries.
    pub fn mutate_encoded(&mut self, body: &[u8]) -> Result<WireMutateOk, ClientError> {
        let reply = self.call(FrameKind::Mutate, body)?;
        match FrameKind::from_u8(reply.kind) {
            Some(FrameKind::MutateOk) => protocol::decode_mutate_ok(&reply.body)
                .map_err(|e| ClientError::Protocol(e.to_string())),
            other => Err(ClientError::Protocol(format!("expected MUTATE_OK, got {other:?}"))),
        }
    }

    /// Splice the run `first..=last` (a contiguous chain in successor
    /// order) out of the resident dataset and reinsert it after
    /// `after` (`None` = at the head). Single-edit convenience over
    /// [`Client::mutate`].
    pub fn splice(
        &mut self,
        handle: u64,
        first: u32,
        last: u32,
        after: Option<u32>,
    ) -> Result<WireMutateOk, ClientError> {
        self.mutate(handle, &[Edit::Splice { first, last, after }])
    }

    /// Delete vertex `v` from the resident dataset. The last vertex
    /// (index `len - 1`) is renamed into the vacated slot, keeping the
    /// vertex space dense. Single-edit convenience over
    /// [`Client::mutate`].
    pub fn delete(&mut self, handle: u64, v: u32) -> Result<WireMutateOk, ClientError> {
        self.mutate(handle, &[Edit::Delete { v }])
    }

    /// Append `count` fresh vertices (`len..len + count`, chained in
    /// index order) at the tail of the resident dataset. Single-edit
    /// convenience over [`Client::mutate`].
    pub fn append(&mut self, handle: u64, count: u32) -> Result<WireMutateOk, ClientError> {
        self.mutate(handle, &[Edit::Append { count }])
    }

    /// Drop the resident dataset `handle`, releasing its store bytes.
    /// A handle the server does not recognise (already dropped, or
    /// owned by another connection) fails with
    /// [`ErrorCode::StaleHandle`]; the connection survives.
    pub fn drop_handle(&mut self, handle: u64) -> Result<(), ClientError> {
        let reply = self.call(FrameKind::Drop, &protocol::drop_body(handle))?;
        match FrameKind::from_u8(reply.kind) {
            Some(FrameKind::DropOk) => Ok(()),
            other => Err(ClientError::Protocol(format!("expected DROP_OK, got {other:?}"))),
        }
    }

    /// Fetch the daemon's metrics: engine totals, the serving layer's
    /// connection/frame/byte counters, and the rendered stats report.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        let reply = self.call(FrameKind::Stats, &[])?;
        match FrameKind::from_u8(reply.kind) {
            Some(FrameKind::StatsOk) => protocol::decode_stats(&reply.body)
                .map_err(|e| ClientError::Protocol(e.to_string())),
            other => Err(ClientError::Protocol(format!("expected STATS_OK, got {other:?}"))),
        }
    }

    /// Fetch the daemon's histogram-level metrics: per-phase and
    /// per-op latency histograms, the planner's mispredict histogram
    /// and dispatch matrix, and the gauge block — everything the
    /// `rankd stats` dashboard renders.
    pub fn stats_v2(&mut self) -> Result<WireStatsV2, ClientError> {
        let reply = self.call(FrameKind::StatsV2, &[])?;
        match FrameKind::from_u8(reply.kind) {
            Some(FrameKind::StatsV2Ok) => protocol::decode_stats_v2(&reply.body)
                .map_err(|e| ClientError::Protocol(e.to_string())),
            other => Err(ClientError::Protocol(format!("expected STATS_V2_OK, got {other:?}"))),
        }
    }

    /// Ask the daemon to drain in-flight work and exit. Consumes the
    /// client — the server closes this connection once it
    /// acknowledges.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        let reply = self.call(FrameKind::Shutdown, &[])?;
        match FrameKind::from_u8(reply.kind) {
            Some(FrameKind::ShutdownOk) => Ok(()),
            other => Err(ClientError::Protocol(format!("expected SHUTDOWN_OK, got {other:?}"))),
        }
    }
}
