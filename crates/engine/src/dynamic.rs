//! Dynamic lists: the mutation plane over resident datasets.
//!
//! A resident dataset ([`crate::DatasetStore`]) is no longer frozen at
//! PUT time: clients send batches of splice / delete / append edits
//! against a handle and keep querying, and the store's cached sharded
//! artifacts are brought up to date *incrementally* — only the shards a
//! batch dirtied are re-derived
//! ([`ShardedList::rebuild_dirty`]), the clean ones are shared with the
//! pre-mutation artifact by `Arc`. That is the paper's economics transplanted to a
//! dynamic setting: Reid-Miller's three-phase decomposition localizes
//! all per-shard state, so an edit that touches few shards invalidates
//! few shards, and the stitch over the contracted list is the only
//! global work left.
//!
//! Incremental is not always cheaper. A batch that dirties most shards
//! pays nearly the full build *plus* the serial boundary re-assembly,
//! and a fragment-heavy (random-permutation) topology makes that serial
//! term dominate outright. The choice is therefore a planner decision
//! ([`crate::Planner::choose_maintenance`]): the
//! [`rankmodel::predict::predict_patch`] cost model is the cold-start
//! prior, and measured maintenance times (their own EWMA history,
//! separate from query dispatch) migrate the crossover to wherever this
//! machine actually puts it.
//!
//! Correctness contract, same as everywhere else in this repo: after a
//! mutation, ranking the dataset is **byte-identical** to ranking a
//! from-scratch serial pass over the post-mutation list — at every lane
//! count and shard budget. `tests/differential.rs` enforces it with
//! random edit sequences over the topology zoo.

use crate::planner::Planner;
use crate::store::{DatasetStore, StoreError};
use listkit::dynamic::{Edit, EditError};
use listkit::sharded::ShardedList;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Why a mutation request was refused. The dataset is untouched in
/// every refusal case (batches are atomic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutateError {
    /// The handle does not name a resident dataset owned by this
    /// connection.
    Stale,
    /// The batch was structurally invalid (out-of-range vertex, target
    /// inside the spliced run, empty batch, …).
    Edit(EditError),
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::Stale => write!(f, "stale dataset handle"),
            MutateError::Edit(e) => write!(f, "bad mutation: {e}"),
        }
    }
}

impl std::error::Error for MutateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutateError::Stale => None,
            MutateError::Edit(e) => Some(e),
        }
    }
}

impl From<StoreError> for MutateError {
    fn from(_: StoreError) -> Self {
        // Both store refusals (stale handle, budget) surface as
        // staleness to the mutation plane: a mutation never admits new
        // datasets, so `StoreFull` cannot occur on this path.
        MutateError::Stale
    }
}

impl From<EditError> for MutateError {
    fn from(e: EditError) -> Self {
        MutateError::Edit(e)
    }
}

/// What one applied mutation batch did — the body of the `MUTATE_OK`
/// wire reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Edits applied (the whole batch, or the request failed).
    pub applied: u32,
    /// Post-mutation dataset length.
    pub len: u64,
    /// `true` when every cached artifact was patched in place (also
    /// when there was nothing cached to maintain); `false` when at
    /// least one artifact took the full-recompute fallback.
    pub incremental: bool,
    /// Dirty shards patched across all incremental maintenance passes.
    pub dirty_shards: u32,
    /// Cached artifacts brought up to date (patched or rebuilt).
    pub artifacts: u32,
    /// Wall-clock of apply + maintenance, in nanoseconds.
    pub exec_ns: u64,
}

/// Apply one batch of edits to the dataset `handle` owned by
/// connection `conn`, then bring every cached sharded artifact up to
/// date under planner control (patch dirty shards or rebuild, per
/// [`Planner::choose_maintenance`]).
///
/// The batch is atomic: any invalid edit rejects the whole batch with
/// the dataset, its artifacts, and its budget charges untouched.
/// Queries racing the mutation are linearized by the snapshot swap —
/// each one ranks either the full pre-batch or the full post-batch
/// list, never a half-applied state.
pub fn mutate(
    store: &DatasetStore,
    planner: &Planner,
    handle: u64,
    conn: u64,
    edits: &[Edit],
) -> Result<MutationOutcome, MutateError> {
    let started = Instant::now();
    let dataset = store.get(handle, conn)?;
    let (report, snapshot) = dataset.apply_edits(edits)?;
    let n = snapshot.len();

    // Maintenance sweep: every cached artifact is brought up to date
    // now, not lazily — a stale artifact serving a post-mutation query
    // would break the byte-identical contract, and the handle's next
    // query should pay stitch + walk, not a surprise rebuild.
    let cache = dataset.artifacts();
    let mut incremental_passes = 0u64;
    let mut full_passes = 0u64;
    let mut dirty_patched = 0u64;
    for ((shard_size, lanes), old) in cache.entries() {
        let dirty = report.dirty_shards(shard_size);
        let fragments = old.fragment_count();
        let decision = planner.choose_maintenance(n, shard_size, fragments, dirty.len());
        let pass = Instant::now();
        let rebuilt = if decision.incremental {
            old.rebuild_dirty(&snapshot, &dirty)
        } else {
            ShardedList::build(&snapshot, shard_size).with_lanes(lanes)
        };
        planner.record_maintenance(
            n,
            shard_size,
            fragments,
            decision.dirty,
            decision.incremental,
            pass.elapsed().as_nanos() as u64,
        );
        if decision.incremental {
            incremental_passes += 1;
            dirty_patched += decision.dirty as u64;
        } else {
            full_passes += 1;
        }
        cache.replace((shard_size, lanes), Arc::new(rebuilt));
    }
    store.note_mutation(report.applied as u64, incremental_passes, full_passes, dirty_patched);

    Ok(MutationOutcome {
        applied: report.applied as u32,
        len: n as u64,
        incremental: full_passes == 0,
        dirty_shards: dirty_patched.min(u32::MAX as u64) as u32,
        artifacts: (incremental_passes + full_passes).min(u32::MAX as u64) as u32,
        exec_ns: started.elapsed().as_nanos() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::serial;
    use listkit::LinkedList;

    fn ring_list(n: usize) -> Arc<LinkedList> {
        let order: Vec<u32> = (0..n as u32).rev().collect();
        Arc::new(LinkedList::from_order(&order).expect("valid order"))
    }

    fn put(store: &Arc<DatasetStore>, n: usize) -> u64 {
        store.put(7, ring_list(n)).expect("fits").handle
    }

    fn serial_ranks(list: &LinkedList) -> Vec<u64> {
        let mut out = Vec::new();
        serial::rank_into(list, &mut out);
        out
    }

    #[test]
    fn mutate_patches_cached_artifacts_byte_identically() {
        let store = Arc::new(DatasetStore::new(u64::MAX));
        let planner = Planner::new(4);
        let h = put(&store, 5000);
        // Prime an artifact, as a handle query would.
        let ds = store.get(h, 7).unwrap();
        ds.artifacts().get_or_build(&ds.list(), 512, 4);
        drop(ds);

        let out = mutate(
            &store,
            &planner,
            h,
            7,
            &[
                Edit::Splice { first: 20, last: 10, after: Some(4000) },
                Edit::Delete { v: 123 },
                Edit::Append { count: 64 },
            ],
        )
        .expect("valid batch");
        assert_eq!(out.applied, 3);
        assert_eq!(out.len, 5000 - 1 + 64);
        assert_eq!(out.artifacts, 1);

        // The patched artifact ranks byte-identically to a serial pass
        // over the post-mutation list.
        let ds = store.get(h, 7).unwrap();
        let list = ds.list();
        assert_eq!(list.len(), out.len as usize);
        let sharded = ds.artifacts().get_or_build(&list, 512, 4);
        let mut got = Vec::new();
        sharded.rank_into(&mut got);
        assert_eq!(got, serial_ranks(&list), "patched artifact must match serial");
        // And it was a maintenance pass, not a cache rebuild from
        // scratch via get_or_build (which would count artifacts_built).
        assert_eq!(store.stats().artifacts_built, 1, "only the priming build");
        let m = store.mutation_stats();
        assert_eq!(m.mutations, 1);
        assert_eq!(m.edits, 3);
        assert_eq!(m.incremental + m.full, 1);
    }

    #[test]
    fn mutate_without_artifacts_is_incremental_with_nothing_patched() {
        let store = Arc::new(DatasetStore::new(u64::MAX));
        let planner = Planner::new(2);
        let h = put(&store, 100);
        let out = mutate(&store, &planner, h, 7, &[Edit::Append { count: 1 }]).unwrap();
        assert!(out.incremental);
        assert_eq!((out.artifacts, out.dirty_shards), (0, 0));
        assert_eq!(out.len, 101);
    }

    #[test]
    fn mutate_refusals_are_typed_and_leave_the_dataset_alone() {
        let store = Arc::new(DatasetStore::new(u64::MAX));
        let planner = Planner::new(2);
        let h = put(&store, 50);
        // Unknown handle and foreign connection are both stale.
        assert_eq!(
            mutate(&store, &planner, h + 1, 7, &[Edit::Append { count: 1 }]),
            Err(MutateError::Stale)
        );
        assert_eq!(
            mutate(&store, &planner, h, 8, &[Edit::Append { count: 1 }]),
            Err(MutateError::Stale)
        );
        // A bad edit anywhere in the batch rejects the whole batch.
        let before = store.get(h, 7).unwrap().list();
        let err =
            mutate(&store, &planner, h, 7, &[Edit::Append { count: 9 }, Edit::Delete { v: 999 }])
                .unwrap_err();
        assert!(matches!(err, MutateError::Edit(EditError::VertexOutOfRange { .. })), "{err}");
        let after = store.get(h, 7).unwrap().list();
        assert_eq!(after.len(), before.len(), "atomic batch: nothing applied");
        assert_eq!(store.mutation_stats().mutations, 0);
        // Empty batches are typed too.
        let err = mutate(&store, &planner, h, 7, &[]).unwrap_err();
        assert!(matches!(err, MutateError::Edit(EditError::EmptyBatch)));
    }

    #[test]
    fn queries_pinned_before_a_mutation_keep_their_snapshot() {
        let store = Arc::new(DatasetStore::new(u64::MAX));
        let planner = Planner::new(2);
        let h = put(&store, 200);
        let ds = store.get(h, 7).unwrap();
        let pinned = ds.list();
        mutate(&store, &planner, h, 7, &[Edit::Delete { v: 3 }]).unwrap();
        assert_eq!(pinned.len(), 200, "pre-mutation snapshot survives");
        assert_eq!(ds.list().len(), 199, "re-reading sees the new snapshot");
    }
}
