//! The engine proper: worker pool, dispatch loop, lifecycle.

use crate::fault::FaultPlane;
use crate::job::{
    ErasedOutput, JobCell, JobError, JobHandle, JobOptions, JobReport, JobSpec, QueuedJob, Request,
    Responder,
};
use crate::planner::{Planner, ShardDecision};
use crate::pool::ScratchPool;
use crate::queue::{JobQueue, SubmitError};
use crate::sched::SchedSnapshot;
use crate::stats::{Counters, EngineStats};
use crate::telemetry::{self, Phase, Span, Telemetry};
use listrank::HostRunner;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine sizing and policy.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads draining the queue (job-level parallelism).
    pub workers: usize,
    /// Queue capacity; blocking `submit` applies backpressure here.
    pub queue_capacity: usize,
    /// Thread budget *inside* one job (data-parallel phases). The
    /// planner predicts costs for this parallelism.
    pub inner_threads: usize,
    /// Jobs of at most this many vertices are batched together.
    pub small_cutoff: usize,
    /// Maximum jobs per small-job batch.
    pub batch_max: usize,
    /// Reuse scratch buffers across jobs (`false` = allocate fresh per
    /// batch; exists so benchmarks can measure the pool's effect).
    pub pool_scratch: bool,
    /// Per-worker vertex budget for `JobSpec::RankSharded`: lists of at
    /// most this many vertices run monolithically, larger ones split
    /// into shards of at most this size (≈ the vertex count whose
    /// working set a worker can keep cache-resident).
    pub shard_budget: usize,
    /// Interleaved traversal lanes for the multi-chain walks (`None` =
    /// the planner tunes the count per size bucket with its EWMA probe
    /// machinery; `Some(k)` pins it — `rankd --lanes`).
    pub lanes: Option<usize>,
    /// Record latency histograms, request spans, and slow-request log
    /// lines (`rankd --no-telemetry` clears it; exists so the <3%
    /// recording overhead can be measured against a true baseline).
    pub telemetry: bool,
    /// Slow-request log threshold in milliseconds (total phase time).
    /// `None` = the `RANKD_SLOW_MS` environment variable, defaulting to
    /// [`crate::telemetry::DEFAULT_SLOW_MS`].
    pub slow_request_ms: Option<u64>,
    /// Fault-injection plane for the worker-side injection points
    /// (`exec_panic`, `worker_panic`). Disabled by default — one branch
    /// per decision, no other cost. The server shares its plane here so
    /// one `--fault` spec drives every layer.
    pub fault: Arc<FaultPlane>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let workers = (avail / 2).clamp(2, 8).min(avail.max(1));
        EngineConfig {
            workers,
            queue_capacity: 1024,
            inner_threads: (avail / workers).max(1),
            small_cutoff: 4096,
            batch_max: 64,
            pool_scratch: true,
            shard_budget: 1 << 21,
            lanes: None,
            telemetry: true,
            slow_request_ms: None,
            fault: Arc::new(FaultPlane::disabled()),
        }
    }
}

impl EngineConfig {
    /// Override the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Override the per-job thread budget.
    pub fn with_inner_threads(mut self, t: usize) -> Self {
        self.inner_threads = t.max(1);
        self
    }

    /// Override the small-job batching parameters.
    pub fn with_batching(mut self, cutoff: usize, max: usize) -> Self {
        self.small_cutoff = cutoff;
        self.batch_max = max.max(1);
        self
    }

    /// Enable or disable scratch-buffer pooling.
    pub fn with_pooling(mut self, pool: bool) -> Self {
        self.pool_scratch = pool;
        self
    }

    /// Override the per-worker sharding budget.
    pub fn with_shard_budget(mut self, budget: usize) -> Self {
        self.shard_budget = budget.max(1);
        self
    }

    /// Pin the interleaved-lane count (`None` restores per-bucket
    /// tuning).
    pub fn with_lanes(mut self, lanes: Option<usize>) -> Self {
        self.lanes = lanes.map(|k| k.max(1));
        self
    }

    /// Enable or disable telemetry recording (histograms, spans,
    /// slow-request lines).
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Override the slow-request log threshold in milliseconds.
    pub fn with_slow_request_ms(mut self, ms: u64) -> Self {
        self.slow_request_ms = Some(ms);
        self
    }

    /// Install a fault-injection plane (shared with the server so one
    /// spec drives socket, store, and worker injection points).
    pub fn with_fault(mut self, fault: Arc<FaultPlane>) -> Self {
        self.fault = fault;
        self
    }
}

struct Shared {
    cfg: EngineConfig,
    queue: JobQueue,
    planner: Planner,
    pool: ScratchPool,
    counters: Counters,
    telemetry: Telemetry,
    started: Instant,
}

/// The `rankd` batch execution engine: submit many ranking/scan jobs,
/// workers drain them with adaptive per-job algorithm selection and
/// pooled scratch memory.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Start an engine with the given configuration. Zero values for
    /// the sizing knobs are normalized up to 1 (an engine with no
    /// workers or no queue could never complete a job).
    pub fn new(mut cfg: EngineConfig) -> Self {
        cfg.workers = cfg.workers.max(1);
        cfg.inner_threads = cfg.inner_threads.max(1);
        cfg.queue_capacity = cfg.queue_capacity.max(1);
        cfg.batch_max = cfg.batch_max.max(1);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity),
            planner: Planner::new(cfg.inner_threads).with_lanes_override(cfg.lanes),
            pool: ScratchPool::new(cfg.workers),
            counters: Counters::new(),
            telemetry: Telemetry::new(cfg.telemetry, cfg.slow_request_ms),
            started: Instant::now(),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rankd-worker-{i}"))
                    // Respawn wrapper: per-job panics are isolated
                    // inside worker_loop, but a panic *outside* job
                    // execution (poisoned scratch, injected
                    // worker_panic) would otherwise silently kill this
                    // worker and shrink the pool until the daemon
                    // starves. Catch it, count it, re-enter the loop on
                    // the same thread. worker_loop never holds an
                    // uncompleted job across a panic point, so no
                    // waiter is stranded by the unwind.
                    .spawn(move || loop {
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            worker_loop(&shared)
                        }));
                        match run {
                            Ok(()) => break,
                            Err(_) => {
                                shared.counters.workers_respawned.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawn engine worker")
            })
            .collect();
        Engine { shared, workers, next_id: AtomicU64::new(0) }
    }

    /// Start with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// Submit a typed request, blocking while the queue is full
    /// (backpressure). The returned handle's `wait()` resolves directly
    /// to the request's concrete output type.
    pub fn submit<R: Send + 'static>(&self, req: Request<R>) -> Result<JobHandle<R>, SubmitError> {
        self.submit_with(req, JobOptions::default())
    }

    /// Submit with explicit options, blocking while the queue is full.
    pub fn submit_with<R: Send + 'static>(
        &self,
        req: Request<R>,
        opts: JobOptions,
    ) -> Result<JobHandle<R>, SubmitError> {
        req.spec.validate()?;
        let (job, handle) = self.make_job(req, opts);
        self.shared.queue.push(job)?;
        self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Submit without blocking; fails with [`SubmitError::Full`] when
    /// the queue is at capacity.
    pub fn try_submit<R: Send + 'static>(
        &self,
        req: Request<R>,
    ) -> Result<JobHandle<R>, SubmitError> {
        self.try_submit_with(req, JobOptions::default())
    }

    /// Non-blocking submit with explicit options.
    pub fn try_submit_with<R: Send + 'static>(
        &self,
        req: Request<R>,
        opts: JobOptions,
    ) -> Result<JobHandle<R>, SubmitError> {
        req.spec.validate()?;
        let (job, handle) = self.make_job(req, opts);
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(handle)
            }
            Err((e, _job)) => {
                if e == SubmitError::Full {
                    self.shared.counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Submit with explicit options and a one-shot completion callback
    /// instead of a waitable handle, blocking while the queue is full.
    /// The callback runs on the worker thread that settles the job —
    /// it should hand off promptly (the event-driven server encodes
    /// the reply and wakes its reactor). Returns the job id.
    pub fn submit_callback<R: Send + 'static>(
        &self,
        req: Request<R>,
        opts: JobOptions,
        on_done: impl FnOnce(Result<JobReport<R>, JobError>) + Send + 'static,
    ) -> Result<u64, SubmitError> {
        req.spec.validate()?;
        let job = self.make_callback_job(req, opts, on_done);
        let id = job.id;
        self.shared.queue.push(job)?;
        self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Non-blocking [`Engine::submit_callback`]. On any error the
    /// callback is dropped *unfired* — the caller still owns the
    /// request context and can retry with a fresh closure (the
    /// reactor's parked-submit path). [`SubmitError::Full`] here is
    /// not counted as a client-visible rejection, precisely because
    /// the caller is expected to retry rather than fail the request.
    pub fn try_submit_callback<R: Send + 'static>(
        &self,
        req: Request<R>,
        opts: JobOptions,
        on_done: impl FnOnce(Result<JobReport<R>, JobError>) + Send + 'static,
    ) -> Result<u64, SubmitError> {
        req.spec.validate()?;
        let job = self.make_callback_job(req, opts, on_done);
        let id = job.id;
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(id)
            }
            Err((e, _job)) => Err(e),
        }
    }

    fn assign_trace_id(opts: &mut JobOptions) -> u64 {
        // Trace ids are assigned at the earliest observation point:
        // the server sets one at frame decode; in-process requests get
        // theirs here, at submit.
        match opts.trace_id {
            Some(t) => t,
            None => {
                let t = telemetry::next_trace_id();
                opts.trace_id = Some(t);
                t
            }
        }
    }

    fn make_job<R>(&self, req: Request<R>, mut opts: JobOptions) -> (QueuedJob, JobHandle<R>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let trace_id = Self::assign_trace_id(&mut opts);
        let cell = JobCell::new();
        let handle = JobHandle { id, trace_id, cell: Arc::clone(&cell), _out: PhantomData };
        let job = QueuedJob {
            id,
            spec: req.spec,
            opts,
            responder: Responder::Cell(cell),
            enqueued: Instant::now(),
            seq: 0,
        };
        (job, handle)
    }

    fn make_callback_job<R: Send + 'static>(
        &self,
        req: Request<R>,
        mut opts: JobOptions,
        on_done: impl FnOnce(Result<JobReport<R>, JobError>) + Send + 'static,
    ) -> QueuedJob {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Self::assign_trace_id(&mut opts);
        let responder = Responder::Callback(Some(Box::new(
            move |res: Result<JobReport<ErasedOutput>, JobError>| {
                on_done(res.map(JobReport::downcast::<R>))
            },
        )));
        QueuedJob { id, spec: req.spec, opts, responder, enqueued: Instant::now(), seq: 0 }
    }

    /// The engine's telemetry registry (histograms, span ring) — the
    /// socket server records its decode/reply-write phases here so the
    /// whole request pipeline lands in one set of histograms.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// The engine's adaptive planner — shared with the mutation plane
    /// ([`crate::dynamic`]) so maintenance decisions draw on the same
    /// per-bucket history as query dispatch.
    pub(crate) fn planner(&self) -> &Planner {
        &self.shared.planner
    }

    /// Current queue depth (cheap — one lock, no snapshot gathering;
    /// the server's load-shed watermark check polls this per request).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Point-in-time scheduler counters (per-class queued / dispatched
    /// / finished, aging-valve fires) — cheaper than a full
    /// [`Engine::stats`] gather; the server's STATS_V2 scheduler-gauge
    /// block reads this per request.
    pub fn sched_snapshot(&self) -> SchedSnapshot {
        self.shared.queue.sched_snapshot()
    }

    /// A point-in-time metrics snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats::gather(
            self.shared.started,
            &self.shared.counters,
            &self.shared.planner,
            &self.shared.telemetry,
            self.shared.pool.stats(),
            self.shared.queue.depth(),
            self.shared.queue.peak_depth(),
            self.shared.queue.sched_snapshot(),
        )
    }

    /// Stop accepting work, drain the queue, join the workers, and
    /// return the final stats.
    pub fn shutdown(mut self) -> EngineStats {
        self.shared.queue.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Outcome of one job execution (either path), fed into the report and
/// the counters.
struct Executed {
    output: ErasedOutput,
    algorithm: listrank::Algorithm,
    shards: usize,
    stitch_ns: u64,
}

fn worker_loop(shared: &Shared) {
    // Each worker owns a thread budget for the data-parallel phases of
    // the jobs it executes; the shim's `install` scopes it per batch.
    let inner_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(shared.cfg.inner_threads)
        .build()
        .expect("engine inner pool");

    while let Some(job) = shared.queue.pop() {
        if job.responder.is_settled() {
            // Cancelled while queued.
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            shared.queue.note_finished(job.opts.priority);
            continue;
        }
        let n = job.spec.len();
        let class = job.opts.priority;
        let mut batch = vec![job];
        // Small jobs: greedily pull queued same-class siblings so one
        // dequeue, one scratch acquisition and one pool install serve
        // many jobs.
        if n <= shared.cfg.small_cutoff && shared.cfg.batch_max > 1 {
            batch.extend(shared.queue.pop_small_batch(
                shared.cfg.small_cutoff,
                shared.cfg.batch_max - 1,
                class,
            ));
        }
        if batch.len() > 1 {
            shared.counters.batches.fetch_add(1, Ordering::Relaxed);
            shared.counters.batched_jobs.fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        let batched = batch.len() > 1;

        let mut scratch = if shared.cfg.pool_scratch {
            shared.pool.acquire()
        } else {
            listrank::host::RankScratch::new()
        };
        inner_pool.install(|| {
            for mut job in batch {
                if job.responder.is_settled() {
                    shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    shared.queue.note_finished(job.opts.priority);
                    continue;
                }
                // Deadline enforcement happens here, at dequeue and
                // before any execution or queue accounting: an expired
                // job's wait never pollutes the queued_ns counters or
                // the QueueWait histogram the planner reads.
                if let Some(deadline_ms) = job.opts.deadline_ms {
                    if crate::fault::deadline_expired(job.enqueued.elapsed(), deadline_ms) {
                        shared.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
                        job.responder.settle(Err(JobError::DeadlineExceeded));
                        shared.queue.note_finished(job.opts.priority);
                        continue;
                    }
                }
                let n = job.spec.len();
                let op = job.spec.op_kind();
                let queued_ns = job.enqueued.elapsed().as_nanos() as u64;
                // Sharded requests get the budget-aware plan branch;
                // all others (and sharded requests that fit the budget)
                // take the ordinary monolithic dispatch. Both are keyed
                // on the op kind and value width.
                let t_plan = Instant::now();
                let decision = if job.spec.sharded() {
                    shared.planner.choose_sharded(
                        n,
                        shared.cfg.shard_budget,
                        op,
                        job.spec.elem_bytes(),
                        job.opts.algorithm,
                    )
                } else {
                    ShardDecision::Monolithic(shared.planner.choose(
                        n,
                        op,
                        job.spec.elem_bytes(),
                        job.opts.algorithm,
                    ))
                };
                let plan_ns = t_plan.elapsed().as_nanos() as u64;
                let t0 = Instant::now();
                // The walks accumulate lane-occupancy telemetry in the
                // scratch; zero it so this job's delta is attributable.
                scratch.telemetry.reset();
                // Isolate panics: an unwinding job must not kill the
                // worker (stranding every later waiter) — it completes
                // its cell with `Failed` instead. The scratch is safe
                // to reuse afterwards: every entry point re-clears it.
                let exec = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if shared.cfg.fault.exec_panic() {
                        panic!("injected exec panic (fault plane)");
                    }
                    match decision {
                        ShardDecision::Monolithic(plan) => {
                            let mut runner = HostRunner::new(plan.algorithm)
                                .with_seed(job.opts.seed)
                                .with_lanes(plan.lanes);
                            runner.m = plan.m;
                            let output: ErasedOutput = match &job.spec {
                                JobSpec::Rank { list, .. } => {
                                    let mut out = Vec::new();
                                    runner.rank_into(list, &mut scratch, &mut out);
                                    Box::new(out)
                                }
                                JobSpec::Scan { list, exec, .. } => {
                                    exec.run(&runner, list, &mut scratch)
                                }
                            };
                            Executed { output, algorithm: plan.algorithm, shards: 0, stitch_ns: 0 }
                        }
                        ShardDecision::Sharded { shard_size, lanes, .. } => {
                            // Resident-dataset fast path: fetch (or
                            // build and cache) the sharded artifact for
                            // this plan instead of rebuilding per job.
                            let prebuilt = job
                                .spec
                                .warm()
                                .map(|c| c.get_or_build(job.spec.list(), shard_size, lanes));
                            let (output, report): (ErasedOutput, _) = match (&job.spec, &prebuilt) {
                                (JobSpec::Rank { .. }, Some(sharded)) => {
                                    let mut out = Vec::new();
                                    let report = listrank::host::rank_sharded_prebuilt_into(
                                        sharded,
                                        job.opts.seed,
                                        &mut scratch,
                                        &mut out,
                                    );
                                    (Box::new(out), report)
                                }
                                (JobSpec::Scan { exec, .. }, Some(sharded)) => {
                                    exec.run_sharded_prebuilt(sharded, job.opts.seed, &mut scratch)
                                }
                                (JobSpec::Rank { list, .. }, None) => {
                                    let mut out = Vec::new();
                                    let report = listrank::host::rank_sharded_into(
                                        list,
                                        shard_size,
                                        lanes,
                                        job.opts.seed,
                                        &mut scratch,
                                        &mut out,
                                    );
                                    (Box::new(out), report)
                                }
                                (JobSpec::Scan { list, exec, .. }, None) => exec.run_sharded(
                                    list,
                                    shard_size,
                                    lanes,
                                    job.opts.seed,
                                    &mut scratch,
                                ),
                            };
                            Executed {
                                output,
                                algorithm: report.stitch_algorithm,
                                shards: report.shards,
                                stitch_ns: report.stitch_ns,
                            }
                        }
                    }
                }));
                let exec_ns = t0.elapsed().as_nanos() as u64;
                let lane_stats = scratch.telemetry.snapshot();
                shared.counters.lane_steps.fetch_add(lane_stats.steps, Ordering::Relaxed);
                shared.counters.lane_slots.fetch_add(lane_stats.slots, Ordering::Relaxed);
                let done = match exec {
                    Ok(done) => done,
                    Err(_) => {
                        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                        shared.counters.panics_recovered.fetch_add(1, Ordering::Relaxed);
                        job.responder.settle(Err(JobError::Failed));
                        shared.queue.note_finished(job.opts.priority);
                        continue;
                    }
                };
                // The measurement is valid regardless of a late cancel
                // — but only monolithic runs feed the per-algorithm
                // history (a sharded run is a composite; folding it
                // into one algorithm's EWMA would poison the bucket).
                if done.shards == 0 {
                    shared.planner.record(n, op, done.algorithm, exec_ns);
                    if let ShardDecision::Monolithic(plan) = decision {
                        if plan.algorithm == listrank::Algorithm::ReidMiller {
                            shared.planner.record_lanes(n, plan.lanes, exec_ns);
                        }
                    }
                }
                let trace_id = job.opts.trace_id.unwrap_or(0);
                let landed = job.responder.settle(Ok(JobReport {
                    id: job.id,
                    trace_id,
                    n,
                    op,
                    algorithm: done.algorithm,
                    shards: done.shards,
                    stitch_ns: done.stitch_ns,
                    batched,
                    queued_ns,
                    plan_ns,
                    exec_ns,
                    output: done.output,
                }));
                shared.queue.note_finished(job.opts.priority);
                if landed {
                    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                    shared.counters.elements.fetch_add(n as u64, Ordering::Relaxed);
                    shared.counters.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
                    shared.counters.queued_ns.fetch_add(queued_ns, Ordering::Relaxed);
                    let per_op = &shared.counters.per_op[op.index()];
                    per_op.completed.fetch_add(1, Ordering::Relaxed);
                    per_op.elements.fetch_add(n as u64, Ordering::Relaxed);
                    per_op.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
                    if done.shards > 0 {
                        shared.counters.sharded_jobs.fetch_add(1, Ordering::Relaxed);
                        shared
                            .counters
                            .shards_ranked
                            .fetch_add(done.shards as u64, Ordering::Relaxed);
                        shared.counters.stitch_ns.fetch_add(done.stitch_ns, Ordering::Relaxed);
                    }
                    if shared.telemetry.enabled() {
                        // Sum-consistency invariant (pinned by tests):
                        // these histograms record exactly the values
                        // the counters above accumulate, so e.g.
                        // phase[Exec].sum() == counters.exec_ns.
                        shared.telemetry.record_phase(Phase::QueueWait, queued_ns);
                        shared.telemetry.record_phase(Phase::Plan, plan_ns);
                        shared.telemetry.record_phase(Phase::Exec, exec_ns);
                        if done.shards > 0 {
                            shared.telemetry.record_phase(Phase::Stitch, done.stitch_ns);
                        }
                        shared.telemetry.record_op(op, exec_ns);
                        let mut phase_ns = [0u64; Phase::ALL.len()];
                        phase_ns[Phase::Decode.index()] = job.opts.decode_ns;
                        phase_ns[Phase::QueueWait.index()] = queued_ns;
                        phase_ns[Phase::Plan.index()] = plan_ns;
                        phase_ns[Phase::Exec.index()] = exec_ns;
                        phase_ns[Phase::Stitch.index()] = done.stitch_ns;
                        shared.telemetry.record_span(Span {
                            trace_id,
                            op,
                            n,
                            algorithm: done.algorithm,
                            shards: done.shards,
                            phase_ns,
                        });
                    }
                } else {
                    // Cancelled while executing: result discarded.
                    shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        if shared.cfg.pool_scratch {
            shared.pool.release(scratch);
        }
        // The worker-panic injection point sits *between* batches: every
        // popped job has already settled, so the unwind (caught by the
        // respawn wrapper around this loop) strands no waiter.
        if shared.cfg.fault.worker_panic() {
            panic!("injected worker panic (fault plane)");
        }
    }
}
