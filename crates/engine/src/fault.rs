//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlane`] is a seeded source of *injected* failures that the
//! serving stack consults at four points: socket reads/writes (I/O
//! errors, artificial delays, short writes), worker job execution
//! (panics), and store admission (transient rejections). It exists so
//! the chaos harness (`examples/chaos_soak.rs`) and the CI chaos smoke
//! job can drive the daemon through real failure paths — panic
//! isolation, client retry, typed overload — on demand and
//! *reproducibly*: every decision is a pure function of the seed and a
//! global decision counter, so a given spec replays the same fault
//! pattern run after run (modulo thread interleaving of the counter).
//!
//! The plane is **off by default and zero-cost when disabled**: every
//! decision method starts with one branch on a plain `bool` and touches
//! no atomics when the plane is disabled — the same pattern the
//! telemetry plane uses for `--no-telemetry`.
//!
//! Specs are parsed from the `--fault` CLI flag / `RANKD_FAULT`
//! environment variable:
//!
//! ```text
//! io_err=0.01,delay=5ms@0.05,short_write=0.02,exec_panic=0.001
//! ```
//!
//! Each `key=rate` sets a per-decision probability in `[0, 1]`;
//! `delay` takes `DURATION@rate`. The keyword `default` selects the
//! rates above. This module also carries the pure deadline arithmetic
//! helper ([`deadline_expired`]) shared by the worker loop and the
//! proptest suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Parsed fault-injection rates (probabilities in `[0, 1]`), plus the
/// deterministic seed. Construct via [`FaultConfig::parse`] or
/// [`FaultConfig::default_rates`]; `FaultConfig::default()` is
/// all-zero (nothing injected).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that a socket read or write fails with an injected
    /// I/O error (the connection is dropped, as a real peer failure
    /// would).
    pub io_err: f64,
    /// Injected latency before a socket operation: `(duration, rate)`.
    pub delay: Duration,
    /// Probability of injecting [`FaultConfig::delay`].
    pub delay_rate: f64,
    /// Probability that a reply write is cut short mid-frame (the
    /// connection is closed after a partial write, so the client sees
    /// a truncated frame / EOF).
    pub short_write: f64,
    /// Probability that a job's execution panics inside the worker
    /// (exercises `catch_unwind` isolation and the typed
    /// `internal_error` reply).
    pub exec_panic: f64,
    /// Probability that a worker panics *outside* per-job execution,
    /// after a job completes (exercises the worker respawn wrapper).
    pub worker_panic: f64,
    /// Probability that a store admission (PUT) is rejected with a
    /// transient typed `overloaded` error.
    pub store_err: f64,
    /// Seed for the deterministic decision stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            io_err: 0.0,
            delay: Duration::ZERO,
            delay_rate: 0.0,
            short_write: 0.0,
            exec_panic: 0.0,
            worker_panic: 0.0,
            store_err: 0.0,
            seed: 0xC90_FA17,
        }
    }
}

impl FaultConfig {
    /// The documented default chaos rates — what `--fault default`
    /// selects: `io_err=0.01,delay=5ms@0.05,short_write=0.02,`
    /// `exec_panic=0.001,store_err=0.01`.
    pub fn default_rates() -> Self {
        FaultConfig {
            io_err: 0.01,
            delay: Duration::from_millis(5),
            delay_rate: 0.05,
            short_write: 0.02,
            exec_panic: 0.001,
            worker_panic: 0.0,
            store_err: 0.01,
            ..FaultConfig::default()
        }
    }

    /// Parse a `--fault` / `RANKD_FAULT` spec string.
    ///
    /// Grammar: comma-separated `key=value` entries. Keys: `io_err`,
    /// `short_write`, `exec_panic`, `worker_panic`, `store_err` (all
    /// `rate` in `[0,1]`), `delay` (`DURATION@rate`, duration with
    /// `s`/`ms`/`us` suffix, bare numbers are ms), `seed` (u64). The
    /// bare keyword `default` selects [`FaultConfig::default_rates`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "default" || spec == "defaults" {
            return Ok(Self::default_rates());
        }
        let mut cfg = FaultConfig::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry {entry:?}: want key=value"))?;
            match key.trim() {
                "io_err" => cfg.io_err = parse_rate(value)?,
                "short_write" => cfg.short_write = parse_rate(value)?,
                "exec_panic" => cfg.exec_panic = parse_rate(value)?,
                "worker_panic" => cfg.worker_panic = parse_rate(value)?,
                "store_err" => cfg.store_err = parse_rate(value)?,
                "delay" => {
                    let (dur, rate) = value
                        .split_once('@')
                        .ok_or_else(|| format!("fault delay {value:?}: want DURATION@rate"))?;
                    cfg.delay = parse_duration(dur)?;
                    cfg.delay_rate = parse_rate(rate)?;
                }
                "seed" => {
                    cfg.seed =
                        value.trim().parse().map_err(|e| format!("fault seed {value:?}: {e}"))?;
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// Whether any injection is actually configured.
    pub fn any_enabled(&self) -> bool {
        self.io_err > 0.0
            || self.delay_rate > 0.0
            || self.short_write > 0.0
            || self.exec_panic > 0.0
            || self.worker_panic > 0.0
            || self.store_err > 0.0
    }
}

fn parse_rate(s: &str) -> Result<f64, String> {
    let rate: f64 = s.trim().parse().map_err(|e| format!("fault rate {s:?}: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("fault rate {s:?}: must be in [0, 1]"));
    }
    Ok(rate)
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (digits, scale_ns) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1_000_000u64)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1_000u64)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1_000_000_000u64)
    } else {
        (s, 1_000_000u64) // bare numbers are milliseconds
    };
    let n: u64 = digits.trim().parse().map_err(|e| format!("fault duration {s:?}: {e}"))?;
    Ok(Duration::from_nanos(n.saturating_mul(scale_ns)))
}

/// SplitMix64: the decision stream's mixing function. Full-period,
/// stateless, good enough avalanche that per-rate thresholds behave
/// like independent coin flips. Also the client retry policy's
/// deterministic jitter source.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scale a probability to a 53-bit threshold (f64's exact integer
/// range) for comparison against the top 53 bits of a mixed draw.
fn threshold(rate: f64) -> u64 {
    (rate.clamp(0.0, 1.0) * (1u64 << 53) as f64) as u64
}

/// Counts of injected faults, by kind. Snapshot of a live
/// [`FaultPlane`]; feeds the STATS_V2 fault/resilience gauge block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Socket reads/writes failed by injection.
    pub io_errors: u64,
    /// Artificial socket delays injected.
    pub delays: u64,
    /// Reply writes cut short by injection.
    pub short_writes: u64,
    /// Worker executions panicked by injection.
    pub exec_panics: u64,
    /// Store admissions rejected by injection.
    pub store_errors: u64,
}

impl FaultSnapshot {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.io_errors + self.delays + self.short_writes + self.exec_panics + self.store_errors
    }
}

/// The live fault-injection plane: seeded deterministic decisions plus
/// injected-fault counters. One plane is shared by the server (socket
/// and store injection points) and the engine (worker injection
/// points); [`FaultPlane::disabled`] is the default everywhere and
/// costs one branch per decision.
pub struct FaultPlane {
    enabled: bool,
    seed: u64,
    io_err: u64,
    delay_rate: u64,
    delay: Duration,
    short_write: u64,
    exec_panic: u64,
    worker_panic: u64,
    store_err: u64,
    /// Global decision counter: each decision consumes one draw.
    draws: AtomicU64,
    io_errors: AtomicU64,
    delays: AtomicU64,
    short_writes: AtomicU64,
    exec_panics: AtomicU64,
    store_errors: AtomicU64,
}

impl std::fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.enabled {
            return f.write_str("FaultPlane(disabled)");
        }
        write!(f, "FaultPlane(seed = {:#x}, injected = {})", self.seed, self.snapshot().total())
    }
}

impl Default for FaultPlane {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultPlane {
    /// A plane that never injects anything (the default). Decisions
    /// are a single branch; no atomics are touched.
    pub fn disabled() -> Self {
        Self::build(FaultConfig::default(), false)
    }

    /// A plane driven by `config`. If the config has every rate at
    /// zero the plane is constructed disabled.
    pub fn new(config: FaultConfig) -> Self {
        let enabled = config.any_enabled();
        Self::build(config, enabled)
    }

    fn build(config: FaultConfig, enabled: bool) -> Self {
        FaultPlane {
            enabled,
            seed: config.seed,
            io_err: threshold(config.io_err),
            delay_rate: threshold(config.delay_rate),
            delay: config.delay,
            short_write: threshold(config.short_write),
            exec_panic: threshold(config.exec_panic),
            worker_panic: threshold(config.worker_panic),
            store_err: threshold(config.store_err),
            draws: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
            exec_panics: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
        }
    }

    /// Whether any injection is configured. When `false`, every
    /// decision method returns its "no fault" answer after one branch.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// One deterministic draw against a 53-bit threshold. `salt`
    /// separates the decision kinds so each kind sees an independent
    /// stream for the same seed.
    fn decide(&self, salt: u64, cutoff: u64) -> bool {
        if cutoff == 0 {
            return false;
        }
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        (splitmix64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n) >> 11) < cutoff
    }

    /// Should this socket read/write fail with an injected I/O error?
    pub fn io_error(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let hit = self.decide(1, self.io_err);
        if hit {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// The artificial delay to sleep before this socket operation, if
    /// one was drawn.
    pub fn delay(&self) -> Option<Duration> {
        if !self.enabled {
            return None;
        }
        if self.decide(2, self.delay_rate) {
            self.delays.fetch_add(1, Ordering::Relaxed);
            Some(self.delay)
        } else {
            None
        }
    }

    /// Should this reply write be cut short mid-frame?
    pub fn short_write(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let hit = self.decide(3, self.short_write);
        if hit {
            self.short_writes.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should this job's execution panic inside the worker?
    pub fn exec_panic(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let hit = self.decide(4, self.exec_panic);
        if hit {
            self.exec_panics.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should the worker panic outside per-job execution (after the
    /// current job completed)? Exercises the respawn wrapper; not
    /// counted as an exec panic because no job result is lost.
    pub fn worker_panic(&self) -> bool {
        if !self.enabled {
            return false;
        }
        self.decide(5, self.worker_panic)
    }

    /// Should this store admission be rejected with a transient typed
    /// error?
    pub fn store_error(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let hit = self.decide(6, self.store_err);
        if hit {
            self.store_errors.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Snapshot the injected-fault counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            io_errors: self.io_errors.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            exec_panics: self.exec_panics.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
        }
    }
}

/// Whether a job that has waited `waited` in the queue has blown a
/// `deadline_ms` millisecond deadline. Pure and overflow-free: the
/// comparison is done in `u128` milliseconds, so `deadline_ms ==
/// u64::MAX` (and any elapsed time) cannot overflow — a deadline of
/// `u64::MAX` ms (~584 million years) never expires in practice.
pub fn deadline_expired(waited: Duration, deadline_ms: u64) -> bool {
    waited.as_millis() >= u128::from(deadline_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_injects_nothing() {
        let plane = FaultPlane::disabled();
        for _ in 0..10_000 {
            assert!(!plane.io_error());
            assert!(plane.delay().is_none());
            assert!(!plane.short_write());
            assert!(!plane.exec_panic());
            assert!(!plane.store_error());
        }
        assert_eq!(plane.snapshot(), FaultSnapshot::default());
    }

    #[test]
    fn rates_are_roughly_honored_and_counted() {
        let cfg = FaultConfig { io_err: 0.25, seed: 7, ..FaultConfig::default() };
        let plane = FaultPlane::new(cfg);
        let hits = (0..40_000).filter(|_| plane.io_error()).count();
        // 10k expected; a 25% band around it is far beyond 6 sigma.
        assert!((7_500..=12_500).contains(&hits), "got {hits} hits at rate 0.25");
        assert_eq!(plane.snapshot().io_errors, hits as u64);
    }

    #[test]
    fn same_seed_same_decision_stream() {
        let cfg = FaultConfig::parse("io_err=0.1,seed=42").expect("parse");
        let a = FaultPlane::new(cfg);
        let b = FaultPlane::new(cfg);
        let stream_a: Vec<bool> = (0..512).map(|_| a.io_error()).collect();
        let stream_b: Vec<bool> = (0..512).map(|_| b.io_error()).collect();
        assert_eq!(stream_a, stream_b);
        let c = FaultPlane::new(FaultConfig::parse("io_err=0.1,seed=43").expect("parse"));
        let stream_c: Vec<bool> = (0..512).map(|_| c.io_error()).collect();
        assert_ne!(stream_a, stream_c, "a different seed draws a different stream");
    }

    #[test]
    fn spec_parsing_round_trips_the_documented_example() {
        let cfg =
            FaultConfig::parse("io_err=0.01,delay=5ms@0.05,short_write=0.02,exec_panic=0.001")
                .expect("documented spec parses");
        assert_eq!(cfg.io_err, 0.01);
        assert_eq!(cfg.delay, Duration::from_millis(5));
        assert_eq!(cfg.delay_rate, 0.05);
        assert_eq!(cfg.short_write, 0.02);
        assert_eq!(cfg.exec_panic, 0.001);
        assert_eq!(FaultConfig::parse("default").expect("keyword"), FaultConfig::default_rates());
        assert!(FaultConfig::parse("io_err=2.0").is_err(), "rates above 1 rejected");
        assert!(FaultConfig::parse("bogus=0.1").is_err(), "unknown keys rejected");
        assert!(FaultConfig::parse("delay=5ms").is_err(), "delay needs @rate");
        let us = FaultConfig::parse("delay=250us@1.0").expect("us suffix");
        assert_eq!(us.delay, Duration::from_micros(250));
        let secs = FaultConfig::parse("delay=2s@0.5").expect("s suffix");
        assert_eq!(secs.delay, Duration::from_secs(2));
    }

    #[test]
    fn deadline_arithmetic_is_saturating_at_the_extremes() {
        assert!(!deadline_expired(Duration::ZERO, 1));
        assert!(deadline_expired(Duration::ZERO, 0), "a zero deadline is already expired");
        assert!(deadline_expired(Duration::from_millis(5), 5));
        assert!(!deadline_expired(Duration::from_millis(4), 5));
        // No overflow at the extreme: u64::MAX ms compared in u128.
        assert!(!deadline_expired(Duration::from_secs(u64::MAX / 1_000_000), u64::MAX));
        assert!(deadline_expired(Duration::MAX, u64::MAX));
    }
}
