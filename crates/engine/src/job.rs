//! Typed requests, type-erased jobs, and the submit/await/cancel handle.
//!
//! The public surface is a **typed request builder** ([`Request`]) and
//! a **typed handle** ([`JobHandle<R>`]): callers say
//! `engine.submit(Request::scan(list, values, MaxOp))` and `wait()`
//! hands back the concrete `Vec<i64>` — no closed output enum to
//! match, no `Option` to unwrap. Internally the generic
//! [`listkit::ScanOp`] is erased behind the `ScanExec` object so the
//! queue, planner and workers stay monomorphic; the handle re-types the
//! erased output on the way out (guaranteed to succeed because only the
//! typed builders can construct a request).

use crate::op::{classify_op, OpKind};
use crate::queue::SubmitError;
use crate::sched::Priority;
use crate::store::ArtifactCache;
use listkit::segmented::{self, SegOp, Segmented};
use listkit::sharded::ShardedList;
use listkit::{LinkedList, ScanOp};
use listrank::host::{RankScratch, ShardedReport};
use listrank::{Algorithm, HostRunner};
use std::any::Any;
use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex};

/// A type-erased job output, re-typed by the [`JobHandle`] that awaits
/// it.
pub(crate) type ErasedOutput = Box<dyn Any + Send>;

/// The executable body of a scan job with its operator and value types
/// erased: the worker hands it a configured runner (or the sharded
/// plan) and gets the erased output back.
pub(crate) trait ScanExec: Send + Sync {
    /// Stats/dispatch classification of the operator.
    fn op_kind(&self) -> OpKind;
    /// Bytes per scanned value (the op-aware cost model's width input).
    fn elem_bytes(&self) -> usize;
    /// Submit-time cross-field validation against the job's list.
    fn check(&self, list: &LinkedList) -> bool;
    /// Monolithic execution through the planner-configured runner.
    fn run(
        &self,
        runner: &HostRunner,
        list: &LinkedList,
        scratch: &mut RankScratch,
    ) -> ErasedOutput;
    /// Shard-parallel execution (generic stitched scan) with `lanes`
    /// interleaved cursors per shard-local walk.
    fn run_sharded(
        &self,
        list: &LinkedList,
        shard_size: usize,
        lanes: usize,
        seed: u64,
        scratch: &mut RankScratch,
    ) -> (ErasedOutput, ShardedReport);
    /// Shard-parallel execution against an already-built sharded
    /// representation (the resident-dataset artifact fast path).
    fn run_sharded_prebuilt(
        &self,
        sharded: &ShardedList,
        seed: u64,
        scratch: &mut RankScratch,
    ) -> (ErasedOutput, ShardedReport);
}

/// A plain generic scan job: values + operator.
struct ScanJob<T, Op> {
    values: Arc<Vec<T>>,
    op: Op,
    kind: OpKind,
}

impl<T, Op> ScanExec for ScanJob<T, Op>
where
    T: Copy + Send + Sync + 'static,
    Op: ScanOp<T> + Send + Sync + 'static,
{
    fn op_kind(&self) -> OpKind {
        self.kind
    }

    fn elem_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }

    fn check(&self, list: &LinkedList) -> bool {
        self.values.len() == list.len()
    }

    fn run(
        &self,
        runner: &HostRunner,
        list: &LinkedList,
        scratch: &mut RankScratch,
    ) -> ErasedOutput {
        let mut out = Vec::new();
        runner.scan_into(list, &self.values, &self.op, scratch, &mut out);
        Box::new(out)
    }

    fn run_sharded(
        &self,
        list: &LinkedList,
        shard_size: usize,
        lanes: usize,
        seed: u64,
        scratch: &mut RankScratch,
    ) -> (ErasedOutput, ShardedReport) {
        let mut out = Vec::new();
        let report = listrank::host::scan_sharded_into(
            list,
            &self.values,
            &self.op,
            shard_size,
            lanes,
            seed,
            scratch,
            &mut out,
        );
        (Box::new(out), report)
    }

    fn run_sharded_prebuilt(
        &self,
        sharded: &ShardedList,
        seed: u64,
        scratch: &mut RankScratch,
    ) -> (ErasedOutput, ShardedReport) {
        let mut out = Vec::new();
        let report = listrank::host::scan_sharded_prebuilt_into(
            sharded,
            &self.values,
            &self.op,
            seed,
            scratch,
            &mut out,
        );
        (Box::new(out), report)
    }
}

/// A segmented scan job: values are pre-wrapped with their segment
/// flags (once, at request construction), scanned under the
/// [`SegOp`] transform, and unwrapped back to plain values on the way
/// out — so the caller's output type is `Vec<T>`, not an engine detail.
struct SegScanJob<T, Op> {
    wrapped: Arc<Vec<Segmented<T>>>,
    starts: Arc<Vec<bool>>,
    op: Op,
}

impl<T, Op> ScanExec for SegScanJob<T, Op>
where
    T: Copy + Send + Sync + 'static,
    Op: ScanOp<T> + Clone + Send + Sync + 'static,
{
    fn op_kind(&self) -> OpKind {
        OpKind::Segmented
    }

    fn elem_bytes(&self) -> usize {
        std::mem::size_of::<Segmented<T>>()
    }

    fn check(&self, list: &LinkedList) -> bool {
        self.wrapped.len() == list.len() && self.starts.len() == list.len()
    }

    fn run(
        &self,
        runner: &HostRunner,
        list: &LinkedList,
        scratch: &mut RankScratch,
    ) -> ErasedOutput {
        let seg = SegOp(self.op.clone());
        let mut scanned = Vec::new();
        runner.scan_into(list, &self.wrapped, &seg, scratch, &mut scanned);
        Box::new(segmented::unwrap_exclusive(&scanned, &self.starts, &self.op))
    }

    fn run_sharded(
        &self,
        list: &LinkedList,
        shard_size: usize,
        lanes: usize,
        seed: u64,
        scratch: &mut RankScratch,
    ) -> (ErasedOutput, ShardedReport) {
        let seg = SegOp(self.op.clone());
        let mut scanned = Vec::new();
        let report = listrank::host::scan_sharded_into(
            list,
            &self.wrapped,
            &seg,
            shard_size,
            lanes,
            seed,
            scratch,
            &mut scanned,
        );
        (Box::new(segmented::unwrap_exclusive(&scanned, &self.starts, &self.op)), report)
    }

    fn run_sharded_prebuilt(
        &self,
        sharded: &ShardedList,
        seed: u64,
        scratch: &mut RankScratch,
    ) -> (ErasedOutput, ShardedReport) {
        let seg = SegOp(self.op.clone());
        let mut scanned = Vec::new();
        let report = listrank::host::scan_sharded_prebuilt_into(
            sharded,
            &self.wrapped,
            &seg,
            seed,
            scratch,
            &mut scanned,
        );
        (Box::new(segmented::unwrap_exclusive(&scanned, &self.starts, &self.op)), report)
    }
}

/// What a job computes (internal, type-erased). Constructed only
/// through the typed [`Request`] builders, which is what guarantees the
/// handle's downcast always succeeds.
#[derive(Clone)]
pub(crate) enum JobSpec {
    /// List ranking of `list`.
    Rank {
        /// The list to rank (shared so many jobs can reference one
        /// workload list without copying).
        list: Arc<LinkedList>,
        /// Route through the budget-aware shard-parallel plan branch.
        sharded: bool,
        /// Resident-dataset artifact cache: the sharded arm fetches
        /// (or builds and caches) the `ShardedList` here instead of
        /// rebuilding per job. `None` for inline requests.
        warm: Option<Arc<ArtifactCache>>,
    },
    /// Generic-operator scan along `list`.
    Scan {
        /// The list to scan along.
        list: Arc<LinkedList>,
        /// The erased operator + values + output conversion.
        exec: Arc<dyn ScanExec>,
        /// Route through the budget-aware shard-parallel plan branch.
        sharded: bool,
        /// Resident-dataset artifact cache (see [`JobSpec::Rank`]).
        warm: Option<Arc<ArtifactCache>>,
    },
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JobSpec::{}(n = {}, sharded = {})", self.op_kind(), self.len(), self.sharded())
    }
}

impl JobSpec {
    /// The list this job ranks or scans.
    pub(crate) fn list(&self) -> &Arc<LinkedList> {
        match self {
            JobSpec::Rank { list, .. } | JobSpec::Scan { list, .. } => list,
        }
    }

    /// Number of vertices this job touches (≥ 1: `listkit` lists cannot
    /// be empty, so there is no empty-list branch anywhere downstream).
    pub(crate) fn len(&self) -> usize {
        self.list().len()
    }

    /// Whether this job takes the budget-aware sharded plan branch.
    pub(crate) fn sharded(&self) -> bool {
        match self {
            JobSpec::Rank { sharded, .. } | JobSpec::Scan { sharded, .. } => *sharded,
        }
    }

    /// The resident-dataset artifact cache, if this job runs against a
    /// stored dataset.
    pub(crate) fn warm(&self) -> Option<&Arc<ArtifactCache>> {
        match self {
            JobSpec::Rank { warm, .. } | JobSpec::Scan { warm, .. } => warm.as_ref(),
        }
    }

    /// The op-kind dimension for the planner and stats.
    pub(crate) fn op_kind(&self) -> OpKind {
        match self {
            JobSpec::Rank { .. } => OpKind::Rank,
            JobSpec::Scan { exec, .. } => exec.op_kind(),
        }
    }

    /// Bytes per produced element (the cost model's width input).
    pub(crate) fn elem_bytes(&self) -> usize {
        match self {
            JobSpec::Rank { .. } => std::mem::size_of::<u64>(),
            JobSpec::Scan { exec, .. } => exec.elem_bytes(),
        }
    }

    /// Submit-time validation, shared by every submit path (blocking
    /// and non-blocking) and exhaustive over the variants, so a new
    /// request kind cannot bypass it: a malformed spec is rejected
    /// here, where the caller can handle the error, instead of
    /// panicking in a worker far from the bug. Structural list
    /// invariants are already enforced by `LinkedList` construction;
    /// what remains is the cross-field consistency a spec can get
    /// wrong.
    pub(crate) fn validate(&self) -> Result<(), SubmitError> {
        match self {
            JobSpec::Rank { .. } => Ok(()),
            JobSpec::Scan { list, exec, .. } => {
                if exec.check(list) {
                    Ok(())
                } else {
                    Err(SubmitError::Invalid)
                }
            }
        }
    }
}

/// A typed engine request: what to compute, carrying its result type
/// `R` so [`crate::Engine::submit`] can hand back a [`JobHandle<R>`]
/// whose `wait()` returns the concrete payload directly.
///
/// Construct through the builders ([`Request::rank`],
/// [`Request::scan`], [`Request::segmented_scan`],
/// [`Request::rank_sharded`], [`Request::scan_sharded`]); requests are
/// cheap to clone (all payload is shared via `Arc`), so one request can
/// be submitted many times.
pub struct Request<R> {
    pub(crate) spec: JobSpec,
    _out: PhantomData<fn() -> R>,
}

impl<R> Clone for Request<R> {
    fn clone(&self) -> Self {
        Request { spec: self.spec.clone(), _out: PhantomData }
    }
}

impl<R> std::fmt::Debug for Request<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Request({:?})", self.spec)
    }
}

impl<R> Request<R> {
    fn new(spec: JobSpec) -> Self {
        Request { spec, _out: PhantomData }
    }

    /// Number of vertices the request touches.
    pub fn len(&self) -> usize {
        self.spec.len()
    }

    /// Never empty: `listkit` lists have ≥ 1 vertex by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The op-kind classification this request will be dispatched and
    /// accounted under.
    pub fn op_kind(&self) -> OpKind {
        self.spec.op_kind()
    }

    /// Attach a resident dataset's [`ArtifactCache`]: if the planner
    /// routes the job to the sharded arm, the worker fetches the built
    /// `ShardedList` from the cache (building and caching it on first
    /// use) instead of rebuilding it per job. Used by the server for
    /// handle-routed queries ([`crate::DatasetRef::artifacts`]).
    pub fn with_artifacts(mut self, cache: Arc<ArtifactCache>) -> Self {
        match &mut self.spec {
            JobSpec::Rank { warm, .. } | JobSpec::Scan { warm, .. } => *warm = Some(cache),
        }
        self
    }
}

impl Request<Vec<u64>> {
    /// List ranking of `list`; the handle resolves to the rank vector.
    pub fn rank(list: Arc<LinkedList>) -> Self {
        Self::new(JobSpec::Rank { list, sharded: false, warm: None })
    }

    /// List ranking through the budget-aware shard-parallel path: lists
    /// above `EngineConfig::shard_budget` split into cache-resident
    /// shards, smaller ones run monolithically exactly like
    /// [`Request::rank`].
    pub fn rank_sharded(list: Arc<LinkedList>) -> Self {
        Self::new(JobSpec::Rank { list, sharded: true, warm: None })
    }
}

impl<T: Copy + Send + Sync + 'static> Request<Vec<T>> {
    fn scan_inner<Op>(list: Arc<LinkedList>, values: Arc<Vec<T>>, op: Op, sharded: bool) -> Self
    where
        Op: ScanOp<T> + Send + Sync + 'static,
    {
        let kind = classify_op::<Op>();
        Self::new(JobSpec::Scan {
            list,
            exec: Arc::new(ScanJob { values, op, kind }),
            sharded,
            warm: None,
        })
    }

    fn segmented_inner<Op>(
        list: Arc<LinkedList>,
        values: Arc<Vec<T>>,
        starts: Arc<Vec<bool>>,
        op: Op,
        sharded: bool,
    ) -> Self
    where
        Op: ScanOp<T> + Clone + Send + Sync + 'static,
    {
        // A length mismatch cannot be wrapped; an empty wrapped array
        // can never match a (≥ 1 vertex) list, so `validate` rejects it.
        let wrapped = if values.len() == starts.len() {
            Arc::new(segmented::wrap(&values, &starts))
        } else {
            Arc::new(Vec::new())
        };
        Self::new(JobSpec::Scan {
            list,
            exec: Arc::new(SegScanJob { wrapped, starts, op }),
            sharded,
            warm: None,
        })
    }

    /// Exclusive scan of `values` along `list` under any associative
    /// operator — the paper's generic list scan, end to end through the
    /// engine. The handle resolves to the scanned values.
    pub fn scan<Op>(list: Arc<LinkedList>, values: Arc<Vec<T>>, op: Op) -> Self
    where
        Op: ScanOp<T> + Send + Sync + 'static,
    {
        Self::scan_inner(list, values, op, false)
    }

    /// [`Request::scan`] through the budget-aware shard-parallel path
    /// (generic stitched scan).
    pub fn scan_sharded<Op>(list: Arc<LinkedList>, values: Arc<Vec<T>>, op: Op) -> Self
    where
        Op: ScanOp<T> + Send + Sync + 'static,
    {
        Self::scan_inner(list, values, op, true)
    }

    /// Exclusive **segmented** scan: restarts at every vertex whose
    /// `starts` flag is set (the head always starts a segment). Values
    /// are wrapped with their flags once here, scanned under the
    /// flag-carrying [`SegOp`] transform, and unwrapped back, so the
    /// handle resolves to plain `Vec<T>`.
    ///
    /// A `values`/`starts` length mismatch is caught at submit time
    /// ([`SubmitError::Invalid`]), like every other malformed spec.
    pub fn segmented_scan<Op>(
        list: Arc<LinkedList>,
        values: Arc<Vec<T>>,
        starts: Arc<Vec<bool>>,
        op: Op,
    ) -> Self
    where
        Op: ScanOp<T> + Clone + Send + Sync + 'static,
    {
        Self::segmented_inner(list, values, starts, op, false)
    }

    /// [`Request::segmented_scan`] through the budget-aware
    /// shard-parallel path: the flag-carrying [`SegOp`] transform is
    /// associative (never commutative), which is exactly what the
    /// stitched sharded scan preserves.
    pub fn segmented_scan_sharded<Op>(
        list: Arc<LinkedList>,
        values: Arc<Vec<T>>,
        starts: Arc<Vec<bool>>,
        op: Op,
    ) -> Self
    where
        Op: ScanOp<T> + Clone + Send + Sync + 'static,
    {
        Self::segmented_inner(list, values, starts, op, true)
    }
}

/// Per-job options.
#[derive(Clone, Copy, Debug)]
pub struct JobOptions {
    /// RNG seed for randomized algorithms (matches
    /// `HostRunner::default`'s seed so engine output is byte-identical
    /// to a direct `HostRunner::new(alg).rank(..)` call).
    pub seed: u64,
    /// Pin the algorithm instead of letting the planner choose.
    pub algorithm: Option<Algorithm>,
    /// Trace id assigned upstream of submit (the socket server assigns
    /// one at frame decode); `None` lets the engine allocate one via
    /// [`crate::telemetry::next_trace_id`] so every job has a nonzero
    /// id either way.
    pub trace_id: Option<u64>,
    /// Nanoseconds the request spent in its decode phase before submit
    /// (frame-body parsing in the server; `0` for in-process callers).
    /// Carried into the request's telemetry span so slow-request log
    /// lines show the full timeline.
    pub decode_ns: u64,
    /// Queue deadline in milliseconds, measured from enqueue. A job
    /// still queued when the deadline passes is dropped at dequeue —
    /// before any execution — and settles as
    /// [`JobError::DeadlineExceeded`]. `None` (the default) means the
    /// job waits indefinitely. The arithmetic is overflow-free at
    /// `u64::MAX` (see [`crate::fault::deadline_expired`]).
    pub deadline_ms: Option<u64>,
    /// QoS class for dispatch ordering ([`Priority::Interactive`] by
    /// default). Batch jobs dispatch only when no interactive job is
    /// queued, except for the periodic anti-starvation aging tick
    /// (see [`crate::sched::pick_next`]).
    pub priority: Priority,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            seed: 0x1994,
            algorithm: None,
            trace_id: None,
            decode_ns: 0,
            deadline_ms: None,
            priority: Priority::Interactive,
        }
    }
}

impl JobOptions {
    /// Attach an upstream-assigned trace id.
    pub fn with_trace_id(mut self, id: u64) -> Self {
        self.trace_id = Some(id);
        self
    }

    /// Set a queue deadline: drop the job (typed
    /// [`JobError::DeadlineExceeded`]) if a worker has not picked it up
    /// within `ms` milliseconds of enqueue.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Set the QoS priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// A completed job: the typed payload plus execution metadata.
#[derive(Clone, Debug)]
pub struct JobReport<R> {
    /// Engine-assigned job id (submission order).
    pub id: u64,
    /// The request's trace id (assigned at frame decode or submit;
    /// echoed in the OUTPUT wire frame and in slow-request log lines).
    pub trace_id: u64,
    /// Vertices in the job's list.
    pub n: usize,
    /// The operation kind the job was dispatched and accounted under.
    pub op: OpKind,
    /// The algorithm the planner dispatched. For a job that ran the
    /// shard-parallel path this is the *stitch* phase's algorithm (the
    /// shard-local phase is always the serial walker per shard).
    pub algorithm: Algorithm,
    /// Shards the job was split into; `0` for a monolithic execution
    /// (including sharded-path jobs that fit the budget).
    pub shards: usize,
    /// Nanoseconds the shard-parallel path spent in its stitch phase
    /// (`0` for monolithic executions).
    pub stitch_ns: u64,
    /// Whether the job was executed as part of a small-job batch.
    pub batched: bool,
    /// Nanoseconds spent queued before a worker picked the job up.
    pub queued_ns: u64,
    /// Nanoseconds the planner spent choosing algorithm/lanes/shards.
    pub plan_ns: u64,
    /// Nanoseconds of execution.
    pub exec_ns: u64,
    /// The result payload — already the concrete type (`Vec<u64>` for
    /// rankings, `Vec<T>` for scans over `T`).
    pub output: R,
}

impl JobReport<ErasedOutput> {
    /// Re-type the erased payload. Infallible by construction: the
    /// typed [`Request`] builders are the only way to create a job, and
    /// they pair the spec with the matching handle type.
    pub(crate) fn downcast<R: 'static>(self) -> JobReport<R> {
        let JobReport {
            id,
            trace_id,
            n,
            op,
            algorithm,
            shards,
            stitch_ns,
            batched,
            queued_ns,
            plan_ns,
            exec_ns,
            output,
        } = self;
        let output = *output.downcast::<R>().expect("typed handle matches the job output type");
        JobReport {
            id,
            trace_id,
            n,
            op,
            algorithm,
            shards,
            stitch_ns,
            batched,
            queued_ns,
            plan_ns,
            exec_ns,
            output,
        }
    }
}

/// Why a job produced no result. There is no shutdown variant:
/// `Engine::shutdown` (and drop) drain the queue fully, so every
/// accepted job settles as completed, cancelled, failed, or
/// deadline-expired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job was cancelled before its result landed.
    Cancelled,
    /// Execution panicked; the worker survived and completed the job
    /// with this error instead of stranding its waiter.
    Failed,
    /// The job's [`JobOptions::deadline_ms`] expired while it was
    /// queued; it was dropped at dequeue without executing.
    DeadlineExceeded,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => f.write_str("job cancelled"),
            JobError::Failed => f.write_str("job execution panicked"),
            JobError::DeadlineExceeded => f.write_str("request deadline exceeded in queue"),
        }
    }
}

impl std::error::Error for JobError {}

pub(crate) enum CellState {
    Pending,
    Done(Result<JobReport<ErasedOutput>, JobError>),
    /// The result was moved out by `wait`.
    Taken,
}

/// Shared completion cell between a [`JobHandle`] and the worker that
/// eventually executes the job.
pub(crate) struct JobCell {
    pub(crate) state: Mutex<CellState>,
    pub(crate) done: Condvar,
}

impl JobCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(JobCell { state: Mutex::new(CellState::Pending), done: Condvar::new() })
    }

    /// First completion wins; later attempts (e.g. a worker finishing a
    /// job that was cancelled mid-flight) are dropped. Returns whether
    /// this call's result landed.
    pub(crate) fn complete(&self, result: Result<JobReport<ErasedOutput>, JobError>) -> bool {
        let mut st = self.state.lock().expect("job cell poisoned");
        if matches!(*st, CellState::Pending) {
            *st = CellState::Done(result);
            self.done.notify_all();
            true
        } else {
            false
        }
    }

    pub(crate) fn is_settled(&self) -> bool {
        !matches!(*self.state.lock().expect("job cell poisoned"), CellState::Pending)
    }
}

/// Typed await/cancel handle returned by `Engine::submit`: `wait()`
/// resolves directly to `JobReport<R>` with the concrete output type
/// the request was built with.
pub struct JobHandle<R> {
    pub(crate) id: u64,
    pub(crate) trace_id: u64,
    pub(crate) cell: Arc<JobCell>,
    pub(crate) _out: PhantomData<fn() -> R>,
}

impl<R: 'static> JobHandle<R> {
    /// The engine-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request's trace id (nonzero; equals the id echoed in OUTPUT
    /// replies and printed by slow-request log lines).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Block until the job finishes; consumes the handle and returns
    /// the typed report.
    pub fn wait(self) -> Result<JobReport<R>, JobError> {
        let mut st = self.cell.state.lock().expect("job cell poisoned");
        loop {
            match std::mem::replace(&mut *st, CellState::Taken) {
                CellState::Done(result) => return result.map(JobReport::downcast),
                prev @ CellState::Pending => {
                    *st = prev;
                    st = self.cell.done.wait(st).expect("job cell poisoned");
                }
                CellState::Taken => unreachable!("wait consumes the handle"),
            }
        }
    }

    /// Whether the job has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        self.cell.is_settled()
    }

    /// Cancel the job if it has not finished. Returns `true` if the
    /// cancellation landed (the job will report
    /// [`JobError::Cancelled`]); `false` if the job already finished.
    /// A job already executing when cancellation lands runs to
    /// completion, but its result is discarded and it is counted as
    /// cancelled, not completed.
    pub fn cancel(&self) -> bool {
        let mut st = self.cell.state.lock().expect("job cell poisoned");
        if matches!(*st, CellState::Pending) {
            *st = CellState::Done(Err(JobError::Cancelled));
            self.cell.done.notify_all();
            true
        } else {
            false
        }
    }
}

/// How a worker delivers a job's settled result (internal). Handle
/// submissions settle a shared [`JobCell`] the caller waits on; the
/// event-driven server instead registers a one-shot callback that
/// encodes the reply and wakes the reactor — no parked thread per
/// in-flight request, which is what makes pipelining scale.
pub(crate) type CompletionFn = Box<dyn FnOnce(Result<JobReport<ErasedOutput>, JobError>) + Send>;

pub(crate) enum Responder {
    /// Settle a waitable cell (the `submit` / `JobHandle` path).
    Cell(Arc<JobCell>),
    /// Invoke a one-shot callback (the `submit_callback` path). `None`
    /// after the callback has fired.
    Callback(Option<CompletionFn>),
}

impl Responder {
    /// Deliver the result. First settle wins (a cancelled cell drops
    /// later results); returns whether this call's result landed.
    pub(crate) fn settle(&mut self, result: Result<JobReport<ErasedOutput>, JobError>) -> bool {
        match self {
            Responder::Cell(cell) => cell.complete(result),
            Responder::Callback(f) => match f.take() {
                Some(f) => {
                    f(result);
                    true
                }
                None => false,
            },
        }
    }

    /// Whether the job has already settled (e.g. cancelled while
    /// queued). Callback responders settle exactly once, at delivery.
    pub(crate) fn is_settled(&self) -> bool {
        match self {
            Responder::Cell(cell) => cell.is_settled(),
            Responder::Callback(f) => f.is_none(),
        }
    }
}

/// A queued unit of work (internal).
pub(crate) struct QueuedJob {
    pub(crate) id: u64,
    pub(crate) spec: JobSpec,
    pub(crate) opts: JobOptions,
    pub(crate) responder: Responder,
    pub(crate) enqueued: std::time::Instant,
    /// Arrival sequence number, assigned by the queue at push; the
    /// scheduler's FIFO tiebreaker and aging key.
    pub(crate) seq: u64,
}
