//! Jobs, results, and the submit/await/cancel handle.

use crate::queue::SubmitError;
use listkit::LinkedList;
use listrank::Algorithm;
use std::sync::{Arc, Condvar, Mutex};

/// What a job computes.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// List ranking of `list`.
    Rank {
        /// The list to rank (shared so many jobs can reference one
        /// workload list without copying).
        list: Arc<LinkedList>,
    },
    /// Exclusive `+`-scan of `values` along `list`.
    ScanAdd {
        /// The list to scan along.
        list: Arc<LinkedList>,
        /// Per-vertex values (same length as the list).
        values: Arc<Vec<i64>>,
    },
    /// List ranking of `list` through the shard-parallel path when it
    /// exceeds the engine's per-worker budget (`EngineConfig::
    /// shard_budget`); lists that fit run monolithically, exactly like
    /// [`JobSpec::Rank`].
    RankSharded {
        /// The (typically huge) list to rank.
        list: Arc<LinkedList>,
    },
}

impl JobSpec {
    /// The list this job ranks or scans.
    pub fn list(&self) -> &Arc<LinkedList> {
        match self {
            JobSpec::Rank { list }
            | JobSpec::ScanAdd { list, .. }
            | JobSpec::RankSharded { list } => list,
        }
    }

    /// Number of vertices this job touches.
    pub fn len(&self) -> usize {
        self.list().len()
    }

    /// Whether the job is over an empty list (never valid — `listkit`
    /// lists have ≥ 1 vertex).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Submit-time validation, shared by every submit path (blocking
    /// and non-blocking) and exhaustive over the variants, so a new
    /// job kind cannot bypass it: a malformed spec is rejected here,
    /// where the caller can handle the error, instead of panicking in a
    /// worker far from the bug. Structural list invariants are already
    /// enforced by `LinkedList` construction; what remains is the
    /// cross-field consistency a spec can get wrong.
    pub fn validate(&self) -> Result<(), SubmitError> {
        match self {
            JobSpec::Rank { .. } | JobSpec::RankSharded { .. } => Ok(()),
            JobSpec::ScanAdd { list, values } => {
                if values.len() == list.len() {
                    Ok(())
                } else {
                    Err(SubmitError::Invalid)
                }
            }
        }
    }
}

/// Per-job options.
#[derive(Clone, Copy, Debug)]
pub struct JobOptions {
    /// RNG seed for randomized algorithms (matches
    /// `HostRunner::default`'s seed so engine output is byte-identical
    /// to a direct `HostRunner::new(alg).rank(..)` call).
    pub seed: u64,
    /// Pin the algorithm instead of letting the planner choose.
    pub algorithm: Option<Algorithm>,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions { seed: 0x1994, algorithm: None }
    }
}

/// A finished job's output payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutput {
    /// Ranks from a [`JobSpec::Rank`] job.
    Ranks(Vec<u64>),
    /// Scan values from a [`JobSpec::ScanAdd`] job.
    Scan(Vec<i64>),
}

impl JobOutput {
    /// The rank vector, if this is a ranking output.
    pub fn ranks(&self) -> Option<&[u64]> {
        match self {
            JobOutput::Ranks(r) => Some(r),
            JobOutput::Scan(_) => None,
        }
    }

    /// The scan vector, if this is a scan output.
    pub fn scan(&self) -> Option<&[i64]> {
        match self {
            JobOutput::Scan(s) => Some(s),
            JobOutput::Ranks(_) => None,
        }
    }
}

/// A completed job: payload plus execution metadata.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Engine-assigned job id (submission order).
    pub id: u64,
    /// Vertices in the job's list.
    pub n: usize,
    /// The algorithm the planner dispatched. For a job that ran the
    /// shard-parallel path this is the *stitch* phase's algorithm (the
    /// shard-local phase is always the serial ranker per shard).
    pub algorithm: Algorithm,
    /// Shards the job was split into; `0` for a monolithic execution
    /// (including `RankSharded` jobs that fit the budget).
    pub shards: usize,
    /// Nanoseconds the shard-parallel path spent in its stitch phase
    /// (`0` for monolithic executions).
    pub stitch_ns: u64,
    /// Whether the job was executed as part of a small-job batch.
    pub batched: bool,
    /// Nanoseconds spent queued before a worker picked the job up.
    pub queued_ns: u64,
    /// Nanoseconds of execution.
    pub exec_ns: u64,
    /// The result payload.
    pub output: JobOutput,
}

/// Why a job produced no result. There is no shutdown variant:
/// `Engine::shutdown` (and drop) drain the queue fully, so every
/// accepted job settles as completed, cancelled, or failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job was cancelled before its result landed.
    Cancelled,
    /// Execution panicked; the worker survived and completed the job
    /// with this error instead of stranding its waiter.
    Failed,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => f.write_str("job cancelled"),
            JobError::Failed => f.write_str("job execution panicked"),
        }
    }
}

impl std::error::Error for JobError {}

pub(crate) enum CellState {
    Pending,
    Done(Result<JobReport, JobError>),
    /// The result was moved out by `wait`.
    Taken,
}

/// Shared completion cell between a [`JobHandle`] and the worker that
/// eventually executes the job.
pub(crate) struct JobCell {
    pub(crate) state: Mutex<CellState>,
    pub(crate) done: Condvar,
}

impl JobCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(JobCell { state: Mutex::new(CellState::Pending), done: Condvar::new() })
    }

    /// First completion wins; later attempts (e.g. a worker finishing a
    /// job that was cancelled mid-flight) are dropped. Returns whether
    /// this call's result landed.
    pub(crate) fn complete(&self, result: Result<JobReport, JobError>) -> bool {
        let mut st = self.state.lock().expect("job cell poisoned");
        if matches!(*st, CellState::Pending) {
            *st = CellState::Done(result);
            self.done.notify_all();
            true
        } else {
            false
        }
    }

    pub(crate) fn is_settled(&self) -> bool {
        !matches!(*self.state.lock().expect("job cell poisoned"), CellState::Pending)
    }
}

/// Await/cancel handle returned by `Engine::submit`.
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) cell: Arc<JobCell>,
}

impl JobHandle {
    /// The engine-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job finishes; consumes the handle.
    pub fn wait(self) -> Result<JobReport, JobError> {
        let mut st = self.cell.state.lock().expect("job cell poisoned");
        loop {
            match std::mem::replace(&mut *st, CellState::Taken) {
                CellState::Done(result) => return result,
                prev @ CellState::Pending => {
                    *st = prev;
                    st = self.cell.done.wait(st).expect("job cell poisoned");
                }
                CellState::Taken => unreachable!("wait consumes the handle"),
            }
        }
    }

    /// Whether the job has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        self.cell.is_settled()
    }

    /// Cancel the job if it has not finished. Returns `true` if the
    /// cancellation landed (the job will report
    /// [`JobError::Cancelled`]); `false` if the job already finished.
    /// A job already executing when cancellation lands runs to
    /// completion, but its result is discarded and it is counted as
    /// cancelled, not completed.
    pub fn cancel(&self) -> bool {
        let mut st = self.cell.state.lock().expect("job cell poisoned");
        if matches!(*st, CellState::Pending) {
            *st = CellState::Done(Err(JobError::Cancelled));
            self.cell.done.notify_all();
            true
        } else {
            false
        }
    }
}

/// A queued unit of work (internal).
pub(crate) struct QueuedJob {
    pub(crate) id: u64,
    pub(crate) spec: JobSpec,
    pub(crate) opts: JobOptions,
    pub(crate) cell: Arc<JobCell>,
    pub(crate) enqueued: std::time::Instant,
}
