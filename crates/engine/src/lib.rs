//! # engine — `rankd`, the batch execution subsystem
//!
//! The paper's algorithms (and this repo's `listrank` crate) answer "how
//! fast can *one* list be ranked"; a serving system asks "how many
//! ranking/scan *requests* per second can this machine sustain". `rankd`
//! is the bridge:
//!
//! * **[`Engine`]** — a bounded job queue with blocking backpressure,
//!   drained by a worker pool; each worker scopes an inner thread budget
//!   for its jobs' data-parallel phases.
//! * **[`Planner`]** — adaptive algorithm selection: the paper's cost
//!   model as prior ([`rankmodel::predict::predict_best`]), refined by
//!   measured per-size-bucket execution history, so tiny jobs go to the
//!   serial ranker and big ones to Reid-Miller with a model-tuned `m`.
//! * **small-job batching** — workers drain sibling small jobs in one
//!   dequeue so fixed costs amortize across a batch.
//! * **[`ScratchPool`]** — per-job O(n) working arrays are pooled and
//!   reused through `listrank`'s `rank_into`/`scan_into` no-alloc entry
//!   points instead of reallocated per job.
//! * **[`EngineStats`]** — throughput, queue depth, per-algorithm
//!   dispatch counts by job size, batching and pool hit rates.
//!
//! ```
//! use engine::{Engine, JobSpec};
//! use std::sync::Arc;
//!
//! let engine = Engine::with_defaults();
//! let list = Arc::new(listkit::gen::random_list(10_000, 42));
//! let handle = engine.submit(JobSpec::Rank { list: Arc::clone(&list) }).unwrap();
//! let report = handle.wait().unwrap();
//! assert_eq!(report.output.ranks().unwrap()[list.head() as usize], 0);
//! println!("{}", engine.stats());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
pub mod job;
pub mod planner;
pub mod pool;
pub mod queue;
pub mod stats;
pub mod workload;

pub use crate::engine::{Engine, EngineConfig};
pub use job::{JobError, JobHandle, JobOptions, JobOutput, JobReport, JobSpec};
pub use planner::{Plan, Planner, ShardDecision};
pub use pool::{PoolStats, ScratchPool};
pub use queue::SubmitError;
pub use stats::EngineStats;
