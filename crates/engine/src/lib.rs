//! # engine — `rankd`, the batch execution subsystem
//!
//! The paper's algorithms (and this repo's `listrank` crate) answer "how
//! fast can *one* list be scanned"; a serving system asks "how many
//! ranking/scan *requests* per second can this machine sustain". `rankd`
//! is the bridge, and its public boundary carries the paper's full
//! generality: **any binary associative operator**, typed end to end.
//!
//! * **[`Request`]** — typed request builder: [`Request::rank`],
//!   [`Request::scan`] (any [`listkit::ScanOp`], including
//!   non-commutative ones), [`Request::segmented_scan`], and the
//!   budget-aware sharded variants. The operator is type-erased
//!   *inside* the engine; callers never see an output enum.
//! * **[`JobHandle`]** — typed await/cancel handle: `wait()` on the
//!   handle of a `Request<Vec<i64>>` returns `JobReport<Vec<i64>>`
//!   directly.
//! * **[`Engine`]** — a bounded job queue with blocking backpressure,
//!   drained by a worker pool; each worker scopes an inner thread budget
//!   for its jobs' data-parallel phases.
//! * **[`Planner`]** — adaptive algorithm selection keyed on job size
//!   *and* operation kind ([`OpKind`]): the paper's cost model as prior
//!   (op-width aware), refined by measured per-(size, op) execution
//!   history.
//! * **small-job batching**, **[`ScratchPool`]** buffer reuse, and
//!   **[`EngineStats`]** — throughput, queue depth, dispatch matrices
//!   by size and by op kind, per-op throughput.
//! * **[`dynamic`]** — the mutation plane: splice / delete / append
//!   batches against resident datasets, with cached sharded artifacts
//!   maintained incrementally (dirty shards patched, clean shards
//!   shared) or rebuilt, per planner decision.
//! * **`rankd serve`** — the socket front-end: a [`Server`] accepts
//!   concurrent clients over a Unix domain socket speaking the
//!   length-prefixed binary [`protocol`] (spec: `docs/PROTOCOL.md`),
//!   decodes frames into the same typed requests, and turns the
//!   queue's backpressure into per-client admission control. The
//!   in-process [`Client`] is the reference consumer.
//!
//! ```
//! use engine::{Engine, Request};
//! use listkit::ops::MaxOp;
//! use std::sync::Arc;
//!
//! let engine = Engine::with_defaults();
//! let list = Arc::new(listkit::gen::random_list(10_000, 42));
//!
//! // Ranking: the typed handle resolves straight to Vec<u64>.
//! let ranks = engine.submit(Request::rank(Arc::clone(&list))).unwrap()
//!     .wait().unwrap();
//! assert_eq!(ranks.output[list.head() as usize], 0);
//!
//! // Any operator from `listkit::ops` — here a max-scan -> Vec<i64>.
//! let values = Arc::new((0..10_000).map(|i| (i % 97) - 48).collect::<Vec<i64>>());
//! let maxes = engine.submit(Request::scan(Arc::clone(&list), values, MaxOp)).unwrap()
//!     .wait().unwrap();
//! assert_eq!(maxes.output[list.head() as usize], i64::MIN); // head: identity
//! println!("{}", engine.stats());
//! ```

#![deny(missing_docs)]
// `deny` rather than `forbid`: the poll(2) FFI shim in [`poll`] is the
// one module-scoped allow in the workspace (see its docs).
#![deny(unsafe_code)]

#[cfg(unix)]
pub mod client;
pub mod dynamic;
mod engine;
pub mod fault;
pub mod job;
pub mod op;
pub mod planner;
#[cfg(unix)]
pub mod poll;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod sched;
#[cfg(unix)]
pub mod server;
pub mod stats;
pub mod store;
pub mod telemetry;
pub mod workload;

pub use crate::engine::{Engine, EngineConfig};
#[cfg(unix)]
pub use client::{Client, ClientError, RetryPolicy, ServedOutput};
pub use dynamic::{MutateError, MutationOutcome};
pub use fault::{FaultConfig, FaultPlane, FaultSnapshot};
pub use job::{JobError, JobHandle, JobOptions, JobReport, Request};
pub use op::OpKind;
pub use planner::{MutateDecision, Plan, PlanDecision, Planner, ShardDecision};
pub use pool::{PoolStats, ScratchPool};
pub use queue::SubmitError;
pub use sched::{Priority, QuotaTable, SchedSnapshot};
#[cfg(unix)]
pub use server::{ServeConfig, Server, ServerControl, ServerStats};
pub use stats::{EngineStats, OpThroughput};
pub use store::{
    ArtifactCache, DatasetRef, DatasetStore, MutationStats, PutReceipt, StoreError, StoreStats,
};
pub use telemetry::{Histogram, Phase, Span, Telemetry};
