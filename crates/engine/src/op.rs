//! The operation-kind dimension of the engine's dispatch and stats.
//!
//! The paper's central claim is that list scan works for **any** binary
//! associative operator; the typed request API ([`crate::Request`])
//! admits them all. For adaptive dispatch and observability the engine
//! still wants a small closed classification — different operators move
//! different amounts of memory per vertex and therefore sit at
//! different serial/parallel crossovers — so every request carries an
//! [`OpKind`]: the well-known operators map to their own kind, anything
//! else lands in [`OpKind::Other`] (still fully supported, just pooled
//! in one history bucket).

use listkit::ops::{AddOp, MaxOp, MinOp, XorOp};
use std::any::TypeId;

/// Classification of what a job computes, used as a dimension of the
/// planner's EWMA history and the [`crate::EngineStats`] matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// List ranking (scan of all-ones by `+`).
    Rank,
    /// `+`-scan ([`listkit::ops::AddOp`]).
    Add,
    /// max-scan ([`listkit::ops::MaxOp`]).
    Max,
    /// min-scan ([`listkit::ops::MinOp`]).
    Min,
    /// xor-scan ([`listkit::ops::XorOp`]).
    Xor,
    /// Affine-composition scan ([`listkit::ops::AffineOp`],
    /// non-commutative).
    Affine,
    /// Segmented scan of any inner operator
    /// ([`listkit::segmented::SegOp`]).
    Segmented,
    /// Any other user-supplied [`listkit::ScanOp`] implementation.
    Other,
}

impl OpKind {
    /// All kinds, in display order.
    pub const ALL: [OpKind; 8] = [
        OpKind::Rank,
        OpKind::Add,
        OpKind::Max,
        OpKind::Min,
        OpKind::Xor,
        OpKind::Affine,
        OpKind::Segmented,
        OpKind::Other,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Rank => "rank",
            OpKind::Add => "add",
            OpKind::Max => "max",
            OpKind::Min => "min",
            OpKind::Xor => "xor",
            OpKind::Affine => "affine",
            OpKind::Segmented => "segmented",
            OpKind::Other => "other",
        }
    }

    /// Index into [`OpKind::ALL`]-shaped arrays (also the wire id of
    /// this op's histogram block in `STATS_V2`).
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|k| k == self).expect("kind in ALL")
    }

    /// Inverse of [`OpKind::index`] (wire decode).
    pub fn from_index(i: usize) -> Option<OpKind> {
        Self::ALL.get(i).copied()
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classify a scan operator by its `TypeId`; anything outside the
/// well-known `listkit::ops` set is [`OpKind::Other`] (still fully
/// supported — it just pools into one history/stats bucket).
pub(crate) fn classify_op<Op: 'static>() -> OpKind {
    let t = TypeId::of::<Op>();
    if t == TypeId::of::<AddOp>() {
        OpKind::Add
    } else if t == TypeId::of::<MaxOp>() {
        OpKind::Max
    } else if t == TypeId::of::<MinOp>() {
        OpKind::Min
    } else if t == TypeId::of::<XorOp>() {
        OpKind::Xor
    } else if t == TypeId::of::<listkit::ops::AffineOp>() {
        OpKind::Affine
    } else {
        OpKind::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use listkit::ops::AffineOp;

    #[test]
    fn known_ops_classify_to_their_kind() {
        assert_eq!(classify_op::<AddOp>(), OpKind::Add);
        assert_eq!(classify_op::<MaxOp>(), OpKind::Max);
        assert_eq!(classify_op::<MinOp>(), OpKind::Min);
        assert_eq!(classify_op::<XorOp>(), OpKind::Xor);
        assert_eq!(classify_op::<AffineOp>(), OpKind::Affine);
        struct Custom;
        assert_eq!(classify_op::<Custom>(), OpKind::Other);
    }

    #[test]
    fn indices_cover_all() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(format!("{}", OpKind::Segmented), "segmented");
    }
}
