//! Adaptive algorithm selection: model prior + measured history.
//!
//! The planner decides, per job, which of the five algorithms to run and
//! (for Reid-Miller) which split count `m` to use. Its prior is the
//! paper's cost model ([`rankmodel::predict::predict_best_op`], keyed on
//! the job's value width); as jobs complete it folds measured
//! per-element times into per-(size bucket × **op kind**) EWMAs, so the
//! dispatch threshold migrates to wherever *this* machine's crossover
//! actually sits **for that operator** — a wide affine-composition scan
//! moves twice the memory of a ranking and can cross over at a
//! different size, and their histories must not contaminate each other.

use crate::op::OpKind;
use crate::telemetry::log::Level;
use crate::telemetry::{AtomicHistogram, Histogram, Ring};
use listrank::Algorithm;
use rankmodel::predict::{default_lanes, predict_best_op_lanes, predict_patch, AlgChoice};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Size buckets are powers of two: bucket `b` holds `2^(b-1) ≤ n < 2^b`.
const BUCKETS: usize = usize::BITS as usize + 1;
const ALGS: usize = Algorithm::ALL.len();
const OPS: usize = OpKind::ALL.len();

/// EWMA smoothing factor for new measurements.
const ALPHA: f64 = 0.25;

/// Probe the unmeasured contender once in this many dispatches per
/// bucket, so measured history covers both candidates.
const PROBE_EVERY: u64 = 16;

/// Lane counts the per-bucket lane tuner picks between. The model's
/// prior seeds the choice; measured Reid-Miller completions at each
/// candidate migrate it to wherever *this* machine's miss-buffer depth
/// and cache sizes actually put the optimum.
pub const LANE_CANDIDATES: [usize; 5] = [1, 2, 4, 8, 16];

const LANE_SLOTS: usize = LANE_CANDIDATES.len();

pub(crate) fn bucket_of(n: usize) -> usize {
    (usize::BITS - n.leading_zeros()) as usize
}

pub(crate) fn alg_index(alg: Algorithm) -> usize {
    Algorithm::ALL.iter().position(|&a| a == alg).expect("algorithm in ALL")
}

/// One dispatch decision.
#[derive(Clone, Copy, Debug)]
pub struct Plan {
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// Reid-Miller split-count override (`None` = host heuristic).
    pub m: Option<usize>,
    /// Interleaved traversal lanes for the multi-chain walks (always
    /// `1` for algorithms without one — a serial chain has a single
    /// cursor, structurally).
    pub lanes: usize,
}

/// The plan branch for sharded requests: lists that fit the per-worker
/// budget fall back to the ordinary monolithic dispatch, larger ones go
/// to the shard-parallel path with a balanced shard size from the cost
/// model.
#[derive(Clone, Copy, Debug)]
pub enum ShardDecision {
    /// The list fits one worker's budget (or the caller pinned an
    /// algorithm): run it like a plain monolithic job.
    Monolithic(Plan),
    /// Split into shards of `shard_size` vertices.
    Sharded {
        /// Per-shard vertex count (balanced; ≤ the budget).
        shard_size: usize,
        /// Number of shards the list will split into.
        shards: usize,
        /// Interleaved lanes for the shard-local fragment walks.
        lanes: usize,
    },
}

#[derive(Clone, Copy, Default)]
struct Ewma {
    ns_per_elem: f64,
    samples: u64,
}

/// The maintenance decision for one mutated artifact: patch the dirty
/// shards in place, or rebuild the decomposition from scratch. Returned
/// by [`Planner::choose_maintenance`].
#[derive(Clone, Copy, Debug)]
pub struct MutateDecision {
    /// `true` = patch dirty shards incrementally; `false` = rebuild.
    pub incremental: bool,
    /// Dirty shards the decision was made for.
    pub dirty: usize,
    /// Total shards of the decomposition.
    pub shards: usize,
    /// The EWMA's predicted ns for the chosen strategy at decision
    /// time, or `0.0` when the bucket had no measurement yet
    /// (prior-driven decision).
    pub predicted_ns: f64,
}

/// Maintenance-strategy slots in the mutate EWMA table.
const MAINT_INCREMENTAL: usize = 0;
const MAINT_REBUILD: usize = 1;

/// The work-unit count a maintenance EWMA normalizes by: the vertices
/// actually re-derived plus the contracted rows re-assembled. Using
/// per-unit times (rather than per-job) lets one bucket's history
/// predict across different dirty fractions.
fn maint_units(n: usize, shard_size: usize, fragments: usize, dirty: usize, kind: usize) -> u64 {
    let touched = if kind == MAINT_REBUILD { n } else { (dirty * shard_size.max(1)).min(n) };
    (touched + fragments).max(1) as u64
}

/// How many recent dispatch decisions the introspection ring keeps.
const DECISION_RING_CAPACITY: usize = 128;

/// Scale of the mispredict-ratio histogram: a recorded value of
/// [`MISPREDICT_SCALE`] means measured cost == predicted cost; `2×` the
/// scale means the job ran twice as slow as predicted.
pub const MISPREDICT_SCALE: u64 = 1000;

/// One dispatch decision, as kept in the planner's introspection log
/// ([`Planner::recent_decisions`]) and printed by `RANKD_LOG=debug`.
#[derive(Clone, Copy, Debug)]
pub struct PlanDecision {
    /// Job size.
    pub n: usize,
    /// Operation kind the dispatch was keyed on.
    pub op: OpKind,
    /// Chosen algorithm (stitch algorithm is not known yet for sharded
    /// dispatches; this is the monolithic pick or `Serial` placeholder).
    pub algorithm: Algorithm,
    /// Chosen interleaved-lane count.
    pub lanes: usize,
    /// Shards the job will split into (`0` = monolithic).
    pub shards: usize,
    /// The EWMA's predicted ns/element for the chosen algorithm at
    /// decision time, or `0.0` when the bucket had no measurement yet
    /// (prior-driven dispatch).
    pub predicted_ns_per_elem: f64,
    /// Whether the caller pinned the algorithm.
    pub pinned: bool,
}

/// The adaptive planner. Thread-safe; shared by all workers.
pub struct Planner {
    /// Parallelism available to a single job.
    p: usize,
    /// Pinned lane count (`None` = tune per bucket).
    lanes_override: Option<usize>,
    /// Measured per-element times by (bucket, op kind, algorithm).
    measured: Mutex<Vec<[[Ewma; ALGS]; OPS]>>,
    /// Measured per-element times of Reid-Miller jobs by (bucket, lane
    /// candidate) — the lane tuner's history. Kept separate from the
    /// algorithm EWMAs: lane counts only vary *within* the Reid-Miller
    /// dispatch, and mixing lane experiments into the serial/RM contest
    /// would double-count them.
    lane_measured: Mutex<Vec<[Ewma; LANE_SLOTS]>>,
    /// Dispatch counts by (bucket, algorithm) — the stats surface that
    /// makes "different algorithms by job size" visible.
    dispatched: Vec<[AtomicU64; ALGS]>,
    /// Dispatch counts by (op kind, algorithm) — the op dimension of
    /// the stats surface.
    dispatched_by_op: Vec<[AtomicU64; ALGS]>,
    /// Cached tuned Reid-Miller `m` per bucket.
    tuned_m: Mutex<HashMap<usize, usize>>,
    /// Recent dispatch decisions (introspection; `RANKD_LOG=debug`
    /// prints them live).
    decisions: Ring<PlanDecision>,
    /// Mispredict ratios: for every completion whose (bucket, op,
    /// algorithm) EWMA held a prediction, `measured/predicted ×`
    /// [`MISPREDICT_SCALE`]. A tight mode at the scale value means the
    /// EWMA layer predicts well; heavy tails mean it is being surprised.
    mispredict: AtomicHistogram,
    /// Measured per-unit maintenance times by (size bucket × strategy):
    /// slot [`MAINT_INCREMENTAL`] holds dirty-shard patching, slot
    /// [`MAINT_REBUILD`] holds from-scratch decomposition. Kept apart
    /// from the query EWMAs — maintenance touches different code (shard
    /// builds and boundary stitching, no ranking) and its history must
    /// not contaminate dispatch.
    maint_measured: Mutex<Vec<[Ewma; 2]>>,
    /// Maintenance dispatch counts: `[incremental, rebuild]`.
    maint_dispatched: [AtomicU64; 2],
    /// Mispredict ratios for maintenance decisions, same scale and
    /// scoring rule as [`Planner::mispredict`] but fed by
    /// [`Planner::record_maintenance`].
    maint_mispredict: AtomicHistogram,
}

impl Planner {
    /// A planner for jobs that may use up to `p` threads each, tuning
    /// the lane count per size bucket.
    pub fn new(p: usize) -> Self {
        Planner {
            p: p.max(1),
            lanes_override: None,
            measured: Mutex::new(vec![[[Ewma::default(); ALGS]; OPS]; BUCKETS]),
            lane_measured: Mutex::new(vec![[Ewma::default(); LANE_SLOTS]; BUCKETS]),
            dispatched: (0..BUCKETS).map(|_| std::array::from_fn(|_| AtomicU64::new(0))).collect(),
            dispatched_by_op: (0..OPS)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            tuned_m: Mutex::new(HashMap::new()),
            decisions: Ring::new(DECISION_RING_CAPACITY),
            mispredict: AtomicHistogram::new(),
            maint_measured: Mutex::new(vec![[Ewma::default(); 2]; BUCKETS]),
            maint_dispatched: std::array::from_fn(|_| AtomicU64::new(0)),
            maint_mispredict: AtomicHistogram::new(),
        }
    }

    /// Pin the lane count instead of tuning it (`None` restores
    /// tuning). The engine threads `EngineConfig::lanes` through here.
    pub fn with_lanes_override(mut self, lanes: Option<usize>) -> Self {
        self.lanes_override = lanes.map(|k| k.max(1));
        self
    }

    /// Choose the algorithm (plus `m` and the lane count) for an
    /// `n`-vertex job computing `op` over `elem_bytes`-byte values.
    /// `pinned` overrides adaptivity (but still records the dispatch).
    pub fn choose(
        &self,
        n: usize,
        op: OpKind,
        elem_bytes: usize,
        pinned: Option<Algorithm>,
    ) -> Plan {
        let algorithm = pinned.unwrap_or_else(|| self.adaptive_choice(n, op, elem_bytes));
        self.dispatched[bucket_of(n)][alg_index(algorithm)].fetch_add(1, Ordering::Relaxed);
        self.dispatched_by_op[op.index()][alg_index(algorithm)].fetch_add(1, Ordering::Relaxed);
        let (m, lanes) = if algorithm == Algorithm::ReidMiller {
            let lanes = self.tuned_lanes(n);
            (self.tuned_m(n, lanes), lanes)
        } else {
            (None, 1)
        };
        let plan = Plan { algorithm, m, lanes };
        self.log_decision(n, op, algorithm, lanes, 0, pinned.is_some());
        plan
    }

    /// Record one decision in the introspection ring (and at
    /// `RANKD_LOG=debug`, on stderr).
    fn log_decision(
        &self,
        n: usize,
        op: OpKind,
        algorithm: Algorithm,
        lanes: usize,
        shards: usize,
        pinned: bool,
    ) {
        let predicted_ns_per_elem = {
            let measured = self.measured.lock().expect("planner poisoned");
            let e = measured[bucket_of(n)][op.index()][alg_index(algorithm)];
            if e.samples > 0 {
                e.ns_per_elem
            } else {
                0.0
            }
        };
        let d = PlanDecision { n, op, algorithm, lanes, shards, predicted_ns_per_elem, pinned };
        if crate::telemetry::log::enabled(Level::Debug) {
            crate::telemetry::log::write(
                Level::Debug,
                "planner",
                &format!(
                    "dispatch n={} op={} alg={} lanes={} shards={} predicted_ns_per_elem={:.2}{}",
                    d.n,
                    d.op,
                    d.algorithm.name(),
                    d.lanes,
                    d.shards,
                    d.predicted_ns_per_elem,
                    if d.pinned { " pinned" } else { "" }
                ),
            );
        }
        self.decisions.push(d);
    }

    /// Cold-start prior. The `rankmodel` prediction locates the size
    /// threshold below which startup costs dominate (→ Serial) for the
    /// job's value width; above it, the host's only *work-efficient*
    /// parallel algorithm is Reid-Miller, so every parallel pick maps
    /// there. (The C90 model can prefer the random-mate algorithms
    /// because vector hardware runs them wide even at `p = 1`; a
    /// multicore host has no such discount.) With the K-lane walker the
    /// model crosses over to Reid-Miller even on one thread for large
    /// lists — interleaved chains are the single-core parallelism the
    /// paper's vector pipeline provided. The prior is keyed on the
    /// lane count the job would actually run with (override included),
    /// so pinning `--lanes 1` restores the old serial-on-one-thread
    /// rule instead of promising a discount the walker won't deliver.
    fn prior_choice(&self, n: usize, elem_bytes: usize) -> Algorithm {
        let lanes = self.lanes_override.unwrap_or_else(|| default_lanes(n));
        match predict_best_op_lanes(n, self.p, elem_bytes, lanes) {
            AlgChoice::Serial => Algorithm::Serial,
            _ => Algorithm::ReidMiller,
        }
    }

    /// The lane count for an `n`-vertex Reid-Miller job: the override
    /// if pinned, else the bucket's best measured candidate, probing
    /// unmeasured candidates on the probe cadence, seeded by the
    /// model's prior.
    fn tuned_lanes(&self, n: usize) -> usize {
        if let Some(k) = self.lanes_override {
            return k;
        }
        let b = bucket_of(n);
        let row = { self.lane_measured.lock().expect("planner poisoned")[b] };
        let measured_any = row.iter().any(|e| e.samples > 0);
        let unmeasured_any = row.iter().any(|e| e.samples == 0);
        if measured_any && unmeasured_any {
            // Probe the least-sampled candidate periodically so the
            // bucket's history eventually covers the whole ladder.
            let rm = self.dispatched[b][alg_index(Algorithm::ReidMiller)].load(Ordering::Relaxed);
            if rm % PROBE_EVERY == PROBE_EVERY - 1 {
                let (i, _) = row
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.samples)
                    .expect("candidate ladder is non-empty");
                return LANE_CANDIDATES[i];
            }
        }
        if measured_any {
            let (i, _) = row
                .iter()
                .enumerate()
                .filter(|(_, e)| e.samples > 0)
                .min_by(|(_, a), (_, b)| {
                    a.ns_per_elem.partial_cmp(&b.ns_per_elem).expect("EWMAs are finite")
                })
                .expect("measured_any");
            LANE_CANDIDATES[i]
        } else {
            default_lanes(n)
        }
    }

    fn adaptive_choice(&self, n: usize, op: OpKind, elem_bytes: usize) -> Algorithm {
        let b = bucket_of(n);
        let prior = self.prior_choice(n, elem_bytes);
        let measured = self.measured.lock().expect("planner poisoned");
        let serial = measured[b][op.index()][alg_index(Algorithm::Serial)];
        let rm = measured[b][op.index()][alg_index(Algorithm::ReidMiller)];
        drop(measured);
        match (serial.samples, rm.samples) {
            // Nothing measured for this (bucket, op) yet: trust the
            // model.
            (0, 0) => prior,
            // One contender unmeasured. If it is the *prior* that lacks
            // a sample (e.g. the measured one arrived via a pinned
            // job), dispatch the prior so it gets measured — otherwise a
            // single pinned job would poison the bucket onto the
            // non-prior contender. If the prior is the measured one,
            // keep it and probe the other periodically (Reid-Miller
            // only where it could plausibly win: p ≥ 2).
            (0, _) | (_, 0) => {
                let prior_measured = match prior {
                    Algorithm::Serial => serial.samples > 0,
                    _ => rm.samples > 0,
                };
                if !prior_measured {
                    return prior;
                }
                let other = if prior == Algorithm::Serial {
                    Algorithm::ReidMiller
                } else {
                    Algorithm::Serial
                };
                let count: u64 = self.dispatched[b].iter().map(|c| c.load(Ordering::Relaxed)).sum();
                let probe = count % PROBE_EVERY == PROBE_EVERY - 1;
                // Reid-Miller is a plausible winner even at p = 1 now
                // (lanes hide latency without threads), so both
                // contenders are probe-worthy everywhere.
                if probe {
                    other
                } else {
                    prior
                }
            }
            // Both measured: cheapest expected time wins.
            _ => {
                if serial.ns_per_elem <= rm.ns_per_elem {
                    Algorithm::Serial
                } else {
                    Algorithm::ReidMiller
                }
            }
        }
    }

    /// The plan branch for sharded requests. Budget-aware: a list of at
    /// most `budget` vertices is dispatched monolithically through
    /// [`Self::choose`]; a pinned algorithm also forces the monolithic
    /// path (pinning means "run exactly this backend"). Above the
    /// budget, [`rankmodel::predict::shard_size_for`] balances the
    /// shard size over the job's thread budget.
    pub fn choose_sharded(
        &self,
        n: usize,
        budget: usize,
        op: OpKind,
        elem_bytes: usize,
        pinned: Option<Algorithm>,
    ) -> ShardDecision {
        if pinned.is_some() || n <= budget.max(1) {
            return ShardDecision::Monolithic(self.choose(n, op, elem_bytes, pinned));
        }
        let shard_size = rankmodel::predict::shard_size_for(n, budget, self.p);
        // The shard-local fragment walks interleave like Reid-Miller's
        // phases; key the lane choice on the shard size (the walk's
        // working set), overridable like everything else.
        let lanes = self.lanes_override.unwrap_or_else(|| default_lanes(shard_size));
        // Sharded executions are counted at completion time by the
        // engine's `Counters` (the stats surface); the planner keeps no
        // duplicate tally.
        let shards = n.div_ceil(shard_size);
        // The stitch algorithm is chosen downstream by the sharded
        // runner; log the shard-local phase (a serial walk per shard).
        self.log_decision(n, op, Algorithm::Serial, lanes, shards, false);
        ShardDecision::Sharded { shard_size, shards, lanes }
    }

    /// Model-tuned Reid-Miller split count for `n` walked with `lanes`
    /// interleaved lanes, clamped to the host backend's
    /// over-decomposition bounds (≥ `8·lanes` tasks per thread — each
    /// worker needs ≥ `lanes` *live* sublists to keep its lanes full,
    /// with the 8× on top so work stealing levels the exponential
    /// sublist skew — and ≤ n/4 so sublists stay non-trivial). Cached
    /// per size bucket, tuned for the bucket's geometric midpoint
    /// (`1.5·2^(b-1)`) rather than whichever `n` happens to arrive
    /// first, so the cached value is equally representative for every
    /// job the bucket covers.
    fn tuned_m(&self, n: usize, lanes: usize) -> Option<usize> {
        let b = bucket_of(n);
        let rep = if b >= 2 { 3usize << (b - 2) } else { n };
        let mut cache = self.tuned_m.lock().expect("planner poisoned");
        let m = *cache.entry(b).or_insert_with(|| listrank::SimParams::tuned_rank(rep, self.p).m);
        if m < 2 {
            return None; // model says don't split; host heuristic decides
        }
        let floor = self.p * 8 * lanes.max(1);
        Some(m.clamp(floor.min(n / 4), (n / 4).max(1)).max(2))
    }

    /// Fold one completed Reid-Miller job into the (bucket, lane)
    /// history. `lanes` snaps to the nearest candidate rung.
    pub fn record_lanes(&self, n: usize, lanes: usize, exec_ns: u64) {
        if n == 0 {
            return;
        }
        let slot = LANE_CANDIDATES
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c.abs_diff(lanes))
            .map(|(i, _)| i)
            .expect("candidate ladder is non-empty");
        let per_elem = exec_ns as f64 / n as f64;
        let mut measured = self.lane_measured.lock().expect("planner poisoned");
        let e = &mut measured[bucket_of(n)][slot];
        e.ns_per_elem = if e.samples == 0 {
            per_elem
        } else {
            (1.0 - ALPHA) * e.ns_per_elem + ALPHA * per_elem
        };
        e.samples += 1;
    }

    /// Fold one completed job into the (bucket, op) history, scoring
    /// the EWMA's prediction against the measurement on the way in.
    pub fn record(&self, n: usize, op: OpKind, alg: Algorithm, exec_ns: u64) {
        if n == 0 {
            return;
        }
        let per_elem = exec_ns as f64 / n as f64;
        let mut measured = self.measured.lock().expect("planner poisoned");
        let e = &mut measured[bucket_of(n)][op.index()][alg_index(alg)];
        if e.samples > 0 && e.ns_per_elem > 0.0 {
            // The pre-update EWMA is what `choose` would have predicted
            // for this job; its measured/predicted ratio (scaled by
            // MISPREDICT_SCALE) is the planner's self-assessment.
            let ratio = (per_elem / e.ns_per_elem) * MISPREDICT_SCALE as f64;
            self.mispredict.record(ratio.clamp(0.0, u64::MAX as f64) as u64);
        }
        e.ns_per_elem = if e.samples == 0 {
            per_elem
        } else {
            (1.0 - ALPHA) * e.ns_per_elem + ALPHA * per_elem
        };
        e.samples += 1;
    }

    /// Choose how to bring an `n`-vertex sharded decomposition
    /// (`shards` shards of `shard_size`, `fragments` contracted rows)
    /// up to date after a mutation batch dirtied `dirty` shards: patch
    /// the dirty shards in place, or rebuild from scratch.
    ///
    /// Same layering as [`Self::choose`]: the cost model
    /// ([`rankmodel::predict::predict_patch`]) is the cold-start prior;
    /// once the size bucket has measured history for both strategies,
    /// the cheaper expected time wins; with one strategy unmeasured,
    /// the measured one runs but the other is probed on the
    /// `PROBE_EVERY` cadence so history covers both sides of the
    /// crossover.
    pub fn choose_maintenance(
        &self,
        n: usize,
        shard_size: usize,
        fragments: usize,
        dirty: usize,
    ) -> MutateDecision {
        let shards = n.div_ceil(shard_size.max(1)).max(1);
        let dirty = dirty.min(shards);
        let b = bucket_of(n);
        let lanes = self.lanes_override.unwrap_or_else(|| default_lanes(shard_size.min(n)));
        let prior = dirty < shards && predict_patch(n, shard_size, fragments, dirty, self.p, lanes);
        let row = { self.maint_measured.lock().expect("planner poisoned")[b] };
        let incr = row[MAINT_INCREMENTAL];
        let reb = row[MAINT_REBUILD];
        // A fully-dirty batch has nothing clean to reuse: patching is a
        // rebuild with extra bookkeeping, so never "probe" it.
        let incremental = if dirty >= shards {
            false
        } else {
            match (incr.samples, reb.samples) {
                (0, 0) => prior,
                (0, _) | (_, 0) => {
                    let prior_measured = if prior { incr.samples > 0 } else { reb.samples > 0 };
                    if !prior_measured {
                        prior
                    } else {
                        let count: u64 =
                            self.maint_dispatched.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                        if count % PROBE_EVERY == PROBE_EVERY - 1 {
                            !prior
                        } else {
                            prior
                        }
                    }
                }
                _ => {
                    let incr_ns = incr.ns_per_elem
                        * maint_units(n, shard_size, fragments, dirty, MAINT_INCREMENTAL) as f64;
                    let reb_ns = reb.ns_per_elem
                        * maint_units(n, shard_size, fragments, dirty, MAINT_REBUILD) as f64;
                    incr_ns < reb_ns
                }
            }
        };
        let kind = if incremental { MAINT_INCREMENTAL } else { MAINT_REBUILD };
        self.maint_dispatched[kind].fetch_add(1, Ordering::Relaxed);
        let chosen = row[kind];
        let predicted_ns = if chosen.samples > 0 {
            chosen.ns_per_elem * maint_units(n, shard_size, fragments, dirty, kind) as f64
        } else {
            0.0
        };
        if crate::telemetry::log::enabled(Level::Debug) {
            crate::telemetry::log::write(
                Level::Debug,
                "planner",
                &format!(
                    "maintenance n={n} shard_size={shard_size} dirty={dirty}/{shards} \
                     fragments={fragments} -> {} predicted_ns={predicted_ns:.0}",
                    if incremental { "incremental" } else { "rebuild" }
                ),
            );
        }
        MutateDecision { incremental, dirty, shards, predicted_ns }
    }

    /// Fold one completed maintenance pass into the (bucket, strategy)
    /// history, scoring the EWMA's prediction against the measurement
    /// on the way in (same rule as [`Self::record`], into the separate
    /// maintenance mispredict histogram).
    pub fn record_maintenance(
        &self,
        n: usize,
        shard_size: usize,
        fragments: usize,
        dirty: usize,
        incremental: bool,
        exec_ns: u64,
    ) {
        if n == 0 {
            return;
        }
        let kind = if incremental { MAINT_INCREMENTAL } else { MAINT_REBUILD };
        let per_unit = exec_ns as f64 / maint_units(n, shard_size, fragments, dirty, kind) as f64;
        let mut measured = self.maint_measured.lock().expect("planner poisoned");
        let e = &mut measured[bucket_of(n)][kind];
        if e.samples > 0 && e.ns_per_elem > 0.0 {
            let ratio = (per_unit / e.ns_per_elem) * MISPREDICT_SCALE as f64;
            self.maint_mispredict.record(ratio.clamp(0.0, u64::MAX as f64) as u64);
        }
        e.ns_per_elem = if e.samples == 0 {
            per_unit
        } else {
            (1.0 - ALPHA) * e.ns_per_elem + ALPHA * per_unit
        };
        e.samples += 1;
    }

    /// Maintenance dispatch counts: `(incremental, rebuild)`.
    pub fn maintenance_dispatches(&self) -> (u64, u64) {
        (
            self.maint_dispatched[MAINT_INCREMENTAL].load(Ordering::Relaxed),
            self.maint_dispatched[MAINT_REBUILD].load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the maintenance mispredict-ratio histogram (same
    /// scale as [`Self::mispredict_histogram`]).
    pub fn maint_mispredict_histogram(&self) -> Histogram {
        self.maint_mispredict.snapshot()
    }

    /// Dispatch counts per algorithm, summed over all size buckets
    /// (order matches [`Algorithm::ALL`]).
    pub fn dispatch_totals(&self) -> [u64; ALGS] {
        let mut totals = [0u64; ALGS];
        for row in &self.dispatched {
            for (t, c) in totals.iter_mut().zip(row) {
                *t += c.load(Ordering::Relaxed);
            }
        }
        totals
    }

    /// Non-empty rows of the (size-bucket × algorithm) dispatch matrix:
    /// `(upper size bound of bucket, per-algorithm counts)`.
    pub fn dispatch_by_bucket(&self) -> Vec<(usize, [u64; ALGS])> {
        let mut rows = Vec::new();
        for (b, row) in self.dispatched.iter().enumerate() {
            let counts: [u64; ALGS] = std::array::from_fn(|i| row[i].load(Ordering::Relaxed));
            if counts.iter().any(|&c| c > 0) {
                let hi = if b >= usize::BITS as usize { usize::MAX } else { 1usize << b };
                rows.push((hi, counts));
            }
        }
        rows
    }

    /// The up-to-`k` most recent dispatch decisions, oldest first.
    pub fn recent_decisions(&self, k: usize) -> Vec<PlanDecision> {
        self.decisions.recent(k)
    }

    /// Snapshot of the mispredict-ratio histogram (values are
    /// `measured/predicted ×` [`MISPREDICT_SCALE`]; only completions
    /// whose bucket already held a prediction are scored).
    pub fn mispredict_histogram(&self) -> Histogram {
        self.mispredict.snapshot()
    }

    /// Non-empty rows of the (op kind × algorithm) dispatch matrix.
    pub fn dispatch_by_op(&self) -> Vec<(OpKind, [u64; ALGS])> {
        let mut rows = Vec::new();
        for (k, row) in self.dispatched_by_op.iter().enumerate() {
            let counts: [u64; ALGS] = std::array::from_fn(|i| row[i].load(Ordering::Relaxed));
            if counts.iter().any(|&c| c > 0) {
                rows.push((OpKind::ALL[k], counts));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default dimension most tests dispatch under.
    const RANK: OpKind = OpKind::Rank;
    const RB: usize = 8;

    fn choose1(planner: &Planner, n: usize, pinned: Option<Algorithm>) -> Plan {
        planner.choose(n, RANK, RB, pinned)
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
    }

    #[test]
    fn prior_dispatches_by_size() {
        let planner = Planner::new(4);
        assert_eq!(choose1(&planner, 100, None).algorithm, Algorithm::Serial);
        let big = choose1(&planner, 2_000_000, None);
        assert_eq!(big.algorithm, Algorithm::ReidMiller);
        // Tuned m is within the host over-decomposition bounds.
        let m = big.m.expect("reid-miller gets a tuned m");
        assert!((2..=500_000).contains(&m), "m = {m}");
    }

    #[test]
    fn measurements_override_prior() {
        let planner = Planner::new(4);
        let n = 1 << 20;
        // Feed history claiming serial is far cheaper in this bucket.
        for _ in 0..8 {
            planner.record(n, RANK, Algorithm::Serial, 1_000);
            planner.record(n, RANK, Algorithm::ReidMiller, 1_000_000_000);
        }
        assert_eq!(choose1(&planner, n, None).algorithm, Algorithm::Serial);
    }

    #[test]
    fn history_is_keyed_per_op_kind() {
        // Rank history claiming Serial wins must not leak into the
        // affine dimension of the same bucket: affine still follows its
        // own (parallel) prior, and once affine history lands it drives
        // affine dispatch independently.
        let planner = Planner::new(4);
        let n = 1 << 21;
        for _ in 0..8 {
            planner.record(n, OpKind::Rank, Algorithm::Serial, 1_000);
            planner.record(n, OpKind::Rank, Algorithm::ReidMiller, 1_000_000_000);
        }
        assert_eq!(planner.choose(n, OpKind::Rank, 8, None).algorithm, Algorithm::Serial);
        assert_eq!(
            planner.choose(n, OpKind::Affine, 16, None).algorithm,
            Algorithm::ReidMiller,
            "affine dimension starts from its own prior"
        );
        for _ in 0..8 {
            planner.record(n, OpKind::Affine, Algorithm::Serial, 2_000_000_000);
            planner.record(n, OpKind::Affine, Algorithm::ReidMiller, 1_000);
        }
        assert_eq!(planner.choose(n, OpKind::Affine, 16, None).algorithm, Algorithm::ReidMiller);
        assert_eq!(
            planner.choose(n, OpKind::Rank, 8, None).algorithm,
            Algorithm::Serial,
            "rank dimension unchanged by affine history"
        );
    }

    #[test]
    fn pinned_sample_does_not_poison_bucket() {
        // One pinned ReidMiller job leaves an RM-only measurement in a
        // bucket; unpinned dispatch must still follow the prior
        // (Serial on a 1-thread engine) rather than the stray sample.
        let planner = Planner::new(1);
        let n = 1 << 14;
        planner.record(n, RANK, Algorithm::ReidMiller, 1_000);
        for _ in 0..8 {
            assert_eq!(choose1(&planner, n, None).algorithm, Algorithm::Serial);
        }
    }

    #[test]
    fn ewma_history_overrides_prior_in_both_directions() {
        // The converse of `measurements_override_prior`: a bucket whose
        // prior is Serial (tiny jobs) must flip to Reid-Miller once
        // measured history says Reid-Miller is cheaper there.
        let planner = Planner::new(4);
        let n = 100;
        assert_eq!(choose1(&planner, n, None).algorithm, Algorithm::Serial, "prior");
        for _ in 0..8 {
            planner.record(n, RANK, Algorithm::Serial, 1_000_000);
            planner.record(n, RANK, Algorithm::ReidMiller, 1_000);
        }
        assert_eq!(choose1(&planner, n, None).algorithm, Algorithm::ReidMiller);
    }

    #[test]
    fn ewma_converges_past_a_first_sample_outlier() {
        // The first sample seeds the EWMA outright; sustained later
        // samples must pull it to the true level (α = 0.25 closes an
        // initial 100× gap well within 20 observations).
        let planner = Planner::new(4);
        let n = 1 << 20;
        planner.record(n, RANK, Algorithm::Serial, 100_000_000); // outlier: 100ns/elem
        for _ in 0..20 {
            planner.record(n, RANK, Algorithm::Serial, 1_000_000); // steady: 1ns/elem
        }
        planner.record(n, RANK, Algorithm::ReidMiller, 10_000_000); // 10ns/elem
        assert_eq!(
            choose1(&planner, n, None).algorithm,
            Algorithm::Serial,
            "EWMA must have converged below Reid-Miller's 10ns/elem"
        );
    }

    #[test]
    fn probing_still_exercises_the_unmeasured_contender() {
        // Prior (Reid-Miller at this size / parallelism) measured, the
        // contender not: every PROBE_EVERY-th dispatch in the bucket
        // must go to the unmeasured algorithm so history covers both.
        let planner = Planner::new(4);
        let n = 2_000_000;
        assert_eq!(choose1(&planner, n, None).algorithm, Algorithm::ReidMiller);
        planner.record(n, RANK, Algorithm::ReidMiller, 1_000);
        let picks: Vec<Algorithm> =
            (0..2 * PROBE_EVERY).map(|_| choose1(&planner, n, None).algorithm).collect();
        let serial = picks.iter().filter(|&&a| a == Algorithm::Serial).count();
        assert!(serial >= 1, "no probe of the unmeasured contender in {picks:?}");
        assert!(
            serial <= 2 * (PROBE_EVERY as usize).div_ceil(8),
            "probing should be rare: {serial} of {} dispatches",
            picks.len()
        );
    }

    #[test]
    fn bucket_boundaries_dispatch_stably() {
        // 2^k - 1 and 2^k sit in different buckets; history recorded in
        // one must not leak into the other, and every n inside one
        // bucket sees the same decision.
        assert_ne!(bucket_of((1 << 14) - 1), bucket_of(1 << 14));
        assert_eq!(bucket_of(1 << 14), bucket_of((1 << 15) - 1));
        let planner = Planner::new(4);
        for _ in 0..8 {
            planner.record(1 << 14, RANK, Algorithm::Serial, 1_000_000_000);
            planner.record(1 << 14, RANK, Algorithm::ReidMiller, 1_000);
        }
        assert_eq!(choose1(&planner, 1 << 14, None).algorithm, Algorithm::ReidMiller);
        assert_eq!(choose1(&planner, (1 << 15) - 1, None).algorithm, Algorithm::ReidMiller);
        // The bucket below holds no history: prior (Serial at 4 threads
        // for 2^14 - 1 vertices? the model decides — but stably).
        let below = choose1(&planner, (1 << 14) - 1, None).algorithm;
        for _ in 0..4 {
            assert_eq!(choose1(&planner, (1 << 14) - 1, None).algorithm, below);
        }
    }

    #[test]
    fn sharded_decision_is_budget_aware() {
        let planner = Planner::new(4);
        let budget = 1 << 20;
        // Fits: monolithic, and not counted as a sharded dispatch.
        match planner.choose_sharded(budget, budget, RANK, RB, None) {
            ShardDecision::Monolithic(_) => {}
            other => panic!("expected monolithic fallback, got {other:?}"),
        }
        // Above budget: sharded, balanced, within budget.
        match planner.choose_sharded(10 * budget + 17, budget, RANK, RB, None) {
            ShardDecision::Sharded { shard_size, shards, lanes } => {
                assert!(shard_size <= budget);
                assert_eq!(shards, (10 * budget + 17usize).div_ceil(shard_size));
                assert!(lanes >= 1);
            }
            other => panic!("expected sharded dispatch, got {other:?}"),
        }
        // Pinning forces the monolithic path even above budget.
        match planner.choose_sharded(10 * budget, budget, RANK, RB, Some(Algorithm::Wyllie)) {
            ShardDecision::Monolithic(plan) => assert_eq!(plan.algorithm, Algorithm::Wyllie),
            other => panic!("pinned must be monolithic, got {other:?}"),
        }
    }

    #[test]
    fn tuned_m_scales_with_lanes() {
        // The m/lanes contract: with K lanes each worker wants ≥ K live
        // sublists, so the task floor is p·8·K and the planner's chosen
        // m must clear it (until the n/4 cap binds).
        let planner = Planner::new(4);
        let n = 1 << 22;
        let plan = choose1(&planner, n, None);
        assert_eq!(plan.algorithm, Algorithm::ReidMiller);
        let m = plan.m.expect("reid-miller gets a tuned m");
        assert!(m >= 4 * 8 * plan.lanes, "m = {m} below the 8·K floor for lanes = {}", plan.lanes);
        assert!(m <= n / 4);
        // Pinning a taller lane count raises the floor accordingly.
        let tall = Planner::new(4).with_lanes_override(Some(16));
        let plan = tall.choose(n, RANK, RB, None);
        assert_eq!(plan.lanes, 16);
        assert!(plan.m.expect("tuned m") >= 4 * 8 * 16);
    }

    #[test]
    fn lane_override_pins_every_bucket() {
        let planner = Planner::new(2).with_lanes_override(Some(4));
        for n in [100usize, 1 << 18, 1 << 24] {
            let plan = planner.choose(n, RANK, RB, None);
            if plan.algorithm == Algorithm::ReidMiller {
                assert_eq!(plan.lanes, 4);
            }
        }
        match planner.choose_sharded(1 << 24, 1 << 20, RANK, RB, None) {
            ShardDecision::Sharded { lanes, .. } => assert_eq!(lanes, 4),
            other => panic!("expected sharded dispatch, got {other:?}"),
        }
    }

    #[test]
    fn lane_history_overrides_prior_and_probes_the_ladder() {
        let planner = Planner::new(4);
        let n = 1 << 22;
        // Cold start: the model's prior (default lanes above the
        // cache-resident threshold).
        assert_eq!(choose1(&planner, n, None).lanes, rankmodel::predict::default_lanes(n), "prior");
        // Feed history claiming 2 lanes beat the default in this
        // bucket: the tuner must follow the measurement.
        for _ in 0..8 {
            planner.record_lanes(n, 2, 1_000_000);
            planner.record_lanes(n, rankmodel::predict::default_lanes(n), 64_000_000);
        }
        let picks: Vec<usize> =
            (0..2 * PROBE_EVERY).map(|_| choose1(&planner, n, None).lanes).collect();
        assert!(
            picks.iter().filter(|&&k| k == 2).count() >= picks.len() / 2,
            "measured best must dominate: {picks:?}"
        );
        // The unmeasured rungs (1, 4, 16) still get probed.
        assert!(
            picks.iter().any(|&k| k != 2 && k != rankmodel::predict::default_lanes(n)),
            "no probe of unmeasured lane candidates in {picks:?}"
        );
    }

    #[test]
    fn single_thread_prior_uses_lanes_for_big_jobs() {
        // p = 1 is no longer auto-Serial: above the cache-resident
        // threshold the lane-discounted model sends big jobs to
        // Reid-Miller even on one thread (and small jobs stay Serial).
        let planner = Planner::new(1);
        assert_eq!(choose1(&planner, 10_000, None).algorithm, Algorithm::Serial);
        let plan = choose1(&planner, 1 << 23, None);
        assert_eq!(plan.algorithm, Algorithm::ReidMiller);
        assert!(plan.lanes >= 2, "latency hiding needs lanes: {plan:?}");
    }

    #[test]
    fn pinned_overrides_everything() {
        let planner = Planner::new(4);
        assert_eq!(choose1(&planner, 100, Some(Algorithm::Wyllie)).algorithm, Algorithm::Wyllie);
        let totals = planner.dispatch_totals();
        assert_eq!(totals[alg_index(Algorithm::Wyllie)], 1);
    }

    #[test]
    fn mispredict_histogram_scores_predictions() {
        let planner = Planner::new(4);
        let n = 1 << 20;
        // First sample seeds the EWMA — nothing to score yet.
        planner.record(n, RANK, Algorithm::Serial, n as u64); // 1 ns/elem
        assert!(planner.mispredict_histogram().is_empty());
        // Second sample runs 2× the prediction: ratio ≈ 2 × SCALE.
        planner.record(n, RANK, Algorithm::Serial, 2 * n as u64);
        let h = planner.mispredict_histogram();
        assert_eq!(h.count(), 1);
        let (lo, hi) = h.percentile_bounds(50.0);
        assert!(
            lo <= 2 * MISPREDICT_SCALE && 2 * MISPREDICT_SCALE <= hi,
            "2× mispredict outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn decision_log_records_dispatches() {
        let planner = Planner::new(4);
        planner.choose(100, OpKind::Rank, 8, None);
        planner.choose(2_000_000, OpKind::Add, 8, None);
        let ds = planner.recent_decisions(8);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].n, 100);
        assert_eq!(ds[0].op, OpKind::Rank);
        assert!(!ds[0].pinned);
        assert_eq!(ds[1].op, OpKind::Add);
        // A measured bucket reports its prediction with the decision.
        planner.record(100, OpKind::Rank, ds[0].algorithm, 1_000);
        planner.choose(100, OpKind::Rank, 8, None);
        let last = planner.recent_decisions(1);
        assert!(last[0].predicted_ns_per_elem > 0.0);
        // Sharded dispatches log their shard count.
        planner.choose_sharded(1 << 24, 1 << 20, OpKind::Rank, 8, None);
        let last = planner.recent_decisions(1);
        assert!(last[0].shards > 1, "sharded decision logged: {:?}", last[0]);
    }

    /// The paper-scale dynamic case the rankmodel prior is pinned on:
    /// 2^22 vertices, 64 shards of 2^16, blocked-topology fragments.
    const MAINT_N: usize = 1 << 22;
    const MAINT_SHARD: usize = 1 << 16;
    const MAINT_FRAGS: usize = MAINT_N / 4096;

    #[test]
    fn maintenance_prior_pins_both_crossover_sides() {
        let planner = Planner::new(8);
        let shards = MAINT_N / MAINT_SHARD;
        // ≤ 5% dirty: patch in place.
        let d = planner.choose_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, shards / 20);
        assert!(d.incremental, "low dirty fraction must go incremental: {d:?}");
        assert_eq!((d.dirty, d.shards), (shards / 20, shards));
        assert_eq!(d.predicted_ns, 0.0, "cold bucket has no EWMA prediction");
        // Most shards dirty: fall back to a from-scratch build.
        let d = planner.choose_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, (9 * shards) / 10);
        assert!(!d.incremental, "high dirty fraction must rebuild: {d:?}");
        // Fully dirty short-circuits (nothing clean to reuse).
        let d = planner.choose_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, shards);
        assert!(!d.incremental);
        // Fragment-heavy topologies pay the serial re-assembly: rebuild
        // even at one dirty shard.
        let d = planner.choose_maintenance(MAINT_N, MAINT_SHARD, MAINT_N, 1);
        assert!(!d.incremental, "fragment-heavy must rebuild: {d:?}");
        let (incr, reb) = planner.maintenance_dispatches();
        assert_eq!((incr, reb), (1, 3));
    }

    #[test]
    fn maintenance_history_overrides_prior_in_both_directions() {
        let shards = MAINT_N / MAINT_SHARD;
        // Measured history claiming patching is ruinously slow must
        // flip a prior-incremental bucket to rebuild...
        let planner = Planner::new(8);
        for _ in 0..8 {
            planner.record_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, 3, true, u64::MAX >> 20);
            planner.record_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, shards, false, 1_000);
        }
        let d = planner.choose_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, 3);
        assert!(!d.incremental, "measured-slow patching must fall back: {d:?}");
        assert!(d.predicted_ns > 0.0, "measured bucket reports its prediction");
        // ...and cheap measured patching must rescue a prior-rebuild
        // dirty fraction.
        let planner = Planner::new(8);
        for _ in 0..8 {
            planner.record_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, 57, true, 1_000);
            planner.record_maintenance(
                MAINT_N,
                MAINT_SHARD,
                MAINT_FRAGS,
                shards,
                false,
                u64::MAX >> 20,
            );
        }
        let d = planner.choose_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, (9 * shards) / 10);
        assert!(d.incremental, "measured-cheap patching must win: {d:?}");
        // But never on a fully-dirty batch, whatever the history says.
        let d = planner.choose_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, shards);
        assert!(!d.incremental, "fully dirty is a rebuild by construction");
    }

    #[test]
    fn maintenance_probes_the_unmeasured_strategy() {
        let planner = Planner::new(8);
        // Only the prior side (incremental at 3/64 dirty) measured:
        // the probe cadence must still exercise rebuild.
        planner.record_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, 3, true, 1_000);
        let picks: Vec<bool> = (0..2 * PROBE_EVERY)
            .map(|_| planner.choose_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, 3).incremental)
            .collect();
        let rebuilds = picks.iter().filter(|&&i| !i).count();
        assert!(rebuilds >= 1, "no probe of the unmeasured rebuild in {picks:?}");
        assert!(rebuilds <= 4, "probing should be rare: {rebuilds} of {}", picks.len());
    }

    #[test]
    fn maintenance_mispredict_histogram_scores_predictions() {
        let planner = Planner::new(8);
        // First sample seeds the EWMA — nothing to score yet.
        planner.record_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, 3, true, 1_000_000);
        assert!(planner.maint_mispredict_histogram().is_empty());
        // Second sample runs 2× the prediction: ratio ≈ 2 × SCALE.
        planner.record_maintenance(MAINT_N, MAINT_SHARD, MAINT_FRAGS, 3, true, 2_000_000);
        let h = planner.maint_mispredict_histogram();
        assert_eq!(h.count(), 1);
        let (lo, hi) = h.percentile_bounds(50.0);
        assert!(
            lo <= 2 * MISPREDICT_SCALE && 2 * MISPREDICT_SCALE <= hi,
            "2× mispredict outside [{lo}, {hi}]"
        );
        // The query-plane histogram is untouched.
        assert!(planner.mispredict_histogram().is_empty());
    }

    #[test]
    fn op_dispatch_matrix_tracks_kinds() {
        let planner = Planner::new(4);
        planner.choose(100, OpKind::Rank, 8, None);
        planner.choose(100, OpKind::Max, 8, None);
        planner.choose(100, OpKind::Max, 8, None);
        let rows = planner.dispatch_by_op();
        let get = |k: OpKind| {
            rows.iter().find(|(op, _)| *op == k).map(|(_, c)| c.iter().sum::<u64>()).unwrap_or(0)
        };
        assert_eq!(get(OpKind::Rank), 1);
        assert_eq!(get(OpKind::Max), 2);
        assert_eq!(get(OpKind::Xor), 0);
    }
}
