//! A minimal safe wrapper over `poll(2)` — the only readiness
//! primitive the event-driven server needs, and the only FFI in the
//! workspace.
//!
//! The crate is `#![deny(unsafe_code)]`; the raw declaration and the
//! two `unsafe` expressions live in the tiny `ffi` module below with a
//! scoped allow, so the rest of the crate stays statically
//! unsafe-free. `poll` is in POSIX.1-2001 and is provided by the same
//! `libc` every Rust std binary on unix already links — no new
//! dependency.
#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;

/// Readiness: data available to read (POLLIN).
pub const POLLIN: i16 = 0x001;
/// Readiness: writable without blocking (POLLOUT).
pub const POLLOUT: i16 = 0x004;
/// Condition: error on the fd (POLLERR; revents-only).
pub const POLLERR: i16 = 0x008;
/// Condition: peer hung up (POLLHUP; revents-only).
pub const POLLHUP: i16 = 0x010;
/// Condition: fd not open (POLLNVAL; revents-only).
pub const POLLNVAL: i16 = 0x020;

/// One fd's interest set and, after [`poll`], its readiness. Layout
/// matches `struct pollfd` exactly so the slice can be handed to the
/// kernel as-is.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Interest in `events` (a bitmask of [`POLLIN`] / [`POLLOUT`])
    /// on `fd`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// The fd this entry watches.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Readiness reported by the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the fd is readable (or has an error/hangup condition,
    /// which reads surface as `Ok(0)` / `Err` — both must wake the
    /// read path).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the fd is writable (or in an error state the write
    /// path must observe).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[allow(unsafe_code)]
mod ffi {
    use super::PollFd;

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    /// Invoke `poll(2)` on the slice. Safety: `PollFd` is
    /// `#[repr(C)]` with the exact `struct pollfd` layout, and the
    /// pointer/length pair comes from a live mutable slice.
    pub(super) fn poll_raw(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) }
    }
}

/// Block until at least one fd in `fds` is ready or `timeout_ms`
/// elapses (`-1` = no timeout). Returns the number of ready entries
/// (`0` on timeout); `revents` is updated in place. `EINTR` is
/// retried internally — callers never see it.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = ffi::poll_raw(fds, timeout_ms);
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readable_after_write() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, 0).expect("poll");
        assert_eq!(ready, 0, "nothing written yet");
        assert!(!fds[0].readable());
        a.write_all(b"x").expect("write");
        let ready = poll(&mut fds, 1000).expect("poll");
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn reports_writable_and_hangup() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let ready = poll(&mut fds, 1000).expect("poll");
        assert_eq!(ready, 1, "fresh socket has send-buffer space");
        assert!(fds[0].writable());
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, 1000).expect("poll");
        assert_eq!(ready, 1, "peer close must wake the read interest");
        assert!(fds[0].readable());
    }
}
