//! Scratch-buffer pool: per-job working memory reused across jobs.
//!
//! Every ranking/scan job needs O(n) working arrays (boundary bitmap,
//! head map, reduced-list arrays — see `listrank::host::RankScratch`).
//! Allocating them per job makes the allocator the bottleneck at high
//! job rates; the pool keeps up to `max_idle` scratches alive and hands
//! them to workers, growing each scratch to the largest job it has
//! served.

use listrank::host::RankScratch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Pool statistics snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Acquisitions served by a pooled scratch.
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh scratch.
    pub misses: u64,
    /// Scratches currently idle in the pool.
    pub idle: usize,
}

impl PoolStats {
    /// Fraction of acquisitions served from the pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default cap on the total heap the pool keeps alive while idle.
/// Scratches grow to the largest job they served (≈ 4.1 bytes/vertex:
/// a 4-byte head map plus the packed 1-bit boundary bitset), so
/// without a byte budget one 10⁷-vertex job per worker would pin
/// hundreds of megabytes for the engine's remaining lifetime.
pub const DEFAULT_MAX_RETAINED_BYTES: usize = 256 << 20;

/// A shared pool of [`RankScratch`] buffers.
pub struct ScratchPool {
    idle: Mutex<Vec<RankScratch>>,
    max_idle: usize,
    max_retained_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScratchPool {
    /// A pool retaining at most `max_idle` idle scratches (typically the
    /// worker count: one in flight per worker plus none wasted) and at
    /// most [`DEFAULT_MAX_RETAINED_BYTES`] of idle heap.
    pub fn new(max_idle: usize) -> Self {
        Self::with_byte_budget(max_idle, DEFAULT_MAX_RETAINED_BYTES)
    }

    /// A pool with an explicit idle-heap budget.
    pub fn with_byte_budget(max_idle: usize, max_retained_bytes: usize) -> Self {
        ScratchPool {
            idle: Mutex::new(Vec::with_capacity(max_idle)),
            max_idle: max_idle.max(1),
            max_retained_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Take a scratch (pooled if available, fresh otherwise). Prefers
    /// the largest idle scratch so big jobs reuse big buffers instead
    /// of growing a small one while the big one sits idle.
    pub fn acquire(&self) -> RankScratch {
        let mut idle = self.idle.lock().expect("pool poisoned");
        let largest =
            idle.iter().enumerate().max_by_key(|(_, s)| s.footprint_bytes()).map(|(i, _)| i);
        match largest {
            Some(i) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                idle.swap_remove(i)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                RankScratch::new()
            }
        }
    }

    /// Return a scratch to the pool. Dropped instead if the pool is
    /// full or retaining it would exceed the byte budget (evicting the
    /// smallest idle scratch first when the incoming one is bigger —
    /// big buffers are the expensive ones to reallocate).
    pub fn release(&self, scratch: RankScratch) {
        let incoming = scratch.footprint_bytes();
        let mut idle = self.idle.lock().expect("pool poisoned");
        if idle.len() >= self.max_idle {
            return;
        }
        let mut retained: usize = idle.iter().map(RankScratch::footprint_bytes).sum();
        while retained + incoming > self.max_retained_bytes {
            // Evict the smallest idle scratch; if none is left and the
            // incoming scratch alone busts the budget, drop it.
            let Some((i, smallest)) = idle
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.footprint_bytes()))
                .min_by_key(|&(_, b)| b)
            else {
                return;
            };
            if smallest >= incoming {
                return; // everything idle is at least as valuable
            }
            idle.swap_remove(i);
            retained -= smallest;
        }
        idle.push(scratch);
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            idle: self.idle.lock().expect("pool poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_buffers() {
        let pool = ScratchPool::new(2);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.stats().misses, 2);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.stats().idle, 2);
        let _c = pool.acquire();
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn pool_caps_idle() {
        let pool = ScratchPool::new(1);
        let a = pool.acquire();
        let b = pool.acquire();
        pool.release(a);
        pool.release(b); // dropped, pool already holds one
        assert_eq!(pool.stats().idle, 1);
    }

    #[test]
    fn pool_respects_byte_budget() {
        let small = RankScratch::with_capacity(1000); // ≈ 4.1 kB
        let big = RankScratch::with_capacity(2000); // ≈ 8.3 kB
        let budget = big.footprint_bytes();
        let pool = ScratchPool::with_byte_budget(4, budget);
        pool.release(small);
        assert_eq!(pool.stats().idle, 1);
        // The bigger scratch evicts the smaller to stay within budget.
        pool.release(big);
        assert_eq!(pool.stats().idle, 1);
        assert!(pool.acquire().footprint_bytes() >= budget);
        // A scratch that alone busts the budget is dropped outright.
        let pool = ScratchPool::with_byte_budget(4, 10);
        pool.release(RankScratch::with_capacity(1000));
        assert_eq!(pool.stats().idle, 0);
    }
}
