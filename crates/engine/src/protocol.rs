//! The `rankd` wire protocol: length-prefixed binary frames over a
//! byte stream.
//!
//! This module is the **single codec** for both sides: the server
//! ([`crate::server`]) decodes requests and encodes replies with these
//! functions, and the in-process [`crate::client::Client`] does the
//! reverse — so a frame that round-trips here round-trips on the wire.
//! The byte-level layout is specified (with a fully worked example) in
//! `docs/PROTOCOL.md`; the test suite replays the documented bytes
//! through [`decode_request`] to keep the document honest.
//!
//! ## Framing
//!
//! Every frame, in both directions, is:
//!
//! ```text
//! offset 0: u32 LE  len   — byte length of everything after this field
//! offset 4: u8      kind  — FrameKind discriminant
//! offset 5: ...     body  — len - 1 bytes, layout per kind
//! ```
//!
//! All integers are little-endian. A connection starts with a
//! [`FrameKind::Hello`] handshake carrying [`MAGIC`] and [`VERSION`];
//! requests after a successful handshake decode into typed
//! [`WireRequest`] values that map 1:1 onto the engine's
//! [`crate::Request`] builders. Malformed bodies produce a typed
//! [`WireError`] (which the server answers with a
//! [`FrameKind::Error`] frame *without* dropping the connection);
//! only unrecoverable conditions — handshake failure, an oversized
//! length prefix — close it.

use crate::op::OpKind;
use crate::telemetry::hist;
use crate::telemetry::{Histogram, Phase};
use listkit::dynamic::Edit;
use listkit::ops::Affine;
use listkit::LinkedList;
use listrank::Algorithm;
use std::io::{Read, Write};

/// Handshake magic: the bytes `"RNKD"` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"RNKD");

/// Protocol version carried (and checked) in the HELLO handshake.
///
/// Version history: **1** — initial protocol. **2** — OUTPUT gained a
/// `trace_id: u64` field, and the STATS_V2 / STATS_V2_OK frame pair
/// (histogram blocks) was added. **3** — the resident-dataset plane:
/// PUT / PUT_OK, RANK_H / SCAN_H / SEGSCAN_H, DROP / DROP_OK, error
/// codes `stale_handle` and `store_full`, and the STATS_V2 `store`
/// gauge block. v3 is purely additive over v2 (no existing layout
/// changed), so servers accept HELLOs from [`MIN_VERSION`] up.
/// **4** — dynamic lists: MUTATE / MUTATE_OK (batched splice / delete /
/// append edits against a resident handle), error code `bad_mutation`,
/// and the STATS_V2 `mutate` gauge block. v4 is again purely additive,
/// so [`MIN_VERSION`] stays at 2. **5** — resilience: the
/// [`FLAG_DEADLINE`] request flag (an optional per-request
/// `deadline_ms: u64` after the flags byte in the six job-bearing
/// kinds), error codes `internal_error`, `deadline_exceeded`, and
/// `overloaded`, and the STATS_V2 `fault` gauge block. v5 is purely
/// additive; a server only honors the deadline flag on connections
/// that negotiated v5 or newer (from an older client it is malformed),
/// so [`MIN_VERSION`] stays at 2. **6** — pipelining and QoS: the
/// [`FLAG_BATCH`] priority flag and the [`FLAG_REQUEST_ID`] flag (an
/// optional client-chosen `request_id: u64` after the deadline field;
/// requests carrying it may overlap on one connection and are answered
/// with [`FrameKind::OutputP`] / [`FrameKind::ErrorP`] frames echoing
/// the id, in completion order), error code `quota_exceeded`, and the
/// STATS_V2 `sched` gauge + `pipeline` histogram blocks. v6 is purely
/// additive; a server only honors the new flags on connections that
/// negotiated v6 or newer, so [`MIN_VERSION`] stays at 2.
pub const VERSION: u16 = 6;

/// Oldest HELLO version a server still accepts. v2–v4 clients speak
/// strict subsets of v5 (they simply never send handle, mutation, or
/// deadline-flagged frames); v1 is rejected because the OUTPUT layout
/// changed in v2.
pub const MIN_VERSION: u16 = 2;

/// Default cap on `len` a peer will accept (256 MiB): large enough for
/// a 10^7-vertex scan with 16-byte values, small enough that a corrupt
/// length prefix cannot trigger a multi-gigabyte allocation.
pub const MAX_FRAME_DEFAULT: u32 = 1 << 28;

/// Frame discriminants. Client→server kinds sit below `0x80`,
/// server→client kinds at or above it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client handshake: magic + version.
    Hello = 0x01,
    /// Rank request: a successor array to rank.
    Rank = 0x02,
    /// Scan request: successor array + operator + value array.
    Scan = 0x03,
    /// Segmented-scan request: scan + a packed segment-start bitmap.
    SegScan = 0x04,
    /// Metrics request (no body).
    Stats = 0x05,
    /// Ask the daemon to drain and exit (no body).
    Shutdown = 0x06,
    /// Histogram-level metrics request (no body).
    StatsV2 = 0x07,
    /// Admit a dataset into the resident store; replied with PUT_OK.
    Put = 0x08,
    /// Rank request against a resident dataset named by handle.
    RankH = 0x09,
    /// Scan request against a resident dataset named by handle.
    ScanH = 0x0A,
    /// Segmented-scan request against a resident dataset by handle.
    SegScanH = 0x0B,
    /// Drop a resident dataset; replied with DROP_OK.
    Drop = 0x0C,
    /// Apply a batch of edits to a resident dataset; replied with
    /// MUTATE_OK.
    Mutate = 0x0D,
    /// Handshake accepted: server version + frame-size cap.
    HelloOk = 0x81,
    /// Job result: execution metadata + output payload.
    Output = 0x82,
    /// Metrics reply: counter block + rendered engine stats.
    StatsOk = 0x85,
    /// Shutdown acknowledged; the daemon is draining.
    ShutdownOk = 0x86,
    /// Histogram-level metrics reply: tagged blocks of latency
    /// histograms, gauges, and planner dispatch rows.
    StatsV2Ok = 0x87,
    /// Dataset admitted: handle + bytes charged to the store budget.
    PutOk = 0x88,
    /// Dataset dropped (no body).
    DropOk = 0x89,
    /// Mutation batch applied: edit count, new length, maintenance
    /// mode, dirty-shard and artifact counts, execution time.
    MutateOk = 0x8A,
    /// Pipelined job result (protocol v6): `request_id: u64` followed
    /// by a standard OUTPUT body. Sent only for requests that carried
    /// [`FLAG_REQUEST_ID`]; replies arrive in completion order.
    OutputP = 0x8B,
    /// Typed error reply: code + UTF-8 message.
    Error = 0xEE,
    /// Pipelined typed error reply (protocol v6): `request_id: u64`
    /// followed by a standard ERROR body. Sent only for requests that
    /// carried [`FLAG_REQUEST_ID`].
    ErrorP = 0xEF,
}

impl FrameKind {
    /// Decode a kind byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Hello,
            0x02 => FrameKind::Rank,
            0x03 => FrameKind::Scan,
            0x04 => FrameKind::SegScan,
            0x05 => FrameKind::Stats,
            0x06 => FrameKind::Shutdown,
            0x07 => FrameKind::StatsV2,
            0x08 => FrameKind::Put,
            0x09 => FrameKind::RankH,
            0x0A => FrameKind::ScanH,
            0x0B => FrameKind::SegScanH,
            0x0C => FrameKind::Drop,
            0x0D => FrameKind::Mutate,
            0x81 => FrameKind::HelloOk,
            0x82 => FrameKind::Output,
            0x85 => FrameKind::StatsOk,
            0x86 => FrameKind::ShutdownOk,
            0x87 => FrameKind::StatsV2Ok,
            0x88 => FrameKind::PutOk,
            0x89 => FrameKind::DropOk,
            0x8A => FrameKind::MutateOk,
            0x8B => FrameKind::OutputP,
            0xEE => FrameKind::Error,
            0xEF => FrameKind::ErrorP,
            _ => return None,
        })
    }
}

/// Scan operators expressible on the wire. The engine's typed API takes
/// *any* [`listkit::ScanOp`]; a byte protocol needs a closed set, so
/// the wire carries the operators the workspace ships. The operator
/// determines the element encoding ([`WireOp::elem_bytes`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WireOp {
    /// `i64` wrapping addition ([`listkit::ops::AddOp`]), 8-byte elements.
    Add = 1,
    /// `i64` maximum ([`listkit::ops::MaxOp`]), 8-byte elements.
    Max = 2,
    /// `i64` minimum ([`listkit::ops::MinOp`]), 8-byte elements.
    Min = 3,
    /// `u64` bitwise xor ([`listkit::ops::XorOp`]), 8-byte elements.
    Xor = 4,
    /// Affine-map composition ([`listkit::ops::AffineOp`],
    /// non-commutative), 16-byte elements (`a: i64`, `b: i64`).
    Affine = 5,
}

impl WireOp {
    /// All wire operators, in code order.
    pub const ALL: [WireOp; 5] =
        [WireOp::Add, WireOp::Max, WireOp::Min, WireOp::Xor, WireOp::Affine];

    /// Decode an operator byte.
    pub fn from_u8(b: u8) -> Option<WireOp> {
        Some(match b {
            1 => WireOp::Add,
            2 => WireOp::Max,
            3 => WireOp::Min,
            4 => WireOp::Xor,
            5 => WireOp::Affine,
            _ => return None,
        })
    }

    /// Bytes per value element under this operator.
    pub fn elem_bytes(self) -> usize {
        match self {
            WireOp::Add | WireOp::Max | WireOp::Min | WireOp::Xor => 8,
            WireOp::Affine => 16,
        }
    }

    /// Lower-case operator name (matches `rankd --op` spellings).
    pub fn name(self) -> &'static str {
        match self {
            WireOp::Add => "add",
            WireOp::Max => "max",
            WireOp::Min => "min",
            WireOp::Xor => "xor",
            WireOp::Affine => "affine",
        }
    }
}

/// Typed error codes carried by [`FrameKind::Error`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// HELLO magic was not [`MAGIC`]; the connection is closed.
    BadMagic = 1,
    /// HELLO version differs from [`VERSION`]; the connection is closed.
    VersionMismatch = 2,
    /// A frame body failed to decode (bad lengths, an invalid successor
    /// array, trailing bytes). The connection stays open.
    Malformed = 3,
    /// Unknown operator byte in a SCAN/SEGSCAN frame.
    UnknownOp = 4,
    /// The engine rejected the request at submit-time validation.
    InvalidRequest = 5,
    /// The engine is shutting down and accepts no new work.
    EngineShutdown = 6,
    /// The job was cancelled before completion. (Through protocol v4
    /// this code also covered worker panics; v5 reports those as
    /// [`ErrorCode::InternalError`].) The connection stays open.
    JobFailed = 7,
    /// The daemon is at `--max-clients`; retry later.
    Busy = 8,
    /// The length prefix exceeds the frame cap; the connection is
    /// closed (framing can no longer be trusted).
    FrameTooLarge = 9,
    /// A request arrived before the HELLO handshake.
    ExpectedHello = 10,
    /// Unknown frame kind byte.
    UnknownKind = 11,
    /// A handle named no resident dataset owned by this connection
    /// (never issued, dropped, evicted, or PUT by another connection).
    /// The connection stays open.
    StaleHandle = 12,
    /// A PUT could not fit within `--store-budget` even after evicting
    /// every idle resident dataset. The connection stays open.
    StoreFull = 13,
    /// A MUTATE batch was structurally invalid (out-of-range vertex,
    /// splice target inside the moved run, empty batch, unknown edit
    /// kind, …). The batch is atomic — the dataset is untouched — and
    /// the connection stays open.
    BadMutation = 14,
    /// Job execution panicked inside a worker. The panic was isolated:
    /// only this request is lost, the daemon keeps serving, and the
    /// connection stays open. Added in protocol v5.
    InternalError = 15,
    /// The request's [`FLAG_DEADLINE`] deadline expired while the job
    /// was queued; it was dropped before execution. The connection
    /// stays open. Added in protocol v5.
    DeadlineExceeded = 16,
    /// The daemon shed this request at an overload watermark (queue
    /// depth or store pressure) instead of blocking. The message
    /// carries a `retry_after_ms=N` hint; the connection stays open.
    /// Added in protocol v5.
    Overloaded = 17,
    /// The request exceeded a per-tenant quota (in-flight requests or
    /// resident store bytes, keyed by connection identity). The
    /// request was not admitted; the connection stays open. Added in
    /// protocol v6.
    QuotaExceeded = 18,
}

impl ErrorCode {
    /// Decode an error code.
    pub fn from_u16(c: u16) -> Option<ErrorCode> {
        Some(match c {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::VersionMismatch,
            3 => ErrorCode::Malformed,
            4 => ErrorCode::UnknownOp,
            5 => ErrorCode::InvalidRequest,
            6 => ErrorCode::EngineShutdown,
            7 => ErrorCode::JobFailed,
            8 => ErrorCode::Busy,
            9 => ErrorCode::FrameTooLarge,
            10 => ErrorCode::ExpectedHello,
            11 => ErrorCode::UnknownKind,
            12 => ErrorCode::StaleHandle,
            13 => ErrorCode::StoreFull,
            14 => ErrorCode::BadMutation,
            15 => ErrorCode::InternalError,
            16 => ErrorCode::DeadlineExceeded,
            17 => ErrorCode::Overloaded,
            18 => ErrorCode::QuotaExceeded,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadMagic => "bad handshake magic",
            ErrorCode::VersionMismatch => "protocol version mismatch",
            ErrorCode::Malformed => "malformed frame body",
            ErrorCode::UnknownOp => "unknown scan operator",
            ErrorCode::InvalidRequest => "request failed submit validation",
            ErrorCode::EngineShutdown => "engine shutting down",
            ErrorCode::JobFailed => "job failed before completion",
            ErrorCode::Busy => "server at max clients",
            ErrorCode::FrameTooLarge => "frame exceeds size cap",
            ErrorCode::ExpectedHello => "expected HELLO handshake first",
            ErrorCode::UnknownKind => "unknown frame kind",
            ErrorCode::StaleHandle => "stale dataset handle",
            ErrorCode::StoreFull => "dataset store budget exhausted",
            ErrorCode::BadMutation => "invalid mutation batch",
            ErrorCode::InternalError => "job execution panicked",
            ErrorCode::DeadlineExceeded => "request deadline exceeded",
            ErrorCode::Overloaded => "server overloaded, retry later",
            ErrorCode::QuotaExceeded => "tenant quota exceeded",
        };
        f.write_str(s)
    }
}

/// A decode failure: the error code the server should reply with, plus
/// a human-readable detail message.
#[derive(Clone, Debug)]
pub struct WireError {
    /// The [`ErrorCode`] to put on the wire.
    pub code: ErrorCode,
    /// Detail for the error frame's message field.
    pub message: String,
}

impl WireError {
    fn malformed(message: impl Into<String>) -> WireError {
        WireError { code: ErrorCode::Malformed, message: message.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// One raw frame: the kind byte plus its undecoded body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The kind byte (possibly unknown to this peer).
    pub kind: u8,
    /// The body: `len - 1` bytes.
    pub body: Vec<u8>,
}

/// Why [`read_frame`] failed.
#[derive(Debug)]
pub enum ReadFrameError {
    /// Transport error (including EOF in the middle of a frame).
    Io(std::io::Error),
    /// The length prefix exceeds the configured cap; the stream can no
    /// longer be re-synchronized and must be closed.
    TooLarge {
        /// The offending length prefix.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
}

impl std::fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadFrameError::Io(e) => write!(f, "frame read failed: {e}"),
            ReadFrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for ReadFrameError {}

impl From<std::io::Error> for ReadFrameError {
    fn from(e: std::io::Error) -> Self {
        ReadFrameError::Io(e)
    }
}

/// Write one frame; returns the total bytes put on the wire
/// (`4 + 1 + body.len()`). A body whose length cannot be represented
/// in the `u32` prefix is an [`std::io::ErrorKind::InvalidInput`]
/// error at the sender — never a silently wrapped prefix that would
/// desync the peer.
pub fn write_frame(w: &mut impl Write, kind: u8, body: &[u8]) -> std::io::Result<u64> {
    let len = u32::try_from(1 + body.len() as u64).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds the u32 length prefix", body.len()),
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(body)?;
    w.flush()?;
    Ok(4 + 1 + body.len() as u64)
}

/// Read one frame. `Ok(None)` means the peer closed the stream cleanly
/// (EOF before any byte of the next frame); EOF *inside* a frame is an
/// [`ReadFrameError::Io`] error.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Frame>, ReadFrameError> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first read so a clean close is distinguishable from a
    // truncated frame.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                )
                .into())
            }
            k => got += k,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "zero-length frame (missing kind byte)",
        )
        .into());
    }
    if len > max_frame {
        return Err(ReadFrameError::TooLarge { len, max: max_frame });
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let mut body = vec![0u8; len as usize - 1];
    r.read_exact(&mut body)?;
    Ok(Some(Frame { kind: kind[0], body }))
}

// ---------------------------------------------------------------------
// Element encoding
// ---------------------------------------------------------------------

/// A value type with a fixed wire encoding. Sealed in practice to the
/// element types the wire operators use (`i64`, `u64`,
/// [`listkit::ops::Affine`]).
pub trait WireElem: Copy {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Append the little-endian encoding.
    fn put(self, out: &mut Vec<u8>);
    /// Decode from exactly [`Self::BYTES`] bytes.
    fn get(b: &[u8]) -> Self;
}

impl WireElem for i64 {
    const BYTES: usize = 8;
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn get(b: &[u8]) -> Self {
        i64::from_le_bytes(b.try_into().expect("8-byte i64"))
    }
}

impl WireElem for u64 {
    const BYTES: usize = 8;
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn get(b: &[u8]) -> Self {
        u64::from_le_bytes(b.try_into().expect("8-byte u64"))
    }
}

impl WireElem for Affine {
    const BYTES: usize = 16;
    fn put(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }
    fn get(b: &[u8]) -> Self {
        Affine::new(
            i64::from_le_bytes(b[..8].try_into().expect("8-byte a")),
            i64::from_le_bytes(b[8..16].try_into().expect("8-byte b")),
        )
    }
}

/// A decoded value array, typed by the operator that owns it: `i64` for
/// add/max/min, `u64` for xor, [`Affine`] for affine composition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireValues {
    /// Values for [`WireOp::Add`] / [`WireOp::Max`] / [`WireOp::Min`].
    I64(Vec<i64>),
    /// Values for [`WireOp::Xor`].
    U64(Vec<u64>),
    /// Values for [`WireOp::Affine`].
    Affine(Vec<Affine>),
}

fn decode_values(op: WireOp, n: usize, d: &mut Dec<'_>) -> Result<WireValues, WireError> {
    let total = n
        .checked_mul(op.elem_bytes())
        .ok_or_else(|| WireError::malformed("value array length overflows"))?;
    let raw = d.take(total, "value array")?;
    Ok(match op {
        WireOp::Add | WireOp::Max | WireOp::Min => {
            WireValues::I64(raw.chunks_exact(8).map(i64::get).collect())
        }
        WireOp::Xor => WireValues::U64(raw.chunks_exact(8).map(u64::get).collect()),
        WireOp::Affine => WireValues::Affine(raw.chunks_exact(16).map(Affine::get).collect()),
    })
}

// ---------------------------------------------------------------------
// Body decoding
// ---------------------------------------------------------------------

/// Little cursor over a frame body; every under-run is a typed
/// [`WireError`] naming the field that came up short.
struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| WireError::malformed(format!("truncated {what}")))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Every body must be consumed exactly; trailing bytes mean the
    /// peer and we disagree about the layout.
    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(WireError::malformed(format!("{} trailing bytes", self.b.len() - self.pos)))
        }
    }
}

/// Request flag bit: route through the budget-aware shard-parallel
/// plan branch ([`crate::Request::rank_sharded`] and friends).
pub const FLAG_SHARDED: u8 = 0b0000_0001;

/// Request flag bit (protocol v5): a `deadline_ms: u64` follows the
/// flags byte. The deadline is relative — "drop this request if it has
/// not started executing within this many milliseconds of arrival" —
/// and is enforced at dequeue with a typed
/// [`ErrorCode::DeadlineExceeded`] reply. Servers reject the flag as
/// malformed on connections that negotiated a HELLO version below 5.
pub const FLAG_DEADLINE: u8 = 0b0000_0010;

/// Request flag bit (protocol v6): schedule this request in the
/// *batch* QoS class — it dispatches only when no interactive request
/// is queued, except for the scheduler's periodic anti-starvation
/// aging tick. No field follows; clear = interactive (the default).
/// Servers reject the flag as malformed on connections that
/// negotiated a HELLO version below 6.
pub const FLAG_BATCH: u8 = 0b0000_0100;

/// Request flag bit (protocol v6): a client-chosen `request_id: u64`
/// follows the flags byte (after `deadline_ms` when both are set).
/// Requests carrying an id may be *pipelined* — multiple in flight on
/// one connection — and are answered with [`FrameKind::OutputP`] /
/// [`FrameKind::ErrorP`] frames echoing the id, in completion order.
/// Id `0` is reserved (malformed); reusing an id while it is still in
/// flight on the same connection is malformed. Servers reject the
/// flag on connections that negotiated a HELLO version below 6.
pub const FLAG_REQUEST_ID: u8 = 0b0000_1000;

/// The decoded request-flags prefix shared by the six job-bearing
/// frame kinds (protocol v6 superset): the flags byte plus its
/// optional trailing fields, in wire order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReqFlags {
    /// [`FLAG_SHARDED`]: route through the shard-parallel plan branch.
    pub sharded: bool,
    /// [`FLAG_DEADLINE`] (v5): queue deadline in ms, if any.
    pub deadline_ms: Option<u64>,
    /// [`FLAG_BATCH`] (v6): batch QoS class instead of interactive.
    pub batch: bool,
    /// [`FLAG_REQUEST_ID`] (v6): pipelining id, if any (never 0).
    pub request_id: Option<u64>,
}

impl ReqFlags {
    /// Flags for a plain (or sharded) request — no v5/v6 fields.
    pub fn sharded(sharded: bool) -> ReqFlags {
        ReqFlags { sharded, ..ReqFlags::default() }
    }

    /// Set the queue deadline (v5).
    pub fn with_deadline_ms(mut self, ms: u64) -> ReqFlags {
        self.deadline_ms = Some(ms);
        self
    }

    /// Mark the request batch-class (v6).
    pub fn with_batch(mut self) -> ReqFlags {
        self.batch = true;
        self
    }

    /// Attach a pipelining request id (v6; must be nonzero).
    pub fn with_request_id(mut self, id: u64) -> ReqFlags {
        self.request_id = Some(id);
        self
    }

    /// The flags byte this prefix encodes to.
    pub fn bits(&self) -> u8 {
        let mut flags = 0;
        if self.sharded {
            flags |= FLAG_SHARDED;
        }
        if self.deadline_ms.is_some() {
            flags |= FLAG_DEADLINE;
        }
        if self.batch {
            flags |= FLAG_BATCH;
        }
        if self.request_id.is_some() {
            flags |= FLAG_REQUEST_ID;
        }
        flags
    }
}

/// A decoded client→server request, ready to map onto the engine's
/// typed [`crate::Request`] builders. The successor array has already
/// passed [`LinkedList`] construction — a structurally invalid list
/// never gets past [`decode_request`].
#[derive(Debug)]
pub enum WireRequest {
    /// Handshake (magic and version still unchecked — the server
    /// decides how to answer).
    Hello {
        /// Magic the client sent (must be [`MAGIC`]).
        magic: u32,
        /// Version the client speaks (must be [`VERSION`]).
        version: u16,
    },
    /// Rank the list.
    Rank {
        /// Decoded flags prefix (routing, deadline, QoS, pipelining).
        flags: ReqFlags,
        /// The validated list.
        list: LinkedList,
    },
    /// Scan values along the list under `op`.
    Scan {
        /// Decoded flags prefix (routing, deadline, QoS, pipelining).
        flags: ReqFlags,
        /// The operator (fixes the element type of `values`).
        op: WireOp,
        /// The validated list.
        list: LinkedList,
        /// The value array (same length as the list).
        values: WireValues,
    },
    /// Segmented scan: like [`WireRequest::Scan`] plus segment-start
    /// flags.
    SegScan {
        /// Decoded flags prefix (routing, deadline, QoS, pipelining).
        flags: ReqFlags,
        /// The operator (fixes the element type of `values`).
        op: WireOp,
        /// The validated list.
        list: LinkedList,
        /// Unpacked segment-start flags, one per vertex.
        starts: Vec<bool>,
        /// The value array (same length as the list).
        values: WireValues,
    },
    /// Admit a dataset into the resident store ([`FrameKind::Put`]).
    Put {
        /// The validated list to make resident.
        list: LinkedList,
    },
    /// Rank a resident dataset ([`FrameKind::RankH`]).
    RankH {
        /// Decoded flags prefix (routing, deadline, QoS, pipelining).
        flags: ReqFlags,
        /// Handle from a PUT_OK on this connection.
        handle: u64,
    },
    /// Scan values along a resident dataset ([`FrameKind::ScanH`]).
    ScanH {
        /// Decoded flags prefix (routing, deadline, QoS, pipelining).
        flags: ReqFlags,
        /// The operator (fixes the element type of `values`).
        op: WireOp,
        /// Handle from a PUT_OK on this connection.
        handle: u64,
        /// The value array (length must match the resident list —
        /// checked at submit, not decode: the decoder doesn't know
        /// the dataset).
        values: WireValues,
    },
    /// Segmented scan over a resident dataset ([`FrameKind::SegScanH`]).
    SegScanH {
        /// Decoded flags prefix (routing, deadline, QoS, pipelining).
        flags: ReqFlags,
        /// The operator (fixes the element type of `values`).
        op: WireOp,
        /// Handle from a PUT_OK on this connection.
        handle: u64,
        /// Unpacked segment-start flags, one per value.
        starts: Vec<bool>,
        /// The value array (length checked against the resident list
        /// at submit).
        values: WireValues,
    },
    /// Drop a resident dataset ([`FrameKind::Drop`]).
    Drop {
        /// Handle from a PUT_OK on this connection.
        handle: u64,
    },
    /// Apply a batch of edits to a resident dataset
    /// ([`FrameKind::Mutate`]). Semantic validity (vertex ranges, run
    /// structure) is checked at apply time, not decode — the decoder
    /// doesn't know the dataset.
    Mutate {
        /// Handle from a PUT_OK on this connection.
        handle: u64,
        /// The edit batch, applied atomically in order.
        edits: Vec<Edit>,
    },
    /// Metrics snapshot request.
    Stats,
    /// Histogram-level metrics request ([`FrameKind::StatsV2`]).
    StatsV2,
    /// Drain-and-exit request.
    Shutdown,
}

/// Read the request-flags prefix — the flags byte plus its optional
/// trailing fields in wire order (`deadline_ms`, then `request_id`) —
/// enforcing the spec's "other bits must be zero" rule: a future
/// client's unknown flag must fail typed (`malformed`) rather than be
/// silently dropped and the request executed under different semantics
/// than it asked for.
fn decode_flags(d: &mut Dec<'_>) -> Result<ReqFlags, WireError> {
    let flags = d.u8("flags")?;
    if flags & !(FLAG_SHARDED | FLAG_DEADLINE | FLAG_BATCH | FLAG_REQUEST_ID) != 0 {
        return Err(WireError::malformed(format!("reserved flag bits set: {flags:#010b}")));
    }
    let deadline_ms = if flags & FLAG_DEADLINE != 0 { Some(d.u64("deadline_ms")?) } else { None };
    let request_id = if flags & FLAG_REQUEST_ID != 0 {
        let id = d.u64("request_id")?;
        if id == 0 {
            return Err(WireError::malformed("request_id 0 is reserved"));
        }
        Some(id)
    } else {
        None
    };
    Ok(ReqFlags {
        sharded: flags & FLAG_SHARDED != 0,
        deadline_ms,
        batch: flags & FLAG_BATCH != 0,
        request_id,
    })
}

fn decode_list(d: &mut Dec<'_>) -> Result<(LinkedList, usize), WireError> {
    let head = d.u32("head")?;
    let n = d.u32("vertex count")? as usize;
    let raw = d.take(
        n.checked_mul(4).ok_or_else(|| WireError::malformed("successor array overflows"))?,
        "successor array",
    )?;
    let next: Vec<u32> =
        raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))).collect();
    let list = LinkedList::new(next, head)
        .map_err(|e| WireError::malformed(format!("invalid list: {e}")))?;
    Ok((list, n))
}

fn decode_starts(n: usize, d: &mut Dec<'_>) -> Result<Vec<bool>, WireError> {
    let raw = d.take(n.div_ceil(8), "segment-start bitmap")?;
    Ok((0..n).map(|v| raw[v / 8] >> (v % 8) & 1 == 1).collect())
}

/// Decode a client→server frame into a typed request. Failures carry
/// the [`ErrorCode`] the server should answer with; none of them are
/// connection-fatal (the whole body was already consumed off the wire).
pub fn decode_request(frame: &Frame) -> Result<WireRequest, WireError> {
    let kind = FrameKind::from_u8(frame.kind).ok_or(WireError {
        code: ErrorCode::UnknownKind,
        message: format!("frame kind {:#04x}", frame.kind),
    })?;
    let mut d = Dec::new(&frame.body);
    let req = match kind {
        FrameKind::Hello => {
            let magic = d.u32("magic")?;
            let version = d.u16("version")?;
            WireRequest::Hello { magic, version }
        }
        FrameKind::Rank => {
            let flags = decode_flags(&mut d)?;
            let (list, _) = decode_list(&mut d)?;
            WireRequest::Rank { flags, list }
        }
        FrameKind::Scan | FrameKind::SegScan => {
            let flags = decode_flags(&mut d)?;
            let op_byte = d.u8("operator")?;
            let op = WireOp::from_u8(op_byte).ok_or(WireError {
                code: ErrorCode::UnknownOp,
                message: format!("operator byte {op_byte:#04x}"),
            })?;
            let (list, n) = decode_list(&mut d)?;
            if kind == FrameKind::SegScan {
                let starts = decode_starts(n, &mut d)?;
                let values = decode_values(op, n, &mut d)?;
                WireRequest::SegScan { flags, op, list, starts, values }
            } else {
                let values = decode_values(op, n, &mut d)?;
                WireRequest::Scan { flags, op, list, values }
            }
        }
        FrameKind::Put => {
            let flags = d.u8("flags")?;
            if flags != 0 {
                return Err(WireError::malformed(format!("reserved flag bits set: {flags:#010b}")));
            }
            let (list, _) = decode_list(&mut d)?;
            WireRequest::Put { list }
        }
        FrameKind::RankH => {
            let flags = decode_flags(&mut d)?;
            let handle = d.u64("handle")?;
            WireRequest::RankH { flags, handle }
        }
        FrameKind::ScanH | FrameKind::SegScanH => {
            let flags = decode_flags(&mut d)?;
            let op_byte = d.u8("operator")?;
            let op = WireOp::from_u8(op_byte).ok_or(WireError {
                code: ErrorCode::UnknownOp,
                message: format!("operator byte {op_byte:#04x}"),
            })?;
            let handle = d.u64("handle")?;
            let n = d.u32("value count")? as usize;
            if kind == FrameKind::SegScanH {
                let starts = decode_starts(n, &mut d)?;
                let values = decode_values(op, n, &mut d)?;
                WireRequest::SegScanH { flags, op, handle, starts, values }
            } else {
                let values = decode_values(op, n, &mut d)?;
                WireRequest::ScanH { flags, op, handle, values }
            }
        }
        FrameKind::Drop => {
            let handle = d.u64("handle")?;
            WireRequest::Drop { handle }
        }
        FrameKind::Mutate => {
            let handle = d.u64("handle")?;
            let count = d.u32("edit count")? as usize;
            let mut edits = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                edits.push(decode_edit(&mut d)?);
            }
            WireRequest::Mutate { handle, edits }
        }
        FrameKind::Stats => WireRequest::Stats,
        FrameKind::StatsV2 => WireRequest::StatsV2,
        FrameKind::Shutdown => WireRequest::Shutdown,
        other => {
            return Err(WireError::malformed(format!("{other:?} is a server→client frame kind")))
        }
    };
    d.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Body encoding (client side, plus server replies)
// ---------------------------------------------------------------------

/// HELLO body: magic + version.
pub fn hello_body() -> Vec<u8> {
    let mut b = Vec::with_capacity(6);
    b.extend_from_slice(&MAGIC.to_le_bytes());
    b.extend_from_slice(&VERSION.to_le_bytes());
    b
}

fn put_list(list: &LinkedList, out: &mut Vec<u8>) {
    out.extend_from_slice(&list.head().to_le_bytes());
    out.extend_from_slice(&(list.len() as u32).to_le_bytes());
    for &s in list.links() {
        out.extend_from_slice(&s.to_le_bytes());
    }
}

/// Append the request-flags prefix: the flags byte, then `deadline_ms`
/// when a deadline is present ([`FLAG_DEADLINE`], v5), then
/// `request_id` when pipelining ([`FLAG_REQUEST_ID`], v6) — always in
/// that wire order.
fn push_flags(b: &mut Vec<u8>, flags: &ReqFlags) {
    b.push(flags.bits());
    if let Some(ms) = flags.deadline_ms {
        b.extend_from_slice(&ms.to_le_bytes());
    }
    if let Some(id) = flags.request_id {
        b.extend_from_slice(&id.to_le_bytes());
    }
}

/// RANK body: flags + the list's head/length/successor array.
pub fn rank_body(list: &LinkedList, sharded: bool) -> Vec<u8> {
    rank_body_flags(list, ReqFlags::sharded(sharded))
}

/// [`rank_body`] with an optional queue deadline (protocol v5).
pub fn rank_body_deadline(list: &LinkedList, sharded: bool, deadline_ms: Option<u64>) -> Vec<u8> {
    rank_body_flags(list, ReqFlags { sharded, deadline_ms, ..ReqFlags::default() })
}

/// [`rank_body`] with the full v6 flags prefix (QoS class,
/// pipelining id).
pub fn rank_body_flags(list: &LinkedList, flags: ReqFlags) -> Vec<u8> {
    let mut b = Vec::with_capacity(17 + 8 + 4 * list.len());
    push_flags(&mut b, &flags);
    put_list(list, &mut b);
    b
}

/// SCAN body: flags + operator + list + values.
///
/// # Panics
/// Panics if `T`'s wire width does not match `op` — the typed
/// [`crate::client::Client`] methods make that impossible.
pub fn scan_body<T: WireElem>(
    list: &LinkedList,
    values: &[T],
    op: WireOp,
    sharded: bool,
) -> Vec<u8> {
    scan_body_flags(list, values, op, ReqFlags::sharded(sharded))
}

/// [`scan_body`] with an optional queue deadline (protocol v5).
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`.
pub fn scan_body_deadline<T: WireElem>(
    list: &LinkedList,
    values: &[T],
    op: WireOp,
    sharded: bool,
    deadline_ms: Option<u64>,
) -> Vec<u8> {
    scan_body_flags(list, values, op, ReqFlags { sharded, deadline_ms, ..ReqFlags::default() })
}

/// [`scan_body`] with the full v6 flags prefix.
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`.
pub fn scan_body_flags<T: WireElem>(
    list: &LinkedList,
    values: &[T],
    op: WireOp,
    flags: ReqFlags,
) -> Vec<u8> {
    assert_eq!(T::BYTES, op.elem_bytes(), "element width must match the wire operator");
    let mut b = Vec::with_capacity(18 + 8 + 4 * list.len() + T::BYTES * values.len());
    push_flags(&mut b, &flags);
    b.push(op as u8);
    put_list(list, &mut b);
    for &v in values {
        v.put(&mut b);
    }
    b
}

/// Pack segment-start flags LSB-first, 8 per byte.
pub fn pack_starts(starts: &[bool]) -> Vec<u8> {
    let mut raw = vec![0u8; starts.len().div_ceil(8)];
    for (v, &s) in starts.iter().enumerate() {
        if s {
            raw[v / 8] |= 1 << (v % 8);
        }
    }
    raw
}

/// SEGSCAN body: flags + operator + list + packed start bitmap +
/// values.
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`, or if `starts` and
/// `values` lengths differ (caught here rather than as a server-side
/// malformed-frame error).
pub fn segscan_body<T: WireElem>(
    list: &LinkedList,
    starts: &[bool],
    values: &[T],
    op: WireOp,
    sharded: bool,
) -> Vec<u8> {
    segscan_body_flags(list, starts, values, op, ReqFlags::sharded(sharded))
}

/// [`segscan_body`] with an optional queue deadline (protocol v5).
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`, or if `starts` and
/// `values` lengths differ.
pub fn segscan_body_deadline<T: WireElem>(
    list: &LinkedList,
    starts: &[bool],
    values: &[T],
    op: WireOp,
    sharded: bool,
    deadline_ms: Option<u64>,
) -> Vec<u8> {
    segscan_body_flags(
        list,
        starts,
        values,
        op,
        ReqFlags { sharded, deadline_ms, ..ReqFlags::default() },
    )
}

/// [`segscan_body`] with the full v6 flags prefix.
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`, or if `starts` and
/// `values` lengths differ.
pub fn segscan_body_flags<T: WireElem>(
    list: &LinkedList,
    starts: &[bool],
    values: &[T],
    op: WireOp,
    flags: ReqFlags,
) -> Vec<u8> {
    assert_eq!(T::BYTES, op.elem_bytes(), "element width must match the wire operator");
    assert_eq!(starts.len(), values.len(), "one start flag per value");
    let mut b = Vec::with_capacity(
        18 + 8 + 4 * list.len() + starts.len().div_ceil(8) + T::BYTES * values.len(),
    );
    push_flags(&mut b, &flags);
    b.push(op as u8);
    put_list(list, &mut b);
    b.extend_from_slice(&pack_starts(starts));
    for &v in values {
        v.put(&mut b);
    }
    b
}

/// PUT body: a reserved flags byte (must be zero) + the list's
/// head/length/successor array.
pub fn put_body(list: &LinkedList) -> Vec<u8> {
    let mut b = Vec::with_capacity(1 + 8 + 4 * list.len());
    b.push(0);
    put_list(list, &mut b);
    b
}

/// RANK_H body: flags + dataset handle.
pub fn rank_h_body(handle: u64, sharded: bool) -> Vec<u8> {
    rank_h_body_flags(handle, ReqFlags::sharded(sharded))
}

/// [`rank_h_body`] with an optional queue deadline (protocol v5).
pub fn rank_h_body_deadline(handle: u64, sharded: bool, deadline_ms: Option<u64>) -> Vec<u8> {
    rank_h_body_flags(handle, ReqFlags { sharded, deadline_ms, ..ReqFlags::default() })
}

/// [`rank_h_body`] with the full v6 flags prefix.
pub fn rank_h_body_flags(handle: u64, flags: ReqFlags) -> Vec<u8> {
    let mut b = Vec::with_capacity(25);
    push_flags(&mut b, &flags);
    b.extend_from_slice(&handle.to_le_bytes());
    b
}

/// SCAN_H body: flags + operator + dataset handle + value count +
/// values.
///
/// # Panics
/// Panics if `T`'s wire width does not match `op` — the typed
/// [`crate::client::Client`] methods make that impossible.
pub fn scan_h_body<T: WireElem>(handle: u64, values: &[T], op: WireOp, sharded: bool) -> Vec<u8> {
    scan_h_body_flags(handle, values, op, ReqFlags::sharded(sharded))
}

/// [`scan_h_body`] with an optional queue deadline (protocol v5).
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`.
pub fn scan_h_body_deadline<T: WireElem>(
    handle: u64,
    values: &[T],
    op: WireOp,
    sharded: bool,
    deadline_ms: Option<u64>,
) -> Vec<u8> {
    scan_h_body_flags(handle, values, op, ReqFlags { sharded, deadline_ms, ..ReqFlags::default() })
}

/// [`scan_h_body`] with the full v6 flags prefix.
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`.
pub fn scan_h_body_flags<T: WireElem>(
    handle: u64,
    values: &[T],
    op: WireOp,
    flags: ReqFlags,
) -> Vec<u8> {
    assert_eq!(T::BYTES, op.elem_bytes(), "element width must match the wire operator");
    let mut b = Vec::with_capacity(30 + T::BYTES * values.len());
    push_flags(&mut b, &flags);
    b.push(op as u8);
    b.extend_from_slice(&handle.to_le_bytes());
    b.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for &v in values {
        v.put(&mut b);
    }
    b
}

/// SEGSCAN_H body: flags + operator + dataset handle + value count +
/// packed start bitmap + values.
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`, or if `starts` and
/// `values` lengths differ.
pub fn segscan_h_body<T: WireElem>(
    handle: u64,
    starts: &[bool],
    values: &[T],
    op: WireOp,
    sharded: bool,
) -> Vec<u8> {
    segscan_h_body_flags(handle, starts, values, op, ReqFlags::sharded(sharded))
}

/// [`segscan_h_body`] with an optional queue deadline (protocol v5).
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`, or if `starts` and
/// `values` lengths differ.
pub fn segscan_h_body_deadline<T: WireElem>(
    handle: u64,
    starts: &[bool],
    values: &[T],
    op: WireOp,
    sharded: bool,
    deadline_ms: Option<u64>,
) -> Vec<u8> {
    segscan_h_body_flags(
        handle,
        starts,
        values,
        op,
        ReqFlags { sharded, deadline_ms, ..ReqFlags::default() },
    )
}

/// [`segscan_h_body`] with the full v6 flags prefix.
///
/// # Panics
/// Panics if `T`'s wire width does not match `op`, or if `starts` and
/// `values` lengths differ.
pub fn segscan_h_body_flags<T: WireElem>(
    handle: u64,
    starts: &[bool],
    values: &[T],
    op: WireOp,
    flags: ReqFlags,
) -> Vec<u8> {
    assert_eq!(T::BYTES, op.elem_bytes(), "element width must match the wire operator");
    assert_eq!(starts.len(), values.len(), "one start flag per value");
    let mut b = Vec::with_capacity(30 + starts.len().div_ceil(8) + T::BYTES * values.len());
    push_flags(&mut b, &flags);
    b.push(op as u8);
    b.extend_from_slice(&handle.to_le_bytes());
    b.extend_from_slice(&(values.len() as u32).to_le_bytes());
    b.extend_from_slice(&pack_starts(starts));
    for &v in values {
        v.put(&mut b);
    }
    b
}

/// DROP body: the dataset handle.
pub fn drop_body(handle: u64) -> Vec<u8> {
    handle.to_le_bytes().to_vec()
}

/// Edit kind byte for [`Edit::Splice`] in a MUTATE frame.
pub const EDIT_SPLICE: u8 = 1;
/// Edit kind byte for [`Edit::Delete`] in a MUTATE frame.
pub const EDIT_DELETE: u8 = 2;
/// Edit kind byte for [`Edit::Append`] in a MUTATE frame.
pub const EDIT_APPEND: u8 = 3;

/// Sentinel for `Edit::Splice { after: None }` (move the run to the
/// front): `u32::MAX` is never a valid vertex index, because a list's
/// length is capped at `u32::MAX` vertices.
pub const SPLICE_FRONT: u32 = u32::MAX;

fn put_edit(edit: &Edit, out: &mut Vec<u8>) {
    match *edit {
        Edit::Splice { first, last, after } => {
            out.push(EDIT_SPLICE);
            out.extend_from_slice(&first.to_le_bytes());
            out.extend_from_slice(&last.to_le_bytes());
            out.extend_from_slice(&after.unwrap_or(SPLICE_FRONT).to_le_bytes());
        }
        Edit::Delete { v } => {
            out.push(EDIT_DELETE);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Edit::Append { count } => {
            out.push(EDIT_APPEND);
            out.extend_from_slice(&count.to_le_bytes());
        }
    }
}

fn decode_edit(d: &mut Dec<'_>) -> Result<Edit, WireError> {
    let kind = d.u8("edit kind")?;
    Ok(match kind {
        EDIT_SPLICE => {
            let first = d.u32("splice first")?;
            let last = d.u32("splice last")?;
            let after = d.u32("splice after")?;
            Edit::Splice { first, last, after: (after != SPLICE_FRONT).then_some(after) }
        }
        EDIT_DELETE => Edit::Delete { v: d.u32("delete vertex")? },
        EDIT_APPEND => Edit::Append { count: d.u32("append count")? },
        other => {
            return Err(WireError {
                code: ErrorCode::BadMutation,
                message: format!("unknown edit kind {other:#04x}"),
            })
        }
    })
}

/// MUTATE body: dataset handle + edit count + the edit batch.
pub fn mutate_body(handle: u64, edits: &[Edit]) -> Vec<u8> {
    let mut b = Vec::with_capacity(12 + 13 * edits.len());
    b.extend_from_slice(&handle.to_le_bytes());
    b.extend_from_slice(&(edits.len() as u32).to_le_bytes());
    for e in edits {
        put_edit(e, &mut b);
    }
    b
}

/// What a MUTATE_OK frame reports — the wire projection of
/// [`crate::dynamic::MutationOutcome`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireMutateOk {
    /// Edits applied (the whole batch).
    pub applied: u32,
    /// Post-mutation dataset length.
    pub len: u64,
    /// `true` when every cached artifact was patched incrementally
    /// (mode byte `0` on the wire; `1` = at least one full recompute).
    pub incremental: bool,
    /// Dirty shards patched across incremental maintenance passes.
    pub dirty_shards: u32,
    /// Cached artifacts brought up to date.
    pub artifacts: u32,
    /// Server-side wall-clock of apply + maintenance, nanoseconds.
    pub exec_ns: u64,
}

/// MUTATE_OK body: applied count, new length, maintenance mode byte,
/// dirty-shard count, artifact count, execution time.
pub fn mutate_ok_body(ok: &WireMutateOk) -> Vec<u8> {
    let mut b = Vec::with_capacity(29);
    b.extend_from_slice(&ok.applied.to_le_bytes());
    b.extend_from_slice(&ok.len.to_le_bytes());
    b.push(if ok.incremental { 0 } else { 1 });
    b.extend_from_slice(&ok.dirty_shards.to_le_bytes());
    b.extend_from_slice(&ok.artifacts.to_le_bytes());
    b.extend_from_slice(&ok.exec_ns.to_le_bytes());
    b
}

/// Decode a MUTATE_OK body.
pub fn decode_mutate_ok(body: &[u8]) -> Result<WireMutateOk, WireError> {
    let mut d = Dec::new(body);
    let applied = d.u32("applied count")?;
    let len = d.u64("new length")?;
    let mode = d.u8("maintenance mode")?;
    if mode > 1 {
        return Err(WireError::malformed(format!("maintenance mode byte {mode}")));
    }
    let dirty_shards = d.u32("dirty shards")?;
    let artifacts = d.u32("artifacts")?;
    let exec_ns = d.u64("exec_ns")?;
    d.finish()?;
    Ok(WireMutateOk { applied, len, incremental: mode == 0, dirty_shards, artifacts, exec_ns })
}

/// PUT_OK body: the issued handle + bytes charged to the store budget.
pub fn put_ok_body(handle: u64, bytes: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(16);
    b.extend_from_slice(&handle.to_le_bytes());
    b.extend_from_slice(&bytes.to_le_bytes());
    b
}

/// Decode a PUT_OK body into `(handle, bytes)`.
pub fn decode_put_ok(body: &[u8]) -> Result<(u64, u64), WireError> {
    let mut d = Dec::new(body);
    let handle = d.u64("handle")?;
    let bytes = d.u64("charged bytes")?;
    d.finish()?;
    Ok((handle, bytes))
}

/// HELLO_OK body: server version + the frame-size cap it enforces.
pub fn hello_ok_body(version: u16, max_frame: u32) -> Vec<u8> {
    let mut b = Vec::with_capacity(6);
    b.extend_from_slice(&version.to_le_bytes());
    b.extend_from_slice(&max_frame.to_le_bytes());
    b
}

/// Decode a HELLO_OK body into `(version, max_frame)`.
pub fn decode_hello_ok(body: &[u8]) -> Result<(u16, u32), WireError> {
    let mut d = Dec::new(body);
    let version = d.u16("version")?;
    let max_frame = d.u32("max frame")?;
    d.finish()?;
    Ok((version, max_frame))
}

/// Execution metadata of an OUTPUT frame — the wire projection of the
/// engine's [`crate::JobReport`] fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutputMeta {
    /// The algorithm the planner dispatched (stitch algorithm for
    /// sharded runs).
    pub algorithm: Algorithm,
    /// Shards the job split into (`0` = monolithic).
    pub shards: u32,
    /// Nanoseconds the job spent queued.
    pub queued_ns: u64,
    /// Nanoseconds of execution.
    pub exec_ns: u64,
    /// The request's trace id (assigned at frame decode; `0` means the
    /// server predates tracing). Echoed so clients can correlate
    /// replies with the daemon's slow-request log lines.
    pub trace_id: u64,
}

/// OUTPUT body: metadata + the typed payload.
pub fn output_body<T: WireElem>(meta: &OutputMeta, values: &[T]) -> Vec<u8> {
    let mut b = Vec::with_capacity(1 + 4 + 8 + 8 + 8 + 4 + T::BYTES * values.len());
    let code = Algorithm::ALL.iter().position(|a| *a == meta.algorithm).expect("known algorithm");
    b.push(code as u8);
    b.extend_from_slice(&meta.shards.to_le_bytes());
    b.extend_from_slice(&meta.queued_ns.to_le_bytes());
    b.extend_from_slice(&meta.exec_ns.to_le_bytes());
    b.extend_from_slice(&meta.trace_id.to_le_bytes());
    b.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for &v in values {
        v.put(&mut b);
    }
    b
}

/// Decode an OUTPUT body; the caller supplies the element type it
/// asked for (the request's operator determines it).
pub fn decode_output<T: WireElem>(body: &[u8]) -> Result<(OutputMeta, Vec<T>), WireError> {
    let mut d = Dec::new(body);
    let code = d.u8("algorithm")? as usize;
    let algorithm = *Algorithm::ALL
        .get(code)
        .ok_or_else(|| WireError::malformed(format!("algorithm code {code}")))?;
    let shards = d.u32("shards")?;
    let queued_ns = d.u64("queued_ns")?;
    let exec_ns = d.u64("exec_ns")?;
    let trace_id = d.u64("trace_id")?;
    let n = d.u32("element count")? as usize;
    let raw = d.take(
        n.checked_mul(T::BYTES).ok_or_else(|| WireError::malformed("payload overflows"))?,
        "payload",
    )?;
    d.finish()?;
    let values = raw.chunks_exact(T::BYTES).map(T::get).collect();
    Ok((OutputMeta { algorithm, shards, queued_ns, exec_ns, trace_id }, values))
}

/// The STATS_OK payload: a fixed counter block (engine totals plus the
/// serving layer's connection/frame/byte counters) followed by the
/// rendered [`crate::EngineStats`] report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Engine: jobs accepted.
    pub engine_submitted: u64,
    /// Engine: jobs finished successfully.
    pub engine_completed: u64,
    /// Engine: jobs cancelled.
    pub engine_cancelled: u64,
    /// Engine: jobs whose execution panicked.
    pub engine_failed: u64,
    /// Engine: total vertices processed.
    pub engine_elements: u64,
    /// Server: connections accepted since start.
    pub connections_total: u64,
    /// Server: connections currently open.
    pub connections_active: u64,
    /// Server: highest concurrent connection count observed.
    pub peak_connections: u64,
    /// Server: frames decoded off client sockets.
    pub frames_in: u64,
    /// Server: frames written to client sockets.
    pub frames_out: u64,
    /// Server: bytes read from client sockets.
    pub bytes_in: u64,
    /// Server: bytes written to client sockets.
    pub bytes_out: u64,
    /// Server: error frames sent.
    pub errors_sent: u64,
    /// Server: connections turned away at `--max-clients`.
    pub busy_rejected: u64,
    /// The `Display` rendering of the engine's full stats snapshot
    /// (dispatch matrices, per-op throughput, lanes, pool).
    pub text: String,
}

impl WireStats {
    const COUNTERS: usize = 14;

    fn counters(&self) -> [u64; Self::COUNTERS] {
        [
            self.engine_submitted,
            self.engine_completed,
            self.engine_cancelled,
            self.engine_failed,
            self.engine_elements,
            self.connections_total,
            self.connections_active,
            self.peak_connections,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.errors_sent,
            self.busy_rejected,
        ]
    }
}

/// STATS_OK body: counter count + counters + UTF-8 stats text.
pub fn stats_body(stats: &WireStats) -> Vec<u8> {
    let counters = stats.counters();
    let mut b = Vec::with_capacity(1 + 8 * counters.len() + stats.text.len());
    b.push(counters.len() as u8);
    for c in counters {
        b.extend_from_slice(&c.to_le_bytes());
    }
    b.extend_from_slice(stats.text.as_bytes());
    b
}

/// Decode a STATS_OK body. Counters beyond the [`WireStats`] fields
/// this version knows are skipped (newer servers may append more).
pub fn decode_stats(body: &[u8]) -> Result<WireStats, WireError> {
    let mut d = Dec::new(body);
    let count = d.u8("counter count")? as usize;
    if count < WireStats::COUNTERS {
        return Err(WireError::malformed(format!(
            "counter block has {count} entries, need {}",
            WireStats::COUNTERS
        )));
    }
    let mut c = [0u64; WireStats::COUNTERS];
    for slot in &mut c {
        *slot = d.u64("counter")?;
    }
    for _ in WireStats::COUNTERS..count {
        d.u64("extra counter")?;
    }
    let text = String::from_utf8(d.take(d.b.len() - d.pos, "stats text")?.to_vec())
        .map_err(|_| WireError::malformed("stats text is not UTF-8"))?;
    Ok(WireStats {
        engine_submitted: c[0],
        engine_completed: c[1],
        engine_cancelled: c[2],
        engine_failed: c[3],
        engine_elements: c[4],
        connections_total: c[5],
        connections_active: c[6],
        peak_connections: c[7],
        frames_in: c[8],
        frames_out: c[9],
        bytes_in: c[10],
        bytes_out: c[11],
        errors_sent: c[12],
        busy_rejected: c[13],
        text,
    })
}

// ---------------------------------------------------------------------
// STATS_V2: tagged histogram blocks
// ---------------------------------------------------------------------

/// STATS_V2_OK block tag: a per-phase latency histogram (block id is
/// [`Phase::index`]).
pub const TAG_PHASE_HIST: u8 = 1;
/// STATS_V2_OK block tag: a per-op exec-latency histogram (block id is
/// [`OpKind::index`]).
pub const TAG_OP_HIST: u8 = 2;
/// STATS_V2_OK block tag: the planner's mispredict-ratio histogram
/// (block id is `0`; values are `measured/predicted ×`
/// [`crate::planner::MISPREDICT_SCALE`]).
pub const TAG_MISPREDICT: u8 = 3;
/// STATS_V2_OK block tag: the gauge block (block id is `0`; payload is
/// `count: u8` followed by `count` LE `u64`s in [`StatsGauges`] field
/// order).
pub const TAG_GAUGES: u8 = 4;
/// STATS_V2_OK block tag: one planner dispatch-matrix row (block id is
/// [`OpKind::index`]; payload is `count: u8` followed by `count` LE
/// `u64`s in [`Algorithm::ALL`] order).
pub const TAG_DISPATCH_OP: u8 = 5;
/// STATS_V2_OK block tag: the resident dataset store's gauge block
/// (block id is `0`; payload is `count: u8` followed by `count` LE
/// `u64`s in [`StoreGauges`] field order). Added in protocol v3; v2
/// readers skip it by tag.
pub const TAG_STORE: u8 = 6;
/// STATS_V2_OK block tag: the mutation plane's gauge block (block id
/// is `0`; payload is `count: u8` followed by `count` LE `u64`s in
/// [`MutGauges`] field order). Added in protocol v4; older readers
/// skip it by tag.
pub const TAG_MUTATE: u8 = 7;
/// STATS_V2_OK block tag: the fault/resilience gauge block (block id
/// is `0`; payload is `count: u8` followed by `count` LE `u64`s in
/// [`FaultGauges`] field order). Added in protocol v5; older readers
/// skip it by tag.
pub const TAG_FAULT: u8 = 8;
/// STATS_V2_OK block tag: the scheduler/QoS gauge block (block id is
/// `0`; payload is `count: u8` followed by `count` LE `u64`s in
/// [`SchedGauges`] field order). Added in protocol v6; older readers
/// skip it by tag.
pub const TAG_SCHED: u8 = 9;
/// STATS_V2_OK block tag: the pipeline-depth histogram — depth of the
/// connection's in-flight set sampled at each pipelined admission
/// (block id is `0`; payload is a histogram like [`TAG_PHASE_HIST`]).
/// Added in protocol v6; omitted while empty; older readers skip it by
/// tag.
pub const TAG_PIPELINE: u8 = 10;

/// The fixed gauge block of a STATS_V2_OK frame: point-in-time scalars
/// the `rankd stats` dashboard needs alongside the histograms. Encoded
/// with a leading count so future versions can append gauges without
/// breaking older readers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsGauges {
    /// Engine uptime in nanoseconds.
    pub uptime_ns: u64,
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs cancelled before execution.
    pub cancelled: u64,
    /// Jobs whose execution panicked.
    pub failed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_full: u64,
    /// Total vertices processed by completed jobs.
    pub elements: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub peak_queue_depth: u64,
    /// Vertices visited by K-lane interleaved walks.
    pub lane_steps: u64,
    /// Lane slots offered while those walks ran (`lane_steps /
    /// lane_slots` is the occupancy).
    pub lane_slots: u64,
    /// Server connections currently open.
    pub connections_active: u64,
    /// Server connections accepted since start.
    pub connections_total: u64,
}

impl StatsGauges {
    /// Number of gauges this version defines.
    pub const COUNT: usize = 13;

    fn to_array(self) -> [u64; Self::COUNT] {
        [
            self.uptime_ns,
            self.submitted,
            self.completed,
            self.cancelled,
            self.failed,
            self.rejected_full,
            self.elements,
            self.queue_depth,
            self.peak_queue_depth,
            self.lane_steps,
            self.lane_slots,
            self.connections_active,
            self.connections_total,
        ]
    }

    fn from_array(c: [u64; Self::COUNT]) -> StatsGauges {
        StatsGauges {
            uptime_ns: c[0],
            submitted: c[1],
            completed: c[2],
            cancelled: c[3],
            failed: c[4],
            rejected_full: c[5],
            elements: c[6],
            queue_depth: c[7],
            peak_queue_depth: c[8],
            lane_steps: c[9],
            lane_slots: c[10],
            connections_active: c[11],
            connections_total: c[12],
        }
    }
}

/// The resident-dataset store's gauge block of a STATS_V2_OK frame
/// (mirrors [`crate::store::StoreStats`]). Encoded with a leading
/// count so future versions can append gauges without breaking older
/// readers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreGauges {
    /// Configured byte budget.
    pub budget_bytes: u64,
    /// Bytes currently resident (lists + cached artifacts).
    pub resident_bytes: u64,
    /// Datasets currently resident.
    pub resident_count: u64,
    /// Successful PUTs.
    pub puts: u64,
    /// Datasets removed by DROP or connection teardown.
    pub drops: u64,
    /// Handle resolution attempts.
    pub lookups: u64,
    /// Lookups that resolved to a resident dataset.
    pub hits: u64,
    /// Lookups that found no dataset for the (handle, connection).
    pub misses: u64,
    /// Datasets evicted by LRU pressure.
    pub evictions: u64,
    /// PUTs refused because the budget could not be met.
    pub put_rejected: u64,
    /// Sharded artifacts built.
    pub artifacts_built: u64,
    /// Sharded artifacts served from the cache.
    pub artifacts_reused: u64,
}

impl StoreGauges {
    /// Number of store gauges this version defines.
    pub const COUNT: usize = 12;

    fn to_array(self) -> [u64; Self::COUNT] {
        [
            self.budget_bytes,
            self.resident_bytes,
            self.resident_count,
            self.puts,
            self.drops,
            self.lookups,
            self.hits,
            self.misses,
            self.evictions,
            self.put_rejected,
            self.artifacts_built,
            self.artifacts_reused,
        ]
    }

    fn from_array(c: [u64; Self::COUNT]) -> StoreGauges {
        StoreGauges {
            budget_bytes: c[0],
            resident_bytes: c[1],
            resident_count: c[2],
            puts: c[3],
            drops: c[4],
            lookups: c[5],
            hits: c[6],
            misses: c[7],
            evictions: c[8],
            put_rejected: c[9],
            artifacts_built: c[10],
            artifacts_reused: c[11],
        }
    }
}

/// The mutation plane's gauge block of a STATS_V2_OK frame (mirrors
/// [`crate::store::MutationStats`]). Encoded with a leading count so
/// future versions can append gauges without breaking older readers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutGauges {
    /// Mutation batches applied.
    pub mutations: u64,
    /// Individual edits applied.
    pub edits: u64,
    /// Maintenance passes that patched dirty shards in place.
    pub incremental: u64,
    /// Maintenance passes that rebuilt from scratch.
    pub full: u64,
    /// Dirty shards patched by incremental passes.
    pub dirty_shards_patched: u64,
    /// Cached artifacts brought up to date.
    pub artifacts_patched: u64,
}

impl MutGauges {
    /// Number of mutation gauges this version defines.
    pub const COUNT: usize = 6;

    fn to_array(self) -> [u64; Self::COUNT] {
        [
            self.mutations,
            self.edits,
            self.incremental,
            self.full,
            self.dirty_shards_patched,
            self.artifacts_patched,
        ]
    }

    fn from_array(c: [u64; Self::COUNT]) -> MutGauges {
        MutGauges {
            mutations: c[0],
            edits: c[1],
            incremental: c[2],
            full: c[3],
            dirty_shards_patched: c[4],
            artifacts_patched: c[5],
        }
    }
}

/// The fault/resilience gauge block of a STATS_V2_OK frame: what the
/// fault-injection plane ([`crate::fault::FaultPlane`]) injected, and
/// what the resilience machinery absorbed (panics isolated, workers
/// respawned, deadlines expired, requests shed). Encoded with a
/// leading count so future versions can append gauges without breaking
/// older readers. Added in protocol v5.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultGauges {
    /// Socket reads/writes failed by injection.
    pub injected_io_errors: u64,
    /// Artificial socket delays injected.
    pub injected_delays: u64,
    /// Reply writes cut short by injection.
    pub injected_short_writes: u64,
    /// Worker executions panicked by injection.
    pub injected_exec_panics: u64,
    /// Store admissions rejected by injection.
    pub injected_store_errors: u64,
    /// Worker panics caught and converted to typed `internal_error`
    /// replies (injected or genuine).
    pub panics_recovered: u64,
    /// Worker threads that re-entered their loop after an unexpected
    /// panic outside job execution.
    pub workers_respawned: u64,
    /// Jobs dropped at dequeue because their deadline expired.
    pub deadline_expired: u64,
    /// Requests shed at the queue-depth watermark.
    pub shed_queue: u64,
    /// PUTs shed at the store-pressure watermark.
    pub shed_store: u64,
}

impl FaultGauges {
    /// Number of fault gauges this version defines.
    pub const COUNT: usize = 10;

    fn to_array(self) -> [u64; Self::COUNT] {
        [
            self.injected_io_errors,
            self.injected_delays,
            self.injected_short_writes,
            self.injected_exec_panics,
            self.injected_store_errors,
            self.panics_recovered,
            self.workers_respawned,
            self.deadline_expired,
            self.shed_queue,
            self.shed_store,
        ]
    }

    fn from_array(c: [u64; Self::COUNT]) -> FaultGauges {
        FaultGauges {
            injected_io_errors: c[0],
            injected_delays: c[1],
            injected_short_writes: c[2],
            injected_exec_panics: c[3],
            injected_store_errors: c[4],
            panics_recovered: c[5],
            workers_respawned: c[6],
            deadline_expired: c[7],
            shed_queue: c[8],
            shed_store: c[9],
        }
    }
}

/// The scheduler/QoS gauge block of a STATS_V2_OK frame: what the
/// two-class scheduler dispatched and holds in flight, what the
/// per-tenant quotas rejected, and how the pipelining plane behaved.
/// Encoded with a leading count so future versions can append gauges
/// without breaking older readers. Added in protocol v6.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedGauges {
    /// Interactive-class requests admitted and not yet finished.
    pub inflight_interactive: u64,
    /// Batch-class requests admitted and not yet finished.
    pub inflight_batch: u64,
    /// Interactive-class dispatches since start.
    pub dispatched_interactive: u64,
    /// Batch-class dispatches since start.
    pub dispatched_batch: u64,
    /// Dispatches where the anti-starvation aging valve bypassed
    /// strict class order.
    pub aged_dispatches: u64,
    /// Requests refused because the tenant's in-flight quota was full.
    pub quota_rejected_inflight: u64,
    /// PUTs refused because the tenant's resident-byte quota was full.
    pub quota_rejected_store: u64,
    /// Pipelined replies delivered out of arrival order.
    pub reply_reorders: u64,
    /// Requests that carried a [`FLAG_REQUEST_ID`] pipelining id.
    pub pipelined_requests: u64,
    /// Deepest in-flight set observed on any one connection.
    pub max_pipeline_depth: u64,
}

impl SchedGauges {
    /// Number of scheduler gauges this version defines.
    pub const COUNT: usize = 10;

    fn to_array(self) -> [u64; Self::COUNT] {
        [
            self.inflight_interactive,
            self.inflight_batch,
            self.dispatched_interactive,
            self.dispatched_batch,
            self.aged_dispatches,
            self.quota_rejected_inflight,
            self.quota_rejected_store,
            self.reply_reorders,
            self.pipelined_requests,
            self.max_pipeline_depth,
        ]
    }

    fn from_array(c: [u64; Self::COUNT]) -> SchedGauges {
        SchedGauges {
            inflight_interactive: c[0],
            inflight_batch: c[1],
            dispatched_interactive: c[2],
            dispatched_batch: c[3],
            aged_dispatches: c[4],
            quota_rejected_inflight: c[5],
            quota_rejected_store: c[6],
            reply_reorders: c[7],
            pipelined_requests: c[8],
            max_pipeline_depth: c[9],
        }
    }
}

/// The decoded payload of a STATS_V2_OK frame: every histogram the
/// telemetry registry keeps, the planner's mispredict histogram and
/// dispatch-by-op matrix, and the gauge block. Histogram slots that
/// were not on the wire (the encoder skips empty ones) decode as empty
/// histograms, so consumers can index without `Option` juggling.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireStatsV2 {
    /// Per-phase latency histograms, indexed by [`Phase::index`].
    pub phase: [Histogram; Phase::ALL.len()],
    /// Per-op exec-latency histograms, indexed by [`OpKind::ALL`] order.
    pub per_op: [Histogram; OpKind::ALL.len()],
    /// The planner's mispredict-ratio histogram.
    pub mispredict: Histogram,
    /// The gauge block.
    pub gauges: StatsGauges,
    /// The resident-dataset store's gauge block (all-zero when the
    /// peer predates protocol v3).
    pub store: StoreGauges,
    /// The mutation plane's gauge block (all-zero when the peer
    /// predates protocol v4).
    pub mutate: MutGauges,
    /// The fault/resilience gauge block (all-zero when the peer
    /// predates protocol v5).
    pub fault: FaultGauges,
    /// The scheduler/QoS gauge block (all-zero when the peer predates
    /// protocol v6).
    pub sched: SchedGauges,
    /// The pipeline-depth histogram (empty when the peer predates
    /// protocol v6 or nothing was pipelined yet).
    pub pipeline_depth: Histogram,
    /// Planner dispatch rows: `(op, completions per algorithm)` in
    /// [`Algorithm::ALL`] order; only ops with completions appear.
    pub dispatch_by_op: Vec<(OpKind, Vec<u64>)>,
}

/// Append one histogram's wire payload: `sub_bits: u8`, `count: u64`,
/// `sum: u64`, `max: u64`, `nonzero: u32`, then `nonzero` ×
/// `(index: u16, count: u64)` sparse bucket pairs.
fn put_hist(h: &Histogram, out: &mut Vec<u8>) {
    out.push(hist::SUB_BITS as u8);
    out.extend_from_slice(&h.count().to_le_bytes());
    out.extend_from_slice(&h.sum().to_le_bytes());
    out.extend_from_slice(&h.max().to_le_bytes());
    let buckets: Vec<(u16, u64)> = h.nonzero_buckets().collect();
    out.extend_from_slice(&(buckets.len() as u32).to_le_bytes());
    for (i, c) in buckets {
        out.extend_from_slice(&i.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
}

fn parse_hist(d: &mut Dec<'_>) -> Result<Histogram, WireError> {
    let sub_bits = d.u8("histogram sub_bits")?;
    if sub_bits as u32 != hist::SUB_BITS {
        return Err(WireError::malformed(format!(
            "histogram sub-bucket resolution {sub_bits} (this peer speaks {})",
            hist::SUB_BITS
        )));
    }
    let count = d.u64("histogram count")?;
    let sum = d.u64("histogram sum")?;
    let max = d.u64("histogram max")?;
    let nonzero = d.u32("histogram bucket count")? as usize;
    let mut buckets = Vec::with_capacity(nonzero.min(hist::SLOTS));
    for _ in 0..nonzero {
        let i = d.u16("bucket index")?;
        let c = d.u64("bucket count")?;
        buckets.push((i, c));
    }
    Histogram::from_parts(&buckets, count, sum, max)
        .ok_or_else(|| WireError::malformed("histogram bucket index out of range"))
}

fn put_block(tag: u8, id: u8, payload: &[u8], out: &mut Vec<u8>) {
    out.push(tag);
    out.push(id);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// STATS_V2_OK body: `block_count: u16` followed by that many
/// `(tag: u8, id: u8, len: u32, payload)` blocks. Empty histograms are
/// not encoded; a reader skips blocks with tags it does not know
/// (their `len` makes that possible), which is the forward-compat
/// contract: new telemetry = new tags, never a relayout.
pub fn stats_v2_body(stats: &WireStatsV2) -> Vec<u8> {
    let mut blocks: Vec<u8> = Vec::new();
    let mut block_count: u16 = 0;
    let mut payload = Vec::new();
    for phase in Phase::ALL {
        let h = &stats.phase[phase.index()];
        if h.is_empty() {
            continue;
        }
        payload.clear();
        put_hist(h, &mut payload);
        put_block(TAG_PHASE_HIST, phase.index() as u8, &payload, &mut blocks);
        block_count += 1;
    }
    for op in OpKind::ALL {
        let h = &stats.per_op[op.index()];
        if h.is_empty() {
            continue;
        }
        payload.clear();
        put_hist(h, &mut payload);
        put_block(TAG_OP_HIST, op.index() as u8, &payload, &mut blocks);
        block_count += 1;
    }
    if !stats.mispredict.is_empty() {
        payload.clear();
        put_hist(&stats.mispredict, &mut payload);
        put_block(TAG_MISPREDICT, 0, &payload, &mut blocks);
        block_count += 1;
    }
    payload.clear();
    payload.push(StatsGauges::COUNT as u8);
    for g in stats.gauges.to_array() {
        payload.extend_from_slice(&g.to_le_bytes());
    }
    put_block(TAG_GAUGES, 0, &payload, &mut blocks);
    block_count += 1;
    payload.clear();
    payload.push(StoreGauges::COUNT as u8);
    for g in stats.store.to_array() {
        payload.extend_from_slice(&g.to_le_bytes());
    }
    put_block(TAG_STORE, 0, &payload, &mut blocks);
    block_count += 1;
    payload.clear();
    payload.push(MutGauges::COUNT as u8);
    for g in stats.mutate.to_array() {
        payload.extend_from_slice(&g.to_le_bytes());
    }
    put_block(TAG_MUTATE, 0, &payload, &mut blocks);
    block_count += 1;
    payload.clear();
    payload.push(FaultGauges::COUNT as u8);
    for g in stats.fault.to_array() {
        payload.extend_from_slice(&g.to_le_bytes());
    }
    put_block(TAG_FAULT, 0, &payload, &mut blocks);
    block_count += 1;
    payload.clear();
    payload.push(SchedGauges::COUNT as u8);
    for g in stats.sched.to_array() {
        payload.extend_from_slice(&g.to_le_bytes());
    }
    put_block(TAG_SCHED, 0, &payload, &mut blocks);
    block_count += 1;
    if !stats.pipeline_depth.is_empty() {
        payload.clear();
        put_hist(&stats.pipeline_depth, &mut payload);
        put_block(TAG_PIPELINE, 0, &payload, &mut blocks);
        block_count += 1;
    }
    for (op, row) in &stats.dispatch_by_op {
        payload.clear();
        payload.push(row.len() as u8);
        for c in row {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        put_block(TAG_DISPATCH_OP, op.index() as u8, &payload, &mut blocks);
        block_count += 1;
    }
    let mut b = Vec::with_capacity(2 + blocks.len());
    b.extend_from_slice(&block_count.to_le_bytes());
    b.extend_from_slice(&blocks);
    b
}

/// Decode a STATS_V2_OK body. Blocks with unknown tags are skipped;
/// blocks with known tags but out-of-range ids are malformed.
pub fn decode_stats_v2(body: &[u8]) -> Result<WireStatsV2, WireError> {
    let mut d = Dec::new(body);
    let block_count = d.u16("block count")?;
    let mut out = WireStatsV2::default();
    for _ in 0..block_count {
        let tag = d.u8("block tag")?;
        let id = d.u8("block id")?;
        let len = d.u32("block length")? as usize;
        let payload = d.take(len, "block payload")?;
        let mut p = Dec::new(payload);
        match tag {
            TAG_PHASE_HIST => {
                let phase = Phase::from_index(id as usize)
                    .ok_or_else(|| WireError::malformed(format!("phase id {id}")))?;
                out.phase[phase.index()] = parse_hist(&mut p)?;
                p.finish()?;
            }
            TAG_OP_HIST => {
                let op = OpKind::from_index(id as usize)
                    .ok_or_else(|| WireError::malformed(format!("op id {id}")))?;
                out.per_op[op.index()] = parse_hist(&mut p)?;
                p.finish()?;
            }
            TAG_MISPREDICT => {
                out.mispredict = parse_hist(&mut p)?;
                p.finish()?;
            }
            TAG_GAUGES => {
                let count = p.u8("gauge count")? as usize;
                if count < StatsGauges::COUNT {
                    return Err(WireError::malformed(format!(
                        "gauge block has {count} entries, need {}",
                        StatsGauges::COUNT
                    )));
                }
                let mut c = [0u64; StatsGauges::COUNT];
                for slot in &mut c {
                    *slot = p.u64("gauge")?;
                }
                for _ in StatsGauges::COUNT..count {
                    p.u64("extra gauge")?;
                }
                p.finish()?;
                out.gauges = StatsGauges::from_array(c);
            }
            TAG_STORE => {
                let count = p.u8("store gauge count")? as usize;
                if count < StoreGauges::COUNT {
                    return Err(WireError::malformed(format!(
                        "store gauge block has {count} entries, need {}",
                        StoreGauges::COUNT
                    )));
                }
                let mut c = [0u64; StoreGauges::COUNT];
                for slot in &mut c {
                    *slot = p.u64("store gauge")?;
                }
                for _ in StoreGauges::COUNT..count {
                    p.u64("extra store gauge")?;
                }
                p.finish()?;
                out.store = StoreGauges::from_array(c);
            }
            TAG_MUTATE => {
                let count = p.u8("mutate gauge count")? as usize;
                if count < MutGauges::COUNT {
                    return Err(WireError::malformed(format!(
                        "mutate gauge block has {count} entries, need {}",
                        MutGauges::COUNT
                    )));
                }
                let mut c = [0u64; MutGauges::COUNT];
                for slot in &mut c {
                    *slot = p.u64("mutate gauge")?;
                }
                for _ in MutGauges::COUNT..count {
                    p.u64("extra mutate gauge")?;
                }
                p.finish()?;
                out.mutate = MutGauges::from_array(c);
            }
            TAG_FAULT => {
                let count = p.u8("fault gauge count")? as usize;
                if count < FaultGauges::COUNT {
                    return Err(WireError::malformed(format!(
                        "fault gauge block has {count} entries, need {}",
                        FaultGauges::COUNT
                    )));
                }
                let mut c = [0u64; FaultGauges::COUNT];
                for slot in &mut c {
                    *slot = p.u64("fault gauge")?;
                }
                for _ in FaultGauges::COUNT..count {
                    p.u64("extra fault gauge")?;
                }
                p.finish()?;
                out.fault = FaultGauges::from_array(c);
            }
            TAG_SCHED => {
                let count = p.u8("sched gauge count")? as usize;
                if count < SchedGauges::COUNT {
                    return Err(WireError::malformed(format!(
                        "sched gauge block has {count} entries, need {}",
                        SchedGauges::COUNT
                    )));
                }
                let mut c = [0u64; SchedGauges::COUNT];
                for slot in &mut c {
                    *slot = p.u64("sched gauge")?;
                }
                for _ in SchedGauges::COUNT..count {
                    p.u64("extra sched gauge")?;
                }
                p.finish()?;
                out.sched = SchedGauges::from_array(c);
            }
            TAG_PIPELINE => {
                out.pipeline_depth = parse_hist(&mut p)?;
                p.finish()?;
            }
            TAG_DISPATCH_OP => {
                let op = OpKind::from_index(id as usize)
                    .ok_or_else(|| WireError::malformed(format!("op id {id}")))?;
                let count = p.u8("dispatch row length")? as usize;
                let mut row = Vec::with_capacity(count);
                for _ in 0..count {
                    row.push(p.u64("dispatch count")?);
                }
                p.finish()?;
                out.dispatch_by_op.push((op, row));
            }
            // Unknown tag from a newer peer: the whole payload was
            // already consumed via `len`, so just move on.
            _ => {}
        }
    }
    d.finish()?;
    Ok(out)
}

/// ERROR body: code + UTF-8 message.
pub fn error_body(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut b = Vec::with_capacity(2 + message.len());
    b.extend_from_slice(&(code as u16).to_le_bytes());
    b.extend_from_slice(message.as_bytes());
    b
}

/// Decode an ERROR body into `(raw code, decoded code, message)`. The
/// raw code is kept so an unknown code from a newer peer still
/// surfaces.
pub fn decode_error(body: &[u8]) -> Result<(u16, Option<ErrorCode>, String), WireError> {
    let mut d = Dec::new(body);
    let raw = d.u16("error code")?;
    let message = String::from_utf8(d.take(d.b.len() - d.pos, "error message")?.to_vec())
        .map_err(|_| WireError::malformed("error message is not UTF-8"))?;
    Ok((raw, ErrorCode::from_u16(raw), message))
}

/// OUTPUT_P / ERROR_P body (protocol v6): the echoed `request_id: u64`
/// followed by the unchanged OUTPUT / ERROR body bytes. One wrapper
/// serves both kinds — only the frame kind differs.
pub fn pipelined_body(request_id: u64, inner: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(8 + inner.len());
    b.extend_from_slice(&request_id.to_le_bytes());
    b.extend_from_slice(inner);
    b
}

/// Split an OUTPUT_P / ERROR_P body into `(request_id, inner body)`;
/// the inner bytes decode with [`decode_output`] / [`decode_error`]
/// according to the frame kind.
pub fn decode_pipelined(body: &[u8]) -> Result<(u64, &[u8]), WireError> {
    let mut d = Dec::new(body);
    let request_id = d.u64("request_id")?;
    Ok((request_id, &body[8..]))
}
