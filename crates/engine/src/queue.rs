//! Bounded MPMC job queue with blocking backpressure.
//!
//! `submit` blocks while the queue is at capacity (producers slow to the
//! engine's drain rate instead of ballooning memory); `try_submit`
//! returns [`SubmitError::Full`] instead. Workers pop from the front and
//! may additionally *drain* a batch of small jobs in one lock
//! acquisition (see `JobQueue::pop_small_batch`).

use crate::job::QueuedJob;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Non-blocking submit found the queue at capacity.
    Full,
    /// The engine is shutting down and accepts no new work.
    Shutdown,
    /// The job spec is malformed (e.g. scan value array length does not
    /// match the list length); rejected before it can reach a worker.
    Invalid,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => f.write_str("queue full"),
            SubmitError::Shutdown => f.write_str("engine shut down"),
            SubmitError::Invalid => f.write_str("invalid job spec (value/list length mismatch)"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Inner {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
    peak_depth: usize,
}

pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(capacity.min(4096)),
                shutdown: false,
                peak_depth: 0,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocking push: waits for space (backpressure).
    pub(crate) fn push(&self, job: QueuedJob) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.shutdown {
                return Err(SubmitError::Shutdown);
            }
            if inner.jobs.len() < self.capacity {
                inner.jobs.push_back(job);
                let depth = inner.jobs.len();
                inner.peak_depth = inner.peak_depth.max(depth);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue poisoned");
        }
    }

    /// Non-blocking push. A rejected job rides back in the `Err` by
    /// value — the shed path must answer its caller with the job's
    /// own responder, and boxing it would put an allocation on the
    /// overload path precisely when memory is the scarce resource.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, job: QueuedJob) -> Result<(), (SubmitError, QueuedJob)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.shutdown {
            return Err((SubmitError::Shutdown, job));
        }
        if inner.jobs.len() >= self.capacity {
            return Err((SubmitError::Full, job));
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        inner.peak_depth = inner.peak_depth.max(depth);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once shut down *and* drained.
    pub(crate) fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Under one lock, pull up to `max` additional queued jobs whose
    /// size is ≤ `cutoff` (leaving larger jobs in place and in order).
    /// Small-job batching: a worker that just popped a small job grabs
    /// its siblings so one scratch acquisition and one dispatch serve
    /// the whole batch. Single compacting pass — no per-extraction
    /// mid-deque shifting.
    pub(crate) fn pop_small_batch(&self, cutoff: usize, max: usize) -> Vec<QueuedJob> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        let mut inner = self.inner.lock().expect("queue poisoned");
        let jobs = std::mem::take(&mut inner.jobs);
        for job in jobs {
            if out.len() < max && job.spec.len() <= cutoff {
                out.push(job);
            } else {
                inner.jobs.push_back(job);
            }
        }
        if !out.is_empty() {
            self.not_full.notify_all();
        }
        out
    }

    /// Current depth (diagnostics).
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").jobs.len()
    }

    /// Highest depth observed.
    pub(crate) fn peak_depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").peak_depth
    }

    /// Stop accepting work and wake everyone. Remaining queued jobs are
    /// still drained by workers before they exit.
    pub(crate) fn shutdown(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.shutdown = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}
