//! Bounded MPMC job queue with blocking backpressure and QoS dispatch.
//!
//! `submit` blocks while the queue is at capacity (producers slow to the
//! engine's drain rate instead of ballooning memory); `try_submit`
//! returns [`SubmitError::Full`] instead. Workers pop the job chosen by
//! the scheduler policy ([`crate::sched::pick_next`]): interactive
//! before batch, earliest deadline first within a class, with a
//! periodic aging tick that dispatches the globally oldest job so batch
//! work cannot starve. Workers may additionally *drain* a batch of
//! small same-class jobs in one lock acquisition (see
//! `JobQueue::pop_small_batch`).

use crate::job::QueuedJob;
use crate::sched::{self, JobMeta, Priority, SchedCounters, SchedSnapshot, AGING_PERIOD};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Non-blocking submit found the queue at capacity.
    Full,
    /// The engine is shutting down and accepts no new work.
    Shutdown,
    /// The job spec is malformed (e.g. scan value array length does not
    /// match the list length); rejected before it can reach a worker.
    Invalid,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => f.write_str("queue full"),
            SubmitError::Shutdown => f.write_str("engine shut down"),
            SubmitError::Invalid => f.write_str("invalid job spec (value/list length mismatch)"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Inner {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
    peak_depth: usize,
    /// Monotone arrival counter; stamped onto jobs at push.
    next_seq: u64,
    /// Dequeue counter driving the aging tick.
    dequeues: u64,
}

pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
    /// Epoch for deadline ticks: a job's absolute deadline is its
    /// enqueue instant (ns since this epoch) plus its deadline.
    epoch: Instant,
    sched: SchedCounters,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(capacity.min(4096)),
                shutdown: false,
                peak_depth: 0,
                next_seq: 0,
                dequeues: 0,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            epoch: Instant::now(),
            sched: SchedCounters::default(),
        }
    }

    fn admit(&self, inner: &mut Inner, mut job: QueuedJob) {
        job.seq = inner.next_seq;
        inner.next_seq += 1;
        self.sched.note_queued(job.opts.priority);
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        inner.peak_depth = inner.peak_depth.max(depth);
        self.not_empty.notify_one();
    }

    /// Blocking push: waits for space (backpressure).
    pub(crate) fn push(&self, job: QueuedJob) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.shutdown {
                return Err(SubmitError::Shutdown);
            }
            if inner.jobs.len() < self.capacity {
                self.admit(&mut inner, job);
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue poisoned");
        }
    }

    /// Non-blocking push. A rejected job rides back in the `Err` by
    /// value — the shed path must answer its caller with the job's
    /// own responder, and boxing it would put an allocation on the
    /// overload path precisely when memory is the scarce resource.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, job: QueuedJob) -> Result<(), (SubmitError, QueuedJob)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.shutdown {
            return Err((SubmitError::Shutdown, job));
        }
        if inner.jobs.len() >= self.capacity {
            return Err((SubmitError::Full, job));
        }
        self.admit(&mut inner, job);
        Ok(())
    }

    /// Absolute deadline tick for a job, if it carries one: enqueue
    /// instant as ns since the queue epoch, plus the deadline
    /// (saturating — `deadline_ms: u64::MAX` must not wrap into the
    /// past).
    fn deadline_tick(&self, job: &QueuedJob) -> Option<u64> {
        job.opts.deadline_ms.map(|ms| {
            let enqueued =
                job.enqueued.duration_since(self.epoch).as_nanos().min(u64::MAX as u128) as u64;
            enqueued.saturating_add(ms.saturating_mul(1_000_000))
        })
    }

    /// Remove and return the scheduler's pick, maintaining counters.
    fn take_pick(&self, inner: &mut Inner) -> Option<QueuedJob> {
        if inner.jobs.is_empty() {
            return None;
        }
        let metas: Vec<JobMeta> = inner
            .jobs
            .iter()
            .map(|j| JobMeta {
                class: j.opts.priority,
                seq: j.seq,
                deadline: self.deadline_tick(j),
            })
            .collect();
        let idx = sched::pick_next(&metas, inner.dequeues, AGING_PERIOD).expect("non-empty queue");
        // An aging tick only *bypasses* the class order when a
        // non-aging pick would have chosen differently; count it as
        // aged either way — the valve fired.
        if sched::is_aging_tick(inner.dequeues, AGING_PERIOD)
            && metas[idx].class != metas.iter().map(|m| m.class).min().expect("non-empty")
        {
            self.sched.note_aged();
        }
        inner.dequeues += 1;
        let job = inner.jobs.remove(idx).expect("picked index in range");
        self.sched.note_dispatched(job.opts.priority);
        Some(job)
    }

    /// Blocking pop; `None` once shut down *and* drained. Dispatch
    /// order is the scheduler policy, not FIFO.
    pub(crate) fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(job) = self.take_pick(&mut inner) {
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Under one lock, pull up to `max` additional queued jobs whose
    /// size is ≤ `cutoff` **and whose priority class matches `class`**
    /// (leaving everything else in place and in order). Small-job
    /// batching: a worker that just popped a small job grabs its
    /// same-class siblings so one scratch acquisition and one dispatch
    /// serve the whole batch — restricted to one class so a batch job
    /// can never ride an interactive pop ahead of queued interactive
    /// work. Single compacting pass — no per-extraction mid-deque
    /// shifting.
    pub(crate) fn pop_small_batch(
        &self,
        cutoff: usize,
        max: usize,
        class: Priority,
    ) -> Vec<QueuedJob> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        let mut inner = self.inner.lock().expect("queue poisoned");
        let jobs = std::mem::take(&mut inner.jobs);
        for job in jobs {
            if out.len() < max && job.spec.len() <= cutoff && job.opts.priority == class {
                self.sched.note_dispatched(job.opts.priority);
                out.push(job);
            } else {
                inner.jobs.push_back(job);
            }
        }
        if !out.is_empty() {
            inner.dequeues += out.len() as u64;
            self.not_full.notify_all();
        }
        out
    }

    /// Record a settled job for the per-class in-flight gauge. Called
    /// by workers at every settle site (and by submit paths that settle
    /// a job without it ever being dispatched, e.g. shedding).
    pub(crate) fn note_finished(&self, class: Priority) {
        self.sched.note_finished(class);
    }

    /// Point-in-time scheduler counters.
    pub(crate) fn sched_snapshot(&self) -> SchedSnapshot {
        self.sched.load()
    }

    /// Current depth (diagnostics).
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").jobs.len()
    }

    /// Highest depth observed.
    pub(crate) fn peak_depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").peak_depth
    }

    /// Stop accepting work and wake everyone. Remaining queued jobs are
    /// still drained by workers before they exit.
    pub(crate) fn shutdown(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.shutdown = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}
