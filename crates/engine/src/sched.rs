//! QoS scheduling primitives: priority classes, the dispatch-order
//! policy, and per-tenant admission quotas.
//!
//! The engine queue (PR 10) replaces strict FIFO with a small,
//! *pure* policy function — [`pick_next`] — so the dispatch contract
//! can be property-tested in isolation (`crates/engine/tests/qos.rs`)
//! without threads or timing. The rules, in priority order:
//!
//! 1. **Aging (anti-starvation).** Every [`AGING_PERIOD`]-th dequeue
//!    ignores class entirely and picks the globally oldest job (minimum
//!    sequence number). Under continuous interactive load a batch job
//!    therefore still dispatches at least once per `AGING_PERIOD`
//!    dequeues — starvation is bounded, not merely unlikely.
//! 2. **Class.** Otherwise the lowest-numbered class present wins:
//!    [`Priority::Interactive`] strictly dominates [`Priority::Batch`].
//! 3. **Deadline, then arrival.** Within the chosen class, the job with
//!    the earliest absolute deadline tick dispatches first; jobs
//!    without a deadline sort after every deadline-carrying job; ties
//!    fall back to arrival order (sequence number). Deadline-first
//!    dequeue therefore *never* inverts priority classes — it only
//!    reorders within one.
//!
//! [`QuotaTable`] is the per-tenant in-flight ledger the server uses
//! for admission control; it lives here (not in `server`) so the same
//! accounting can be exercised by the conformance suite under random
//! admit/complete interleavings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Request priority class. Lower discriminant = more urgent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Priority {
    /// Latency-sensitive foreground work (the default).
    #[default]
    Interactive = 0,
    /// Throughput-oriented background work; dispatches only when no
    /// interactive job is queued, except on aging ticks.
    Batch = 1,
}

impl Priority {
    /// Both classes, in dispatch-preference order.
    pub const ALL: [Priority; 2] = [Priority::Interactive, Priority::Batch];

    /// Index into per-class counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lower-case class name (matches `rankd` CLI spellings).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Dequeues between aging ticks: every `AGING_PERIOD`-th dequeue picks
/// the globally oldest job regardless of class (see [`pick_next`]).
pub const AGING_PERIOD: u64 = 16;

/// The scheduling-relevant view of one queued job. The queue builds
/// these from its live entries; the conformance suite builds them
/// directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobMeta {
    /// Priority class.
    pub class: Priority,
    /// Monotone arrival sequence number (assigned at enqueue).
    pub seq: u64,
    /// Absolute deadline tick (nanoseconds since the queue's epoch),
    /// if the request carried one. Only the *order* matters here;
    /// expiry is still enforced at execution time.
    pub deadline: Option<u64>,
}

/// Whether the `dequeues`-th dequeue (zero-based) is an aging tick.
pub fn is_aging_tick(dequeues: u64, aging_period: u64) -> bool {
    aging_period > 0 && dequeues % aging_period == aging_period - 1
}

/// Pick the index of the job to dispatch next. Pure function of the
/// queue snapshot plus the dequeue counter; see the module docs for
/// the policy. Returns `None` only for an empty slice.
pub fn pick_next(jobs: &[JobMeta], dequeues: u64, aging_period: u64) -> Option<usize> {
    if jobs.is_empty() {
        return None;
    }
    if is_aging_tick(dequeues, aging_period) {
        // Globally oldest, class-blind: the anti-starvation valve.
        return jobs.iter().enumerate().min_by_key(|(_, j)| j.seq).map(|(i, _)| i);
    }
    let best_class = jobs.iter().map(|j| j.class).min().expect("non-empty");
    jobs.iter()
        .enumerate()
        .filter(|(_, j)| j.class == best_class)
        .min_by_key(|(_, j)| (j.deadline.unwrap_or(u64::MAX), j.seq))
        .map(|(i, _)| i)
}

/// Per-class scheduler counters, owned by the queue. `queued` −
/// `finished` is the in-flight gauge STATS_V2 reports per class;
/// `dispatched` counts dequeues-for-execution and `aged` counts
/// anti-starvation picks that jumped the class order.
#[derive(Debug, Default)]
pub(crate) struct SchedCounters {
    pub(crate) queued: [AtomicU64; 2],
    pub(crate) dispatched: [AtomicU64; 2],
    pub(crate) finished: [AtomicU64; 2],
    pub(crate) aged: AtomicU64,
}

impl SchedCounters {
    pub(crate) fn note_queued(&self, class: Priority) {
        self.queued[class.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_dispatched(&self, class: Priority) {
        self.dispatched[class.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_finished(&self, class: Priority) {
        self.finished[class.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_aged(&self) {
        self.aged.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn load(&self) -> SchedSnapshot {
        let read =
            |a: &[AtomicU64; 2]| [a[0].load(Ordering::Relaxed), a[1].load(Ordering::Relaxed)];
        SchedSnapshot {
            queued: read(&self.queued),
            dispatched: read(&self.dispatched),
            finished: read(&self.finished),
            aged: self.aged.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the scheduler's internal counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// Jobs admitted to the queue, per class.
    pub queued: [u64; 2],
    /// Jobs dequeued for execution, per class.
    pub dispatched: [u64; 2],
    /// Jobs settled (completed, failed, cancelled, expired), per class.
    pub finished: [u64; 2],
    /// Aging-tick dispatches that bypassed the class order.
    pub aged: u64,
}

impl SchedSnapshot {
    /// Current in-flight count (queued − finished) for a class.
    pub fn inflight(&self, class: Priority) -> u64 {
        self.queued[class.index()].saturating_sub(self.finished[class.index()])
    }
}

/// Per-tenant in-flight admission ledger. Tenants are identified by an
/// opaque `u64` (the server uses the connection id). A `max_inflight`
/// of 0 means unlimited; `try_admit` never rejects then but still
/// counts, so `drop_tenant` accounting stays exact either way.
#[derive(Debug)]
pub struct QuotaTable {
    max_inflight: u64,
    inner: Mutex<HashMap<u64, u64>>,
    rejected: AtomicU64,
}

impl QuotaTable {
    /// New table with the given per-tenant in-flight cap (0 = no cap).
    pub fn new(max_inflight: u64) -> Self {
        QuotaTable { max_inflight, inner: Mutex::new(HashMap::new()), rejected: AtomicU64::new(0) }
    }

    /// The configured cap (0 = unlimited).
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight
    }

    /// Try to admit one more in-flight request for `tenant`. Returns
    /// `false` (and counts a rejection) if the tenant is at its cap.
    pub fn try_admit(&self, tenant: u64) -> bool {
        let mut inner = self.inner.lock().expect("quota table poisoned");
        let slot = inner.entry(tenant).or_insert(0);
        if self.max_inflight > 0 && *slot >= self.max_inflight {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        *slot += 1;
        true
    }

    /// Record one completion for `tenant`. A completion after
    /// [`QuotaTable::drop_tenant`] is a no-op (the ledger was already
    /// settled by the disconnect).
    pub fn complete(&self, tenant: u64) {
        let mut inner = self.inner.lock().expect("quota table poisoned");
        if let Some(slot) = inner.get_mut(&tenant) {
            *slot = slot.saturating_sub(1);
            if *slot == 0 {
                inner.remove(&tenant);
            }
        }
    }

    /// Current in-flight count for `tenant`.
    pub fn inflight(&self, tenant: u64) -> u64 {
        self.inner.lock().expect("quota table poisoned").get(&tenant).copied().unwrap_or(0)
    }

    /// Forget a tenant entirely (disconnect); returns how many
    /// in-flight admissions were outstanding.
    pub fn drop_tenant(&self, tenant: u64) -> u64 {
        self.inner.lock().expect("quota table poisoned").remove(&tenant).unwrap_or(0)
    }

    /// Tenants with at least one in-flight admission.
    pub fn tenants(&self) -> usize {
        self.inner.lock().expect("quota table poisoned").len()
    }

    /// Total admissions rejected at the cap.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(class: Priority, seq: u64, deadline: Option<u64>) -> JobMeta {
        JobMeta { class, seq, deadline }
    }

    #[test]
    fn empty_queue_picks_nothing() {
        assert_eq!(pick_next(&[], 0, AGING_PERIOD), None);
        assert_eq!(pick_next(&[], AGING_PERIOD - 1, AGING_PERIOD), None);
    }

    #[test]
    fn interactive_dominates_batch() {
        let jobs = [
            meta(Priority::Batch, 0, None),
            meta(Priority::Interactive, 1, None),
            meta(Priority::Batch, 2, Some(5)),
        ];
        // Not an aging tick: the (later, deadline-less) interactive job
        // still beats both batch jobs.
        assert_eq!(pick_next(&jobs, 0, AGING_PERIOD), Some(1));
    }

    #[test]
    fn deadline_orders_within_class_only() {
        let jobs = [
            meta(Priority::Interactive, 0, None),
            meta(Priority::Interactive, 1, Some(100)),
            meta(Priority::Interactive, 2, Some(50)),
        ];
        assert_eq!(pick_next(&jobs, 0, AGING_PERIOD), Some(2), "earliest deadline first");
        let jobs =
            [meta(Priority::Interactive, 0, Some(10)), meta(Priority::Interactive, 1, Some(10))];
        assert_eq!(pick_next(&jobs, 0, AGING_PERIOD), Some(0), "deadline tie falls back to seq");
    }

    #[test]
    fn aging_tick_picks_globally_oldest() {
        let jobs = [
            meta(Priority::Batch, 3, None),
            meta(Priority::Interactive, 7, Some(1)),
            meta(Priority::Batch, 2, None),
        ];
        let tick = AGING_PERIOD - 1;
        assert!(is_aging_tick(tick, AGING_PERIOD));
        assert_eq!(pick_next(&jobs, tick, AGING_PERIOD), Some(2), "oldest seq, class-blind");
        // aging_period = 0 disables the valve.
        assert!(!is_aging_tick(tick, 0));
    }

    #[test]
    fn quota_admits_up_to_cap_and_settles_on_drop() {
        let q = QuotaTable::new(2);
        assert!(q.try_admit(7));
        assert!(q.try_admit(7));
        assert!(!q.try_admit(7), "third admit must hit the cap");
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.inflight(7), 2);
        q.complete(7);
        assert!(q.try_admit(7), "a completion frees a slot");
        assert_eq!(q.drop_tenant(7), 2);
        assert_eq!(q.inflight(7), 0);
        q.complete(7); // late completion after disconnect: no-op
        assert_eq!(q.inflight(7), 0);
        assert_eq!(q.tenants(), 0);
    }

    #[test]
    fn zero_cap_means_unlimited() {
        let q = QuotaTable::new(0);
        for _ in 0..1000 {
            assert!(q.try_admit(1));
        }
        assert_eq!(q.rejected(), 0);
        assert_eq!(q.inflight(1), 1000);
    }
}
