//! `rankd serve` — the concurrent Unix-domain-socket front-end.
//!
//! One [`Server`] wraps one [`Engine`]: an accept loop hands each
//! client connection to its own handler thread, which decodes
//! [`crate::protocol`] frames, maps them onto the engine's typed
//! [`Request`] builders, and writes the replies back. Because the
//! handler uses the engine's *blocking* submit, the bounded job
//! queue's backpressure becomes per-client admission control: a
//! client that floods requests simply blocks on submit until the
//! queue drains, instead of ballooning daemon memory or being
//! disconnected.
//!
//! Error handling is deliberately forgiving: a malformed frame body
//! gets a typed [`FrameKind::Error`] reply and the connection keeps
//! serving. Only three conditions close a connection from the server
//! side — a failed handshake, a length prefix above the frame cap
//! (framing can no longer be trusted), and shutdown draining.
//!
//! Shutdown (a client's SHUTDOWN frame, or the `--serve-secs`
//! deadline) is graceful: the accept loop stops, every in-flight
//! request still completes and its reply is written, and handlers
//! linger up to [`ServeConfig::drain_grace`] for clients to
//! disconnect on their own before the socket file is removed.

use crate::dynamic::MutateError;
use crate::engine::Engine;
use crate::fault::FaultPlane;
use crate::job::{JobError, JobOptions, Request};
use crate::protocol::{
    self, error_body, read_frame, write_frame, ErrorCode, FaultGauges, Frame, FrameKind, MutGauges,
    ReadFrameError, StatsGauges, StoreGauges, WireElem, WireMutateOk, WireOp, WireRequest,
    WireStats, WireStatsV2, WireValues, MAX_FRAME_DEFAULT,
};
use crate::queue::SubmitError;
use crate::rankd_log;
use crate::store::{DatasetStore, StoreError, DEFAULT_STORE_BUDGET};
use crate::telemetry::log::Level;
use crate::telemetry::{self, Phase};
use listkit::ops::{AddOp, MaxOp, MinOp, XorOp};
use listkit::LinkedList;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Serving-layer configuration (`rankd serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Filesystem path of the Unix domain socket (`--socket`). A stale
    /// file at this path is removed on bind.
    pub socket: PathBuf,
    /// Maximum concurrently served clients (`--max-clients`); excess
    /// connections are answered with [`ErrorCode::Busy`] and closed.
    pub max_clients: usize,
    /// Serve for at most this long (`--serve-secs`); `None` serves
    /// until a client sends SHUTDOWN.
    pub serve_secs: Option<u64>,
    /// Per-frame size cap enforced on reads (also advertised to
    /// clients in HELLO_OK).
    pub max_frame: u32,
    /// After shutdown begins, how long handlers wait for idle clients
    /// to disconnect before closing on them. In-flight requests always
    /// complete regardless.
    pub drain_grace: Duration,
    /// Byte budget for the resident dataset store (`--store-budget`):
    /// PUT lists plus cached sharded artifacts, under LRU eviction.
    pub store_budget: u64,
    /// The fault-injection plane (`--fault`). Disabled by default;
    /// share the same plane with [`crate::EngineConfig::with_fault`]
    /// so socket and worker injection draw from one decision stream.
    pub fault: Arc<FaultPlane>,
    /// Load-shedding watermark on engine queue depth
    /// (`--shed-queue`): job-bearing requests arriving while the
    /// queue is at or past this depth get a typed
    /// [`ErrorCode::Overloaded`] instead of blocking. `0` disables
    /// shedding (the default — backpressure-by-blocking remains the
    /// baseline admission policy).
    pub shed_queue_depth: usize,
    /// Load-shedding watermark on resident store bytes
    /// (`--shed-store`): PUTs arriving while the store holds at least
    /// this many bytes get a typed [`ErrorCode::Overloaded`] (retry
    /// later) rather than forcing LRU churn. `0` disables (default).
    pub shed_store_bytes: u64,
}

impl ServeConfig {
    /// Configuration with defaults for everything but the socket path.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            max_clients: 64,
            serve_secs: None,
            max_frame: MAX_FRAME_DEFAULT,
            drain_grace: Duration::from_secs(2),
            store_budget: DEFAULT_STORE_BUDGET,
            fault: Arc::new(FaultPlane::disabled()),
            shed_queue_depth: 0,
            shed_store_bytes: 0,
        }
    }

    /// Override the client cap.
    pub fn with_max_clients(mut self, max: usize) -> Self {
        self.max_clients = max.max(1);
        self
    }

    /// Bound the serving time (`None` = until SHUTDOWN).
    pub fn with_serve_secs(mut self, secs: Option<u64>) -> Self {
        self.serve_secs = secs;
        self
    }

    /// Override the frame-size cap.
    pub fn with_max_frame(mut self, max: u32) -> Self {
        self.max_frame = max.max(64);
        self
    }

    /// Override the post-shutdown drain grace.
    pub fn with_drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = grace;
        self
    }

    /// Override the resident dataset store's byte budget.
    pub fn with_store_budget(mut self, bytes: u64) -> Self {
        self.store_budget = bytes;
        self
    }

    /// Install a fault-injection plane (pass the same `Arc` to
    /// [`crate::EngineConfig::with_fault`]).
    pub fn with_fault(mut self, fault: Arc<FaultPlane>) -> Self {
        self.fault = fault;
        self
    }

    /// Set the queue-depth shedding watermark (`0` = off).
    pub fn with_shed_queue_depth(mut self, depth: usize) -> Self {
        self.shed_queue_depth = depth;
        self
    }

    /// Set the store-pressure shedding watermark in bytes (`0` = off).
    pub fn with_shed_store_bytes(mut self, bytes: u64) -> Self {
        self.shed_store_bytes = bytes;
        self
    }
}

/// Serving-layer counters: the connection/frame/byte dimension of the
/// stats surface, surfaced to clients through the STATS frame next to
/// the engine's own [`crate::EngineStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections_total: u64,
    /// Connections currently being served.
    pub connections_active: u64,
    /// Highest concurrent connection count observed.
    pub peak_connections: u64,
    /// Frames decoded off client sockets.
    pub frames_in: u64,
    /// Frames written to client sockets (replies and errors).
    pub frames_out: u64,
    /// Bytes read from client sockets.
    pub bytes_in: u64,
    /// Bytes written to client sockets.
    pub bytes_out: u64,
    /// Error frames sent.
    pub errors_sent: u64,
    /// Connections turned away at [`ServeConfig::max_clients`].
    pub busy_rejected: u64,
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "connections: {} total (peak {} concurrent, {} busy-rejected), {} still open",
            self.connections_total,
            self.peak_connections,
            self.busy_rejected,
            self.connections_active
        )?;
        write!(
            f,
            "frames: {} in / {} out ({} errors)   bytes: {} in / {} out",
            self.frames_in, self.frames_out, self.errors_sent, self.bytes_in, self.bytes_out
        )
    }
}

/// Shared state between the accept loop, the handlers, and
/// [`ServerControl`].
struct Shared {
    shutdown: AtomicBool,
    /// Set when shutdown begins; handlers close idle connections past
    /// it (in-flight requests still finish).
    drain_deadline: Mutex<Option<Instant>>,
    drain_grace: Duration,
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    peak_connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    errors_sent: AtomicU64,
    busy_rejected: AtomicU64,
    /// The resident dataset store, shared by every client handler.
    store: Arc<DatasetStore>,
    /// The fault-injection plane (disabled = every probe is one
    /// predictable branch).
    fault: Arc<FaultPlane>,
    /// Queue-depth shedding watermark (`0` = off).
    shed_queue_depth: usize,
    /// Store-pressure shedding watermark in bytes (`0` = off).
    shed_store_bytes: u64,
    /// Requests shed at the queue watermark.
    shed_queue: AtomicU64,
    /// PUTs shed at the store watermark.
    shed_store: AtomicU64,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut d = self.drain_deadline.lock().expect("drain deadline poisoned");
        if d.is_none() {
            *d = Some(Instant::now() + self.drain_grace);
        }
    }

    /// Whether an *idle* handler (no frame in progress) should stop
    /// waiting for more frames.
    fn drain_expired(&self) -> bool {
        if !self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        match *self.drain_deadline.lock().expect("drain deadline poisoned") {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            connections_total: self.connections_total.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            errors_sent: self.errors_sent.load(Ordering::Relaxed),
            busy_rejected: self.busy_rejected.load(Ordering::Relaxed),
        }
    }
}

/// A handle for observing and stopping a running [`Server`] from
/// another thread (tests, signal handlers).
#[derive(Clone)]
pub struct ServerControl {
    shared: Arc<Shared>,
}

impl ServerControl {
    /// Ask the server to stop accepting and drain, as if a client had
    /// sent SHUTDOWN.
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Point-in-time serving-layer counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }
}

/// The `rankd serve` daemon: bind with [`Server::bind`], then
/// [`Server::run`] the accept loop to completion.
pub struct Server {
    engine: Arc<Engine>,
    cfg: ServeConfig,
    listener: UnixListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the socket (removing a *stale* file at the path first) and
    /// prepare to serve requests against `engine`. A socket file with
    /// a live daemon behind it is an [`std::io::ErrorKind::AddrInUse`]
    /// error — binding never silently steals another server's path.
    pub fn bind(engine: Arc<Engine>, cfg: ServeConfig) -> std::io::Result<Server> {
        // A daemon that died without cleanup leaves the socket file
        // behind; rebinding over *that* is the expected restart flow.
        // Distinguish stale from live with a connect probe: refused =
        // nobody listening = safe to unlink.
        if cfg.socket.exists() {
            match UnixStream::connect(&cfg.socket) {
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("{} has a live server behind it", cfg.socket.display()),
                    ))
                }
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                    std::fs::remove_file(&cfg.socket)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            drain_grace: cfg.drain_grace,
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            peak_connections: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            errors_sent: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            store: Arc::new(DatasetStore::new(cfg.store_budget)),
            fault: Arc::clone(&cfg.fault),
            shed_queue_depth: cfg.shed_queue_depth,
            shed_store_bytes: cfg.shed_store_bytes,
            shed_queue: AtomicU64::new(0),
            shed_store: AtomicU64::new(0),
        });
        Ok(Server { engine, cfg, listener, shared })
    }

    /// The socket path this server is bound to.
    pub fn socket_path(&self) -> &Path {
        &self.cfg.socket
    }

    /// A cloneable control handle (shutdown + stats) usable from other
    /// threads while [`Server::run`] blocks.
    pub fn control(&self) -> ServerControl {
        ServerControl { shared: Arc::clone(&self.shared) }
    }

    /// Run the accept loop until SHUTDOWN (or the `serve_secs`
    /// deadline), drain every handler, remove the socket file, and
    /// return the final serving-layer counters.
    pub fn run(self) -> std::io::Result<ServerStats> {
        let deadline = self.cfg.serve_secs.map(|s| Instant::now() + Duration::from_secs(s));
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    self.shared.begin_shutdown();
                    break;
                }
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    let active = self.shared.connections_active.load(Ordering::Relaxed);
                    if active as usize >= self.cfg.max_clients {
                        self.shared.busy_rejected.fetch_add(1, Ordering::Relaxed);
                        // Best-effort typed rejection; the stream is
                        // blocking again for the one write.
                        let _ = stream.set_nonblocking(false);
                        let mut s = stream;
                        let _ = send_error(
                            &mut s,
                            &self.shared,
                            ErrorCode::Busy,
                            "server at max clients",
                        );
                        continue;
                    }
                    // The connection id doubles as the dataset-store
                    // ownership key: handles are scoped to the
                    // connection that PUT them, like file descriptors.
                    let conn_id = self.shared.connections_total.fetch_add(1, Ordering::Relaxed) + 1;
                    let now_active =
                        self.shared.connections_active.fetch_add(1, Ordering::Relaxed) + 1;
                    self.shared.peak_connections.fetch_max(now_active, Ordering::Relaxed);
                    let engine = Arc::clone(&self.engine);
                    let shared = Arc::clone(&self.shared);
                    let max_frame = self.cfg.max_frame;
                    handlers.push(
                        std::thread::Builder::new()
                            .name("rankd-client".to_string())
                            .spawn(move || {
                                handle_client(stream, &engine, &shared, max_frame, conn_id);
                                let dropped = shared.store.drop_connection(conn_id);
                                if dropped > 0 {
                                    rankd_log!(
                                        Level::Debug,
                                        "server",
                                        "conn {conn_id} closed, dropped {dropped} resident dataset(s)"
                                    );
                                }
                                shared.connections_active.fetch_sub(1, Ordering::Relaxed);
                            })
                            .expect("spawn client handler"),
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Reap finished handlers so a long-lived daemon's
                    // thread carcasses (stack + join metadata) don't
                    // accumulate with connection count.
                    let mut i = 0;
                    while i < handlers.len() {
                        if handlers[i].is_finished() {
                            let _ = handlers.swap_remove(i).join();
                        } else {
                            i += 1;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    self.shared.begin_shutdown();
                    for h in handlers {
                        let _ = h.join();
                    }
                    let _ = std::fs::remove_file(&self.cfg.socket);
                    return Err(e);
                }
            }
        }
        // Shutdown: no new connections; handlers drain (in-flight
        // requests complete, idle connections close after the grace).
        self.shared.begin_shutdown();
        for h in handlers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.cfg.socket);
        Ok(self.shared.stats())
    }
}

/// How long a reply write may sit with zero progress before the
/// handler gives the client up for dead. Bounds the damage of a client
/// that submits work and never reads the reply: its handler (and the
/// `--max-clients` slot it holds) is reclaimed instead of pinned in
/// `write_all` forever.
const WRITE_STALL_LIMIT: Duration = Duration::from_secs(30);

/// The tighter zero-progress limit applied once the shutdown drain
/// grace has expired: still long enough that an actively-draining
/// client's reply completes, short enough that a dead one cannot
/// stretch shutdown by much.
const DRAIN_WRITE_STALL_LIMIT: Duration = Duration::from_secs(2);

/// Reply-write counterpart of `PolledReader` (in `read_frame_polled`):
/// the stream has a short write timeout, and each timeout is a chance
/// to notice shutdown draining or a dead-stalled reader. Giving up
/// mid-frame corrupts that client's stream, which is fine — the
/// handler closes the connection on any write error.
struct PolledWriter<'a> {
    stream: &'a mut UnixStream,
    shared: &'a Shared,
    last_progress: Instant,
}

impl std::io::Write for PolledWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // Fault injection happens once per write call, before any
        // bytes move: a disabled plane is a single branch.
        if self.shared.fault.is_enabled() {
            if let Some(d) = self.shared.fault.delay() {
                std::thread::sleep(d);
            }
            if self.shared.fault.io_error() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected write error (fault plane)",
                ));
            }
            if buf.len() > 1 && self.shared.fault.short_write() {
                // Leak a prefix onto the wire, then fail: the frame is
                // truncated mid-body exactly as a dying peer would
                // leave it, and the handler closes the connection.
                let _ = self.stream.write(&buf[..buf.len() / 2]);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected short write (fault plane)",
                ));
            }
        }
        loop {
            match self.stream.write(buf) {
                Ok(k) => {
                    if k > 0 {
                        self.last_progress = Instant::now();
                    }
                    return Ok(k);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Give up only on genuine lack of progress — a
                    // client actively draining a large reply keeps
                    // resetting the clock, so a scheduling hiccup
                    // can't truncate its frame even during the
                    // shutdown drain (where the patience merely
                    // shrinks from 30 s to 2 s).
                    let limit = if self.shared.drain_expired() {
                        DRAIN_WRITE_STALL_LIMIT
                    } else {
                        WRITE_STALL_LIMIT
                    };
                    if self.last_progress.elapsed() >= limit {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "client not draining replies",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

/// Write a frame and account it.
fn send(
    stream: &mut UnixStream,
    shared: &Shared,
    kind: FrameKind,
    body: &[u8],
) -> std::io::Result<()> {
    let mut writer = PolledWriter { stream, shared, last_progress: Instant::now() };
    let bytes = write_frame(&mut writer, kind as u8, body)?;
    shared.frames_out.fetch_add(1, Ordering::Relaxed);
    shared.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    Ok(())
}

/// Write a typed error frame and account it.
fn send_error(
    stream: &mut UnixStream,
    shared: &Shared,
    code: ErrorCode,
    message: &str,
) -> std::io::Result<()> {
    shared.errors_sent.fetch_add(1, Ordering::Relaxed);
    send(stream, shared, FrameKind::Error, &error_body(code, message))
}

/// Read one frame off a polled (read-timeout) stream. Timeouts keep
/// accumulating bytes (a slow writer can never corrupt framing) while
/// giving the handler a cadence to notice shutdown draining — after
/// which idle and stalled-mid-frame clients both stop being waited
/// on.
enum Polled {
    Frame(Frame),
    /// Peer closed cleanly, or drain told us to stop waiting.
    Done,
    /// Framing is no longer trustworthy; an error frame has been sent.
    Fatal,
}

fn read_frame_polled(stream: &mut UnixStream, shared: &Shared, max_frame: u32) -> Polled {
    struct PolledReader<'a> {
        stream: &'a mut UnixStream,
        shared: &'a Shared,
    }
    impl std::io::Read for PolledReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            // One injection probe per read call (not per 50 ms poll
            // iteration — the WouldBlock loop below spins without
            // re-probing), so idle connections aren't ground down.
            if self.shared.fault.is_enabled() {
                if let Some(d) = self.shared.fault.delay() {
                    std::thread::sleep(d);
                }
                if self.shared.fault.io_error() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "injected read error (fault plane)",
                    ));
                }
            }
            loop {
                match self.stream.read(buf) {
                    Ok(k) => return Ok(k),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        // Once the drain grace has expired, stop
                        // waiting on this client: idle between frames
                        // this reads as a clean close; mid-frame the
                        // short read surfaces as UnexpectedEof and the
                        // half-received frame is abandoned (a stalled
                        // writer must not be able to pin a handler —
                        // and with it shutdown — forever). Requests
                        // already *executing* are unaffected.
                        if self.shared.drain_expired() {
                            return Ok(0);
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    let mut reader = PolledReader { stream, shared };
    match read_frame(&mut reader, max_frame) {
        Ok(Some(frame)) => {
            shared.frames_in.fetch_add(1, Ordering::Relaxed);
            shared.bytes_in.fetch_add(5 + frame.body.len() as u64, Ordering::Relaxed);
            Polled::Frame(frame)
        }
        Ok(None) => Polled::Done,
        Err(ReadFrameError::TooLarge { len, max }) => {
            let _ = send_error(
                reader.stream,
                shared,
                ErrorCode::FrameTooLarge,
                &format!("frame length {len} exceeds cap {max}"),
            );
            Polled::Fatal
        }
        Err(ReadFrameError::Io(_)) => Polled::Done,
    }
}

/// Serve one connection to completion.
fn handle_client(
    mut stream: UnixStream,
    engine: &Engine,
    shared: &Shared,
    max_frame: u32,
    conn_id: u64,
) {
    // The read/write timeouts are the poll cadence for noticing
    // shutdown and dead peers; they are not client-visible deadlines
    // (see `read_frame_polled` / `PolledWriter`).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    // The version the HELLO negotiated (None until then): v5-only
    // request features (the deadline flag) are rejected on
    // connections that negotiated lower.
    let mut negotiated: Option<u16> = None;
    loop {
        let frame = match read_frame_polled(&mut stream, shared, max_frame) {
            Polled::Frame(f) => f,
            Polled::Done | Polled::Fatal => return,
        };
        // Panic firewall: decode and execution are typed, so a panic
        // below is a server bug — but it must cost exactly one
        // connection (typed reply, then close), never the handler
        // thread pool's integrity or the daemon.
        let keep = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch(&frame, &mut stream, engine, shared, max_frame, &mut negotiated, conn_id)
        }))
        .unwrap_or_else(|_| {
            let _ = send_error(
                &mut stream,
                shared,
                ErrorCode::InternalError,
                "request handling panicked",
            );
            false
        });
        if !keep || shared.drain_expired() {
            return;
        }
    }
}

/// Decode and answer one frame. Returns whether the connection should
/// keep being served.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    frame: &Frame,
    stream: &mut UnixStream,
    engine: &Engine,
    shared: &Shared,
    max_frame: u32,
    negotiated: &mut Option<u16>,
    conn_id: u64,
) -> bool {
    let t_decode = Instant::now();
    let req = match protocol::decode_request(frame) {
        Ok(req) => req,
        Err(we) => {
            // Decode failures consumed the whole body off the wire, so
            // the stream is still framed correctly: reply and carry on.
            rankd_log!(Level::Debug, "server", "decode failed: {we}");
            return send_error(stream, shared, we.code, &we.message).is_ok();
        }
    };
    let decode_ns = t_decode.elapsed().as_nanos() as u64;
    let deadline_ms = match &req {
        WireRequest::Rank { deadline_ms, .. }
        | WireRequest::Scan { deadline_ms, .. }
        | WireRequest::SegScan { deadline_ms, .. }
        | WireRequest::RankH { deadline_ms, .. }
        | WireRequest::ScanH { deadline_ms, .. }
        | WireRequest::SegScanH { deadline_ms, .. } => *deadline_ms,
        _ => None,
    };
    // The deadline flag is a v5 feature: a connection that negotiated
    // lower and sends it anyway is speaking a protocol it did not
    // agree to, so the frame is malformed (the connection survives —
    // framing is intact).
    if deadline_ms.is_some() && negotiated.is_some_and(|v| v < 5) {
        return send_error(
            stream,
            shared,
            ErrorCode::Malformed,
            "FLAG_DEADLINE requires a v5 handshake",
        )
        .is_ok();
    }
    // Job-bearing frames get a trace id at the moment of decode — the
    // earliest point the request exists as a typed value — so the span
    // covers the whole server-side pipeline.
    let opts = match req {
        WireRequest::Rank { .. }
        | WireRequest::Scan { .. }
        | WireRequest::SegScan { .. }
        | WireRequest::RankH { .. }
        | WireRequest::ScanH { .. }
        | WireRequest::SegScanH { .. } => {
            let trace_id = telemetry::next_trace_id();
            engine.telemetry().record_phase(Phase::Decode, decode_ns);
            rankd_log!(
                Level::Trace,
                "server",
                "request trace={trace_id} kind={:#04x} body={}B decode={:.3}ms",
                frame.kind,
                frame.body.len(),
                decode_ns as f64 / 1e6
            );
            let mut opts = JobOptions::default().with_trace_id(trace_id);
            opts.decode_ns = decode_ns;
            opts.deadline_ms = deadline_ms;
            opts
        }
        _ => JobOptions::default(),
    };
    match req {
        WireRequest::Hello { magic, version } => {
            if magic != protocol::MAGIC {
                let _ = send_error(
                    stream,
                    shared,
                    ErrorCode::BadMagic,
                    &format!("magic {magic:#010x}, want {:#010x}", protocol::MAGIC),
                );
                return false;
            }
            // v3, v4, and v5 are purely additive over v2, so
            // older-but-compatible clients are served; they simply
            // never send handle, mutation, or deadline-flagged
            // frames. HELLO_OK still carries the server's version so
            // a newer client knows what it may use.
            if !(protocol::MIN_VERSION..=protocol::VERSION).contains(&version) {
                let _ = send_error(
                    stream,
                    shared,
                    ErrorCode::VersionMismatch,
                    &format!(
                        "client speaks v{version}, server accepts v{}..=v{}",
                        protocol::MIN_VERSION,
                        protocol::VERSION
                    ),
                );
                return false;
            }
            *negotiated = Some(version);
            send(
                stream,
                shared,
                FrameKind::HelloOk,
                // Advertise the cap this server actually enforces
                // (ServeConfig::max_frame), not the protocol default.
                &protocol::hello_ok_body(protocol::VERSION, max_frame),
            )
            .is_ok()
        }
        _ if negotiated.is_none() => {
            send_error(stream, shared, ErrorCode::ExpectedHello, "send HELLO before requests")
                .is_ok()
        }
        WireRequest::Stats => {
            let es = engine.stats();
            let ss = shared.stats();
            let wire = WireStats {
                engine_submitted: es.submitted,
                engine_completed: es.completed,
                engine_cancelled: es.cancelled,
                engine_failed: es.failed,
                engine_elements: es.elements,
                connections_total: ss.connections_total,
                connections_active: ss.connections_active,
                peak_connections: ss.peak_connections,
                frames_in: ss.frames_in,
                frames_out: ss.frames_out,
                bytes_in: ss.bytes_in,
                bytes_out: ss.bytes_out,
                errors_sent: ss.errors_sent,
                busy_rejected: ss.busy_rejected,
                text: format!("{es}\n-- serving --\n{ss}\n"),
            };
            send(stream, shared, FrameKind::StatsOk, &protocol::stats_body(&wire)).is_ok()
        }
        WireRequest::StatsV2 => {
            let es = engine.stats();
            let ss = shared.stats();
            let st = shared.store.stats();
            let ms = shared.store.mutation_stats();
            let wire = WireStatsV2 {
                phase: es.phase_hist,
                per_op: es.op_hist,
                mispredict: es.mispredict,
                gauges: StatsGauges {
                    uptime_ns: (es.uptime_s * 1e9) as u64,
                    submitted: es.submitted,
                    completed: es.completed,
                    cancelled: es.cancelled,
                    failed: es.failed,
                    rejected_full: es.rejected_full,
                    elements: es.elements,
                    queue_depth: es.queue_depth as u64,
                    peak_queue_depth: es.peak_queue_depth as u64,
                    lane_steps: es.lane_steps,
                    lane_slots: es.lane_slots,
                    connections_active: ss.connections_active,
                    connections_total: ss.connections_total,
                },
                store: StoreGauges {
                    budget_bytes: st.budget_bytes,
                    resident_bytes: st.resident_bytes,
                    resident_count: st.resident_count,
                    puts: st.puts,
                    drops: st.drops,
                    lookups: st.lookups,
                    hits: st.hits,
                    misses: st.misses,
                    evictions: st.evictions,
                    put_rejected: st.put_rejected,
                    artifacts_built: st.artifacts_built,
                    artifacts_reused: st.artifacts_reused,
                },
                mutate: MutGauges {
                    mutations: ms.mutations,
                    edits: ms.edits,
                    incremental: ms.incremental,
                    full: ms.full,
                    dirty_shards_patched: ms.dirty_shards_patched,
                    artifacts_patched: ms.artifacts_patched,
                },
                fault: {
                    let fs = shared.fault.snapshot();
                    FaultGauges {
                        injected_io_errors: fs.io_errors,
                        injected_delays: fs.delays,
                        injected_short_writes: fs.short_writes,
                        injected_exec_panics: fs.exec_panics,
                        injected_store_errors: fs.store_errors,
                        panics_recovered: es.panics_recovered,
                        workers_respawned: es.workers_respawned,
                        deadline_expired: es.deadline_expired,
                        shed_queue: shared.shed_queue.load(Ordering::Relaxed),
                        shed_store: shared.shed_store.load(Ordering::Relaxed),
                    }
                },
                dispatch_by_op: es
                    .dispatch_by_op
                    .iter()
                    .map(|(op, row)| (*op, row.to_vec()))
                    .collect(),
            };
            send(stream, shared, FrameKind::StatsV2Ok, &protocol::stats_v2_body(&wire)).is_ok()
        }
        WireRequest::Shutdown => {
            let _ = send(stream, shared, FrameKind::ShutdownOk, &[]);
            shared.begin_shutdown();
            false
        }
        WireRequest::Rank { sharded, list, deadline_ms: _ } => {
            let list = Arc::new(list);
            let req = if sharded { Request::rank_sharded(list) } else { Request::rank(list) };
            run_and_reply(engine, req, opts, stream, shared)
        }
        WireRequest::Scan { sharded, op, list, values, deadline_ms: _ } => {
            let list = Arc::new(list);
            match (op, values) {
                (WireOp::Add, WireValues::I64(v)) => {
                    run_and_reply(engine, scan_req(list, v, AddOp, sharded), opts, stream, shared)
                }
                (WireOp::Max, WireValues::I64(v)) => {
                    run_and_reply(engine, scan_req(list, v, MaxOp, sharded), opts, stream, shared)
                }
                (WireOp::Min, WireValues::I64(v)) => {
                    run_and_reply(engine, scan_req(list, v, MinOp, sharded), opts, stream, shared)
                }
                (WireOp::Xor, WireValues::U64(v)) => {
                    run_and_reply(engine, scan_req(list, v, XorOp, sharded), opts, stream, shared)
                }
                (WireOp::Affine, WireValues::Affine(v)) => run_and_reply(
                    engine,
                    scan_req(list, v, listkit::ops::AffineOp, sharded),
                    opts,
                    stream,
                    shared,
                ),
                // decode_values types the array by the operator, so a
                // mismatch cannot be constructed.
                _ => unreachable!("decoder pairs values with their operator"),
            }
        }
        WireRequest::SegScan { sharded, op, list, starts, values, deadline_ms: _ } => {
            let list = Arc::new(list);
            let starts = Arc::new(starts);
            match (op, values) {
                (WireOp::Add, WireValues::I64(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, AddOp, sharded),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Max, WireValues::I64(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, MaxOp, sharded),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Min, WireValues::I64(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, MinOp, sharded),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Xor, WireValues::U64(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, XorOp, sharded),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Affine, WireValues::Affine(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, listkit::ops::AffineOp, sharded),
                    opts,
                    stream,
                    shared,
                ),
                _ => unreachable!("decoder pairs values with their operator"),
            }
        }
        WireRequest::Put { list } => {
            // Injected admission failures and the store-pressure
            // watermark both answer OVERLOADED — a *retryable* refusal,
            // unlike the terminal STORE_FULL (dataset can never fit).
            if shared.fault.store_error() {
                return send_error(
                    stream,
                    shared,
                    ErrorCode::Overloaded,
                    "store admission refused (injected), retry_after_ms=50",
                )
                .is_ok();
            }
            if shared.shed_store_bytes > 0
                && shared.store.stats().resident_bytes >= shared.shed_store_bytes
            {
                shared.shed_store.fetch_add(1, Ordering::Relaxed);
                return send_error(
                    stream,
                    shared,
                    ErrorCode::Overloaded,
                    "store over pressure watermark, retry_after_ms=100",
                )
                .is_ok();
            }
            match shared.store.put(conn_id, Arc::new(list)) {
                Ok(receipt) => {
                    rankd_log!(
                        Level::Debug,
                        "server",
                        "conn {conn_id} PUT handle={} ({} bytes resident)",
                        receipt.handle,
                        receipt.bytes
                    );
                    send(
                        stream,
                        shared,
                        FrameKind::PutOk,
                        &protocol::put_ok_body(receipt.handle, receipt.bytes),
                    )
                    .is_ok()
                }
                Err(e) => send_error(stream, shared, store_error_code(e), &e.to_string()).is_ok(),
            }
        }
        WireRequest::Mutate { handle, edits } => {
            // Mutations run on the handler thread, not through the job
            // queue: they hold the dataset's mutation lock anyway, so
            // queueing them would only add latency, and the engine's
            // planner is still consulted for the maintenance strategy.
            match crate::dynamic::mutate(&shared.store, engine.planner(), handle, conn_id, &edits) {
                Ok(out) => {
                    rankd_log!(
                        Level::Debug,
                        "server",
                        "conn {conn_id} MUTATE handle={handle} applied={} len={} {} \
                         dirty={} artifacts={} in {:.3}ms",
                        out.applied,
                        out.len,
                        if out.incremental { "incremental" } else { "full" },
                        out.dirty_shards,
                        out.artifacts,
                        out.exec_ns as f64 / 1e6
                    );
                    send(
                        stream,
                        shared,
                        FrameKind::MutateOk,
                        &protocol::mutate_ok_body(&WireMutateOk {
                            applied: out.applied,
                            len: out.len,
                            incremental: out.incremental,
                            dirty_shards: out.dirty_shards,
                            artifacts: out.artifacts,
                            exec_ns: out.exec_ns,
                        }),
                    )
                    .is_ok()
                }
                Err(e) => {
                    let code = match e {
                        MutateError::Stale => ErrorCode::StaleHandle,
                        MutateError::Edit(_) => ErrorCode::BadMutation,
                    };
                    send_error(stream, shared, code, &format!("MUTATE handle {handle}: {e}"))
                        .is_ok()
                }
            }
        }
        WireRequest::Drop { handle } => match shared.store.drop_dataset(handle, conn_id) {
            Ok(()) => send(stream, shared, FrameKind::DropOk, &[]).is_ok(),
            Err(e) => send_error(
                stream,
                shared,
                store_error_code(e),
                &format!("DROP handle {handle}: {e}"),
            )
            .is_ok(),
        },
        WireRequest::RankH { sharded, handle, deadline_ms: _ } => {
            let entry = match shared.store.get(handle, conn_id) {
                Ok(entry) => entry,
                Err(e) => {
                    return send_error(
                        stream,
                        shared,
                        store_error_code(e),
                        &format!("handle {handle}: {e}"),
                    )
                    .is_ok()
                }
            };
            let list = entry.list();
            let req = if sharded { Request::rank_sharded(list) } else { Request::rank(list) }
                .with_artifacts(entry.artifacts());
            // `entry` (the eviction pin) lives until this arm returns,
            // i.e. past the job's completion and reply write.
            run_and_reply(engine, req, opts, stream, shared)
        }
        WireRequest::ScanH { sharded, op, handle, values, deadline_ms: _ } => {
            let entry = match shared.store.get(handle, conn_id) {
                Ok(entry) => entry,
                Err(e) => {
                    return send_error(
                        stream,
                        shared,
                        store_error_code(e),
                        &format!("handle {handle}: {e}"),
                    )
                    .is_ok()
                }
            };
            let list = entry.list();
            let warm = entry.artifacts();
            match (op, values) {
                (WireOp::Add, WireValues::I64(v)) => run_and_reply(
                    engine,
                    scan_req(list, v, AddOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Max, WireValues::I64(v)) => run_and_reply(
                    engine,
                    scan_req(list, v, MaxOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Min, WireValues::I64(v)) => run_and_reply(
                    engine,
                    scan_req(list, v, MinOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Xor, WireValues::U64(v)) => run_and_reply(
                    engine,
                    scan_req(list, v, XorOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Affine, WireValues::Affine(v)) => run_and_reply(
                    engine,
                    scan_req(list, v, listkit::ops::AffineOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                _ => unreachable!("decoder pairs values with their operator"),
            }
        }
        WireRequest::SegScanH { sharded, op, handle, starts, values, deadline_ms: _ } => {
            let entry = match shared.store.get(handle, conn_id) {
                Ok(entry) => entry,
                Err(e) => {
                    return send_error(
                        stream,
                        shared,
                        store_error_code(e),
                        &format!("handle {handle}: {e}"),
                    )
                    .is_ok()
                }
            };
            let list = entry.list();
            let warm = entry.artifacts();
            let starts = Arc::new(starts);
            match (op, values) {
                (WireOp::Add, WireValues::I64(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, AddOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Max, WireValues::I64(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, MaxOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Min, WireValues::I64(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, MinOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Xor, WireValues::U64(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, XorOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                (WireOp::Affine, WireValues::Affine(v)) => run_and_reply(
                    engine,
                    seg_req(list, v, starts, listkit::ops::AffineOp, sharded).with_artifacts(warm),
                    opts,
                    stream,
                    shared,
                ),
                _ => unreachable!("decoder pairs values with their operator"),
            }
        }
    }
}

/// The wire error code for a store refusal.
fn store_error_code(e: StoreError) -> ErrorCode {
    match e {
        StoreError::StaleHandle => ErrorCode::StaleHandle,
        StoreError::StoreFull => ErrorCode::StoreFull,
    }
}

fn scan_req<T, Op>(list: Arc<LinkedList>, values: Vec<T>, op: Op, sharded: bool) -> Request<Vec<T>>
where
    T: Copy + Send + Sync + 'static,
    Op: listkit::ScanOp<T> + Send + Sync + 'static,
{
    let values = Arc::new(values);
    if sharded {
        Request::scan_sharded(list, values, op)
    } else {
        Request::scan(list, values, op)
    }
}

fn seg_req<T, Op>(
    list: Arc<LinkedList>,
    values: Vec<T>,
    starts: Arc<Vec<bool>>,
    op: Op,
    sharded: bool,
) -> Request<Vec<T>>
where
    T: Copy + Send + Sync + 'static,
    Op: listkit::ScanOp<T> + Clone + Send + Sync + 'static,
{
    let values = Arc::new(values);
    if sharded {
        Request::segmented_scan_sharded(list, values, starts, op)
    } else {
        Request::segmented_scan(list, values, starts, op)
    }
}

/// Submit through the engine's blocking path (this is where a flooded
/// queue turns into per-client backpressure), await, and encode the
/// OUTPUT reply. Returns whether the connection should keep being
/// served.
fn run_and_reply<T: WireElem + Send + 'static>(
    engine: &Engine,
    req: Request<Vec<T>>,
    opts: JobOptions,
    stream: &mut UnixStream,
    shared: &Shared,
) -> bool {
    // Load shedding: past the watermark, tell the client to back off
    // *now* instead of letting blocking submit stretch its latency.
    // Off by default — blocking backpressure stays the baseline.
    if shared.shed_queue_depth > 0 && engine.queue_depth() >= shared.shed_queue_depth {
        shared.shed_queue.fetch_add(1, Ordering::Relaxed);
        return send_error(
            stream,
            shared,
            ErrorCode::Overloaded,
            "queue over shed watermark, retry_after_ms=25",
        )
        .is_ok();
    }
    let handle = match engine.submit_with(req, opts) {
        Ok(h) => h,
        Err(SubmitError::Invalid) => {
            return send_error(
                stream,
                shared,
                ErrorCode::InvalidRequest,
                "request failed submit validation",
            )
            .is_ok()
        }
        Err(SubmitError::Shutdown) => {
            let _ = send_error(stream, shared, ErrorCode::EngineShutdown, "engine shut down");
            return false;
        }
        // Blocking submit never reports Full; treat it like Busy if it
        // ever does.
        Err(SubmitError::Full) => {
            return send_error(stream, shared, ErrorCode::Busy, "queue full").is_ok()
        }
    };
    match handle.wait() {
        Ok(report) => {
            let meta = protocol::OutputMeta {
                algorithm: report.algorithm,
                shards: report.shards as u32,
                queued_ns: report.queued_ns,
                exec_ns: report.exec_ns,
                trace_id: report.trace_id,
            };
            let body = protocol::output_body(&meta, &report.output);
            let t_reply = Instant::now();
            let ok = send(stream, shared, FrameKind::Output, &body).is_ok();
            let reply_ns = t_reply.elapsed().as_nanos() as u64;
            engine.telemetry().record_phase(Phase::ReplyWrite, reply_ns);
            rankd_log!(
                Level::Trace,
                "server",
                "reply trace={} bytes={} reply-write={:.3}ms",
                report.trace_id,
                body.len() + 5,
                reply_ns as f64 / 1e6
            );
            ok
        }
        Err(JobError::Failed) => {
            // The worker caught the panic; only this request is lost
            // and the connection keeps being served.
            send_error(stream, shared, ErrorCode::InternalError, "job execution panicked").is_ok()
        }
        Err(JobError::Cancelled) => {
            // The server never cancels its own jobs; defensive arm.
            send_error(stream, shared, ErrorCode::JobFailed, "job cancelled").is_ok()
        }
        Err(JobError::DeadlineExceeded) => send_error(
            stream,
            shared,
            ErrorCode::DeadlineExceeded,
            "request deadline exceeded in queue",
        )
        .is_ok(),
    }
}
