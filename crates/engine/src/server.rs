//! `rankd serve` — the event-driven multi-tenant socket front-end.
//!
//! One [`Server`] wraps one [`Engine`]: a single-threaded *reactor*
//! owns every connection fd (Unix domain socket, and optionally TCP
//! via [`ServeConfig::with_tcp`]), multiplexes readiness with
//! `poll(2)` ([`crate::poll`]), and decodes [`crate::protocol`] frames
//! out of per-connection read buffers. Job-bearing frames are
//! submitted through the engine's *non-blocking* callback path; the
//! worker that settles a job pushes the encoded reply into a
//! completion hub and wakes the reactor over a self-pipe. No thread
//! is parked per in-flight request, which is what makes pipelining
//! scale:
//!
//! * **Pipelining (v6).** A request carrying
//!   [`protocol::FLAG_REQUEST_ID`] does not serialize the connection:
//!   many ids may be in flight at once, and replies come back as
//!   [`FrameKind::OutputP`] / [`FrameKind::ErrorP`] frames echoing the
//!   id, in *completion* order. Requests without an id keep the
//!   classic serial contract — they wait for the connection's
//!   in-flight set to drain and block further parsing until answered,
//!   so v2–v5 clients observe exactly the old behavior.
//! * **QoS (v6).** [`protocol::FLAG_BATCH`] routes a job to the batch
//!   class of the two-class scheduler ([`crate::sched`]): interactive
//!   work dispatches first, deadline-carrying jobs order first within
//!   a class, and a periodic aging valve bounds batch starvation.
//!   Per-tenant quotas — in-flight jobs
//!   ([`ServeConfig::with_inflight_quota`]) and resident store bytes
//!   ([`ServeConfig::with_store_quota`]) — are enforced at admission,
//!   keyed by connection identity, and answered with typed
//!   [`ErrorCode::QuotaExceeded`] refusals.
//! * **Backpressure without deadlock.** A connection past its write
//!   high-watermark (a pipelining client that stops reading replies)
//!   simply stops being *read*; completions still flush
//!   opportunistically, so the reactor never blocks on a slow client,
//!   and a client that never drains is reclaimed by the write-stall
//!   limit.
//!
//! Error handling is deliberately forgiving: a malformed frame body
//! gets a typed [`FrameKind::Error`] reply and the connection keeps
//! serving. Only three conditions close a connection from the server
//! side — a failed handshake, a length prefix above the frame cap
//! (framing can no longer be trusted), and shutdown draining.
//!
//! Shutdown (a client's SHUTDOWN frame, or the `--serve-secs`
//! deadline) is graceful: the listeners stop accepting, every
//! in-flight request still completes and its reply is flushed, and
//! idle connections linger up to [`ServeConfig::drain_grace`] before
//! the reactor closes them and removes the socket file.

use crate::dynamic::MutateError;
use crate::engine::Engine;
use crate::fault::FaultPlane;
use crate::job::{JobError, JobOptions, JobReport, Request};
use crate::poll::{poll, PollFd, POLLIN, POLLOUT};
use crate::protocol::{
    self, error_body, pipelined_body, ErrorCode, FaultGauges, Frame, FrameKind, MutGauges,
    ReqFlags, SchedGauges, StatsGauges, StoreGauges, WireElem, WireMutateOk, WireOp, WireRequest,
    WireStats, WireStatsV2, WireValues, MAX_FRAME_DEFAULT,
};
use crate::queue::SubmitError;
use crate::rankd_log;
use crate::sched::{Priority, QuotaTable};
use crate::store::{ArtifactCache, DatasetRef, DatasetStore, StoreError, DEFAULT_STORE_BUDGET};
use crate::telemetry::log::Level;
use crate::telemetry::{self, AtomicHistogram, Phase};
use listkit::ops::{AddOp, AffineOp, MaxOp, MinOp, XorOp};
use listkit::LinkedList;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Serving-layer configuration (`rankd serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Filesystem path of the Unix domain socket (`--socket`). A stale
    /// file at this path is removed on bind.
    pub socket: PathBuf,
    /// Optional TCP listen address (`--tcp HOST:PORT`), served by the
    /// same reactor beside the Unix socket. `None` (the default)
    /// disables TCP.
    pub tcp: Option<String>,
    /// Maximum concurrently served clients (`--max-clients`); excess
    /// connections are answered with [`ErrorCode::Busy`] and closed.
    pub max_clients: usize,
    /// Serve for at most this long (`--serve-secs`); `None` serves
    /// until a client sends SHUTDOWN.
    pub serve_secs: Option<u64>,
    /// Per-frame size cap enforced on reads (also advertised to
    /// clients in HELLO_OK).
    pub max_frame: u32,
    /// After shutdown begins, how long the reactor waits for idle
    /// clients to disconnect before closing on them. In-flight
    /// requests always complete regardless.
    pub drain_grace: Duration,
    /// Byte budget for the resident dataset store (`--store-budget`):
    /// PUT lists plus cached sharded artifacts, under LRU eviction.
    pub store_budget: u64,
    /// The fault-injection plane (`--fault`). Disabled by default;
    /// share the same plane with [`crate::EngineConfig::with_fault`]
    /// so socket and worker injection draw from one decision stream.
    pub fault: Arc<FaultPlane>,
    /// Load-shedding watermark on engine queue depth
    /// (`--shed-queue`): job-bearing requests arriving while the
    /// queue is at or past this depth get a typed
    /// [`ErrorCode::Overloaded`] instead of blocking. `0` disables
    /// shedding (the default — backpressure-by-blocking remains the
    /// baseline admission policy).
    pub shed_queue_depth: usize,
    /// Load-shedding watermark on resident store bytes
    /// (`--shed-store`): PUTs arriving while the store holds at least
    /// this many bytes get a typed [`ErrorCode::Overloaded`] (retry
    /// later) rather than forcing LRU churn. `0` disables (default).
    pub shed_store_bytes: u64,
    /// Per-tenant in-flight job quota (`--inflight-quota`): one
    /// connection may have at most this many job-bearing requests
    /// admitted-but-unfinished before admission answers
    /// [`ErrorCode::QuotaExceeded`]. `0` disables the cap.
    pub inflight_quota: u64,
    /// Per-tenant resident store byte quota (`--store-quota`): a PUT
    /// from a connection already owning at least this many resident
    /// bytes is refused with [`ErrorCode::QuotaExceeded`]. `0`
    /// disables (default) — the global store budget still applies.
    pub store_quota: u64,
}

impl ServeConfig {
    /// Configuration with defaults for everything but the socket path.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            tcp: None,
            max_clients: 64,
            serve_secs: None,
            max_frame: MAX_FRAME_DEFAULT,
            drain_grace: Duration::from_secs(2),
            store_budget: DEFAULT_STORE_BUDGET,
            fault: Arc::new(FaultPlane::disabled()),
            shed_queue_depth: 0,
            shed_store_bytes: 0,
            inflight_quota: 64,
            store_quota: 0,
        }
    }

    /// Also listen on a TCP address (`None` = Unix socket only).
    pub fn with_tcp(mut self, addr: Option<String>) -> Self {
        self.tcp = addr;
        self
    }

    /// Override the client cap.
    pub fn with_max_clients(mut self, max: usize) -> Self {
        self.max_clients = max.max(1);
        self
    }

    /// Bound the serving time (`None` = until SHUTDOWN).
    pub fn with_serve_secs(mut self, secs: Option<u64>) -> Self {
        self.serve_secs = secs;
        self
    }

    /// Override the frame-size cap.
    pub fn with_max_frame(mut self, max: u32) -> Self {
        self.max_frame = max.max(64);
        self
    }

    /// Override the post-shutdown drain grace.
    pub fn with_drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = grace;
        self
    }

    /// Override the resident dataset store's byte budget.
    pub fn with_store_budget(mut self, bytes: u64) -> Self {
        self.store_budget = bytes;
        self
    }

    /// Install a fault-injection plane (pass the same `Arc` to
    /// [`crate::EngineConfig::with_fault`]).
    pub fn with_fault(mut self, fault: Arc<FaultPlane>) -> Self {
        self.fault = fault;
        self
    }

    /// Set the queue-depth shedding watermark (`0` = off).
    pub fn with_shed_queue_depth(mut self, depth: usize) -> Self {
        self.shed_queue_depth = depth;
        self
    }

    /// Set the store-pressure shedding watermark in bytes (`0` = off).
    pub fn with_shed_store_bytes(mut self, bytes: u64) -> Self {
        self.shed_store_bytes = bytes;
        self
    }

    /// Set the per-tenant in-flight job quota (`0` = off).
    pub fn with_inflight_quota(mut self, quota: u64) -> Self {
        self.inflight_quota = quota;
        self
    }

    /// Set the per-tenant resident store byte quota (`0` = off).
    pub fn with_store_quota(mut self, bytes: u64) -> Self {
        self.store_quota = bytes;
        self
    }
}

/// Serving-layer counters: the connection/frame/byte dimension of the
/// stats surface, surfaced to clients through the STATS frame next to
/// the engine's own [`crate::EngineStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections_total: u64,
    /// Connections currently being served.
    pub connections_active: u64,
    /// Highest concurrent connection count observed.
    pub peak_connections: u64,
    /// Frames decoded off client sockets.
    pub frames_in: u64,
    /// Frames written to client sockets (replies and errors).
    pub frames_out: u64,
    /// Bytes read from client sockets.
    pub bytes_in: u64,
    /// Bytes written to client sockets.
    pub bytes_out: u64,
    /// Error frames sent.
    pub errors_sent: u64,
    /// Connections turned away at [`ServeConfig::max_clients`].
    pub busy_rejected: u64,
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "connections: {} total (peak {} concurrent, {} busy-rejected), {} still open",
            self.connections_total,
            self.peak_connections,
            self.busy_rejected,
            self.connections_active
        )?;
        write!(
            f,
            "frames: {} in / {} out ({} errors)   bytes: {} in / {} out",
            self.frames_in, self.frames_out, self.errors_sent, self.bytes_in, self.bytes_out
        )
    }
}

/// State shared between the reactor, the worker completion callbacks,
/// and [`ServerControl`].
struct Shared {
    shutdown: AtomicBool,
    /// Set when shutdown begins; the reactor closes idle connections
    /// past it (in-flight requests still finish).
    drain_deadline: Mutex<Option<Instant>>,
    drain_grace: Duration,
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    peak_connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    errors_sent: AtomicU64,
    busy_rejected: AtomicU64,
    /// The resident dataset store, shared by every connection.
    store: Arc<DatasetStore>,
    /// The fault-injection plane (disabled = every probe is one
    /// predictable branch).
    fault: Arc<FaultPlane>,
    /// Queue-depth shedding watermark (`0` = off).
    shed_queue_depth: usize,
    /// Store-pressure shedding watermark in bytes (`0` = off).
    shed_store_bytes: u64,
    /// Requests shed at the queue watermark.
    shed_queue: AtomicU64,
    /// PUTs shed at the store watermark.
    shed_store: AtomicU64,
    /// Per-tenant in-flight admission ledger (tenant = connection id).
    quota: QuotaTable,
    /// Per-tenant resident store byte quota (`0` = off).
    store_quota: u64,
    /// PUTs refused at the per-tenant store quota.
    quota_rejected_store: AtomicU64,
    /// Pipelined replies delivered out of arrival order.
    reply_reorders: AtomicU64,
    /// Requests that carried a pipelining request id.
    pipelined_requests: AtomicU64,
    /// Deepest in-flight set observed on any one connection.
    max_pipeline_depth: AtomicU64,
    /// In-flight depth observed at each pipelined admission.
    pipeline_depth: AtomicHistogram,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut d = self.drain_deadline.lock().expect("drain deadline poisoned");
        if d.is_none() {
            *d = Some(Instant::now() + self.drain_grace);
        }
    }

    /// Whether an *idle* connection (no frame in progress) should stop
    /// being waited on.
    fn drain_expired(&self) -> bool {
        if !self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        match *self.drain_deadline.lock().expect("drain deadline poisoned") {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            connections_total: self.connections_total.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            errors_sent: self.errors_sent.load(Ordering::Relaxed),
            busy_rejected: self.busy_rejected.load(Ordering::Relaxed),
        }
    }
}

/// A handle for observing and stopping a running [`Server`] from
/// another thread (tests, signal handlers).
#[derive(Clone)]
pub struct ServerControl {
    shared: Arc<Shared>,
}

impl ServerControl {
    /// Ask the server to stop accepting and drain, as if a client had
    /// sent SHUTDOWN.
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Point-in-time serving-layer counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }
}

/// The `rankd serve` daemon: bind with [`Server::bind`], then
/// [`Server::run`] the reactor to completion.
pub struct Server {
    engine: Arc<Engine>,
    cfg: ServeConfig,
    listener: UnixListener,
    tcp: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the socket (removing a *stale* file at the path first) and
    /// prepare to serve requests against `engine`. A socket file with
    /// a live daemon behind it is an [`std::io::ErrorKind::AddrInUse`]
    /// error — binding never silently steals another server's path.
    /// When [`ServeConfig::tcp`] is set, the TCP listener is bound
    /// here too and served by the same reactor.
    pub fn bind(engine: Arc<Engine>, cfg: ServeConfig) -> std::io::Result<Server> {
        // A daemon that died without cleanup leaves the socket file
        // behind; rebinding over *that* is the expected restart flow.
        // Distinguish stale from live with a connect probe: refused =
        // nobody listening = safe to unlink.
        if cfg.socket.exists() {
            match UnixStream::connect(&cfg.socket) {
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("{} has a live server behind it", cfg.socket.display()),
                    ))
                }
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                    std::fs::remove_file(&cfg.socket)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        let tcp = match &cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            drain_grace: cfg.drain_grace,
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            peak_connections: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            errors_sent: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            store: Arc::new(DatasetStore::new(cfg.store_budget)),
            fault: Arc::clone(&cfg.fault),
            shed_queue_depth: cfg.shed_queue_depth,
            shed_store_bytes: cfg.shed_store_bytes,
            shed_queue: AtomicU64::new(0),
            shed_store: AtomicU64::new(0),
            quota: QuotaTable::new(cfg.inflight_quota),
            store_quota: cfg.store_quota,
            quota_rejected_store: AtomicU64::new(0),
            reply_reorders: AtomicU64::new(0),
            pipelined_requests: AtomicU64::new(0),
            max_pipeline_depth: AtomicU64::new(0),
            pipeline_depth: AtomicHistogram::new(),
        });
        Ok(Server { engine, cfg, listener, tcp, shared })
    }

    /// The socket path this server is bound to.
    pub fn socket_path(&self) -> &Path {
        &self.cfg.socket
    }

    /// The TCP address actually bound (useful with a `:0` port), if
    /// TCP serving is enabled.
    pub fn tcp_local_addr(&self) -> Option<std::net::SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// A cloneable control handle (shutdown + stats) usable from other
    /// threads while [`Server::run`] blocks.
    pub fn control(&self) -> ServerControl {
        ServerControl { shared: Arc::clone(&self.shared) }
    }

    /// Run the reactor until SHUTDOWN (or the `serve_secs` deadline),
    /// drain every connection, remove the socket file, and return the
    /// final serving-layer counters.
    pub fn run(self) -> std::io::Result<ServerStats> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let hub = Arc::new(Hub { queue: Mutex::new(Vec::new()), wake_tx });
        let mut reactor = Reactor {
            engine: self.engine,
            cfg: self.cfg,
            shared: self.shared,
            unix: self.listener,
            tcp: self.tcp,
            hub,
            wake_rx,
            conns: HashMap::new(),
        };
        let result = reactor.run_loop();
        let _ = std::fs::remove_file(&reactor.cfg.socket);
        result.map(|()| reactor.shared.stats())
    }
}

/// Reactor poll timeout: the cadence for deadline/drain checks and
/// parked-submit retries when no fd is ready (completions and socket
/// readiness wake it immediately).
const TICK_MS: i32 = 25;

/// Read chunk size per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;

/// Per-connection write-buffer high watermark: past it the reactor
/// stops *reading* the connection (natural pipelining backpressure —
/// the client must drain replies before submitting more).
const WBUF_HIGH_WATERMARK: usize = 1 << 20;

/// How long a connection's pending reply bytes may sit with zero write
/// progress before the reactor gives the client up for dead. Bounds
/// the damage of a client that submits work and never reads the
/// reply: its buffers (and the `--max-clients` slot it holds) are
/// reclaimed instead of growing forever.
const WRITE_STALL_LIMIT: Duration = Duration::from_secs(30);

/// The tighter zero-progress limit applied once the shutdown drain
/// grace has expired: still long enough that an actively-draining
/// client's reply completes, short enough that a dead one cannot
/// stretch shutdown by much.
const DRAIN_WRITE_STALL_LIMIT: Duration = Duration::from_secs(2);

/// One accepted client socket, Unix or TCP, behind one readiness fd.
enum Transport {
    /// A Unix-domain-socket client.
    Unix(UnixStream),
    /// A TCP client (`--tcp`).
    Tcp(TcpStream),
}

impl Transport {
    fn fd(&self) -> RawFd {
        match self {
            Transport::Unix(s) => s.as_raw_fd(),
            Transport::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Transport::Unix(s) => s.set_nonblocking(nb),
            Transport::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Unix(s) => s.read(buf),
            Transport::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Unix(s) => s.write(buf),
            Transport::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Unix(s) => s.flush(),
            Transport::Tcp(s) => s.flush(),
        }
    }
}

/// Work parked on a connection until the blocking condition clears
/// (retried every reactor tick).
enum Stalled {
    /// The engine queue was full at submit time: quota admission is
    /// already held, the typed request is rebuilt and re-offered each
    /// tick (parsing stays paused, so order is preserved).
    Submit { submit: SubmitFn, request_id: Option<u64>, arrival_seq: u64 },
    /// A frame that must wait for the connection's in-flight set to
    /// drain before dispatching (a serial job behind pipelined
    /// traffic, or MUTATE/DROP whose serial-equivalence contract
    /// requires no overlapping jobs on this connection). Re-decoded on
    /// dispatch; no side effects were taken at stall time.
    Frame(Frame),
}

/// A settled job's reply, pushed by the worker callback and drained by
/// the reactor.
struct Completion {
    conn: u64,
    request_id: Option<u64>,
    arrival_seq: u64,
    kind: FrameKind,
    body: Vec<u8>,
    is_error: bool,
    trace_id: u64,
}

/// The completion hub: worker callbacks push encoded replies here and
/// wake the reactor over the self-pipe.
struct Hub {
    queue: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
}

impl Hub {
    fn push(&self, c: Completion) {
        self.queue.lock().expect("completion hub poisoned").push(c);
        // A full pipe means a wake-up is already pending — exactly
        // what we need, so the result is ignorable.
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completion hub poisoned"))
    }
}

/// Everything a worker completion callback needs to route its reply.
#[derive(Clone)]
struct ReplyCtx {
    conn: u64,
    request_id: Option<u64>,
    arrival_seq: u64,
    trace_id: u64,
    /// Eviction pin for handle-routed jobs: every callback clone holds
    /// it, so the resident dataset cannot be evicted before the reply
    /// is encoded. Never read — its `Drop` is the point.
    _pin: Option<Arc<DatasetRef>>,
}

/// A re-offerable submit closure: each call builds a fresh typed
/// [`Request`] plus completion callback and offers it to the engine's
/// non-blocking path (which drops the callback unfired on error, so
/// retrying after [`SubmitError::Full`] is safe).
type SubmitFn = Box<dyn FnMut(&Engine) -> Result<u64, SubmitError>>;

/// Encode a settled job as its wire reply. With a `request_id` the
/// body is wrapped in the pipelined envelope and the kind switches to
/// the `*P` variants.
fn job_reply<T: WireElem>(
    res: Result<JobReport<Vec<T>>, JobError>,
    request_id: Option<u64>,
) -> (FrameKind, Vec<u8>, bool) {
    let (kind, body, is_error) = match res {
        Ok(report) => {
            let meta = protocol::OutputMeta {
                algorithm: report.algorithm,
                shards: report.shards as u32,
                queued_ns: report.queued_ns,
                exec_ns: report.exec_ns,
                trace_id: report.trace_id,
            };
            (FrameKind::Output, protocol::output_body(&meta, &report.output), false)
        }
        Err(e) => {
            let (code, msg) = match e {
                // The worker caught the panic; only this request is
                // lost and the connection keeps being served.
                JobError::Failed => (ErrorCode::InternalError, "job execution panicked"),
                // The server never cancels its own jobs; defensive arm.
                JobError::Cancelled => (ErrorCode::JobFailed, "job cancelled"),
                JobError::DeadlineExceeded => {
                    (ErrorCode::DeadlineExceeded, "request deadline exceeded in queue")
                }
            };
            (FrameKind::Error, error_body(code, msg), true)
        }
    };
    match request_id {
        Some(id) => {
            let pk = if is_error { FrameKind::ErrorP } else { FrameKind::OutputP };
            (pk, pipelined_body(id, &body), is_error)
        }
        None => (kind, body, is_error),
    }
}

/// Wrap a request builder into a [`SubmitFn`].
fn submit_fn<T, F>(build: F, opts: JobOptions, ctx: ReplyCtx, hub: Arc<Hub>) -> SubmitFn
where
    T: WireElem + Send + Sync + 'static,
    F: Fn() -> Request<Vec<T>> + 'static,
{
    Box::new(move |engine: &Engine| {
        let ctx = ctx.clone();
        let hub = Arc::clone(&hub);
        engine.try_submit_callback(build(), opts, move |res| {
            let (kind, body, is_error) = job_reply::<T>(res, ctx.request_id);
            hub.push(Completion {
                conn: ctx.conn,
                request_id: ctx.request_id,
                arrival_seq: ctx.arrival_seq,
                kind,
                body,
                is_error,
                trace_id: ctx.trace_id,
            });
        })
    })
}

/// Where a job's list comes from: decoded inline off the frame, or a
/// pinned resident dataset (whose artifacts warm the sharded arm).
#[derive(Clone)]
enum ListSource {
    Inline(Arc<LinkedList>),
    Resident(Arc<DatasetRef>),
}

impl ListSource {
    fn list(&self) -> Arc<LinkedList> {
        match self {
            ListSource::Inline(l) => Arc::clone(l),
            ListSource::Resident(e) => e.list(),
        }
    }

    fn warm(&self) -> Option<Arc<ArtifactCache>> {
        match self {
            ListSource::Inline(_) => None,
            ListSource::Resident(e) => Some(e.artifacts()),
        }
    }
}

fn rank_sub(
    src: ListSource,
    sharded: bool,
    opts: JobOptions,
    ctx: ReplyCtx,
    hub: Arc<Hub>,
) -> SubmitFn {
    submit_fn(
        move || {
            let list = src.list();
            let req = if sharded { Request::rank_sharded(list) } else { Request::rank(list) };
            match src.warm() {
                Some(w) => req.with_artifacts(w),
                None => req,
            }
        },
        opts,
        ctx,
        hub,
    )
}

fn scan_sub<T, Op>(
    src: ListSource,
    values: Arc<Vec<T>>,
    op: Op,
    sharded: bool,
    opts: JobOptions,
    ctx: ReplyCtx,
    hub: Arc<Hub>,
) -> SubmitFn
where
    T: WireElem + Copy + Send + Sync + 'static,
    Op: listkit::ScanOp<T> + Clone + Send + Sync + 'static,
{
    submit_fn(
        move || {
            let list = src.list();
            let values = Arc::clone(&values);
            let req = if sharded {
                Request::scan_sharded(list, values, op.clone())
            } else {
                Request::scan(list, values, op.clone())
            };
            match src.warm() {
                Some(w) => req.with_artifacts(w),
                None => req,
            }
        },
        opts,
        ctx,
        hub,
    )
}

#[allow(clippy::too_many_arguments)]
fn seg_sub<T, Op>(
    src: ListSource,
    values: Arc<Vec<T>>,
    starts: Arc<Vec<bool>>,
    op: Op,
    sharded: bool,
    opts: JobOptions,
    ctx: ReplyCtx,
    hub: Arc<Hub>,
) -> SubmitFn
where
    T: WireElem + Copy + Send + Sync + 'static,
    Op: listkit::ScanOp<T> + Clone + Send + Sync + 'static,
{
    submit_fn(
        move || {
            let list = src.list();
            let values = Arc::clone(&values);
            let starts = Arc::clone(&starts);
            let req = if sharded {
                Request::segmented_scan_sharded(list, values, starts, op.clone())
            } else {
                Request::segmented_scan(list, values, starts, op.clone())
            };
            match src.warm() {
                Some(w) => req.with_artifacts(w),
                None => req,
            }
        },
        opts,
        ctx,
        hub,
    )
}

/// Route a SCAN's `(op, values)` pair to the typed submit builder.
fn scan_any(
    src: ListSource,
    op: WireOp,
    values: WireValues,
    sharded: bool,
    opts: JobOptions,
    ctx: ReplyCtx,
    hub: Arc<Hub>,
) -> SubmitFn {
    match (op, values) {
        (WireOp::Add, WireValues::I64(v)) => {
            scan_sub(src, Arc::new(v), AddOp, sharded, opts, ctx, hub)
        }
        (WireOp::Max, WireValues::I64(v)) => {
            scan_sub(src, Arc::new(v), MaxOp, sharded, opts, ctx, hub)
        }
        (WireOp::Min, WireValues::I64(v)) => {
            scan_sub(src, Arc::new(v), MinOp, sharded, opts, ctx, hub)
        }
        (WireOp::Xor, WireValues::U64(v)) => {
            scan_sub(src, Arc::new(v), XorOp, sharded, opts, ctx, hub)
        }
        (WireOp::Affine, WireValues::Affine(v)) => {
            scan_sub(src, Arc::new(v), AffineOp, sharded, opts, ctx, hub)
        }
        // decode_values types the array by the operator, so a
        // mismatch cannot be constructed.
        _ => unreachable!("decoder pairs values with their operator"),
    }
}

/// Route a SEG_SCAN's `(op, values)` pair to the typed submit builder.
#[allow(clippy::too_many_arguments)]
fn seg_any(
    src: ListSource,
    op: WireOp,
    starts: Arc<Vec<bool>>,
    values: WireValues,
    sharded: bool,
    opts: JobOptions,
    ctx: ReplyCtx,
    hub: Arc<Hub>,
) -> SubmitFn {
    match (op, values) {
        (WireOp::Add, WireValues::I64(v)) => {
            seg_sub(src, Arc::new(v), starts, AddOp, sharded, opts, ctx, hub)
        }
        (WireOp::Max, WireValues::I64(v)) => {
            seg_sub(src, Arc::new(v), starts, MaxOp, sharded, opts, ctx, hub)
        }
        (WireOp::Min, WireValues::I64(v)) => {
            seg_sub(src, Arc::new(v), starts, MinOp, sharded, opts, ctx, hub)
        }
        (WireOp::Xor, WireValues::U64(v)) => {
            seg_sub(src, Arc::new(v), starts, XorOp, sharded, opts, ctx, hub)
        }
        (WireOp::Affine, WireValues::Affine(v)) => {
            seg_sub(src, Arc::new(v), starts, AffineOp, sharded, opts, ctx, hub)
        }
        _ => unreachable!("decoder pairs values with their operator"),
    }
}

/// One connection's state in the reactor: the socket, partial-frame
/// read buffer, pending-reply write buffer, negotiated version, and
/// the pipelining in-flight set.
struct Conn {
    id: u64,
    sock: Transport,
    /// Unparsed inbound bytes; `rpos` marks how far parsing consumed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded-but-unflushed reply bytes; `wpos` marks how far the
    /// socket accepted.
    wbuf: Vec<u8>,
    wpos: usize,
    /// The version the HELLO negotiated (None until then).
    negotiated: Option<u16>,
    /// In-flight pipelined requests: request id → arrival sequence.
    inflight: HashMap<u64, u64>,
    /// Whether a serial (no-request-id) job is in flight; parsing
    /// pauses until its reply is written, preserving the v2–v5
    /// one-at-a-time contract.
    serial_inflight: bool,
    /// Parked work (full queue, or a frame waiting for in-flight
    /// drain); parsing pauses while set.
    stalled: Option<Stalled>,
    /// Next arrival sequence number (orders reorder detection).
    next_arrival: u64,
    /// Close once `wbuf` fully drains (goodbye frame already queued).
    close_after_flush: bool,
    /// Peer sent EOF: parse what's buffered, flush what's owed, then
    /// close.
    eof: bool,
    /// Connection is finished; reaped at the end of the tick.
    dead: bool,
    /// Last instant the socket accepted reply bytes (write-stall
    /// detection).
    write_progress: Instant,
}

impl Conn {
    fn new(id: u64, sock: Transport) -> Conn {
        Conn {
            id,
            sock,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            negotiated: None,
            inflight: HashMap::new(),
            serial_inflight: false,
            stalled: None,
            next_arrival: 0,
            close_after_flush: false,
            eof: false,
            dead: false,
            write_progress: Instant::now(),
        }
    }

    fn pending_write(&self) -> bool {
        self.wbuf.len() > self.wpos
    }

    /// Whether the reactor should poll this connection for input.
    fn wants_read(&self, drained: bool) -> bool {
        !self.dead
            && !self.eof
            && !self.close_after_flush
            && !drained
            && self.stalled.is_none()
            && !self.serial_inflight
            && (self.wbuf.len() - self.wpos) < WBUF_HIGH_WATERMARK
    }

    /// No request in any stage of processing on this connection.
    fn idle(&self) -> bool {
        self.inflight.is_empty()
            && !self.serial_inflight
            && self.stalled.is_none()
            && !self.pending_write()
    }

    /// Append one frame to the write buffer and account it.
    fn enqueue(&mut self, shared: &Shared, kind: FrameKind, body: &[u8], is_error: bool) {
        if self.dead {
            return;
        }
        let Ok(len) = u32::try_from(1 + body.len()) else {
            self.dead = true;
            return;
        };
        if !self.pending_write() {
            self.wbuf.clear();
            self.wpos = 0;
            self.write_progress = Instant::now();
        }
        self.wbuf.extend_from_slice(&len.to_le_bytes());
        self.wbuf.push(kind as u8);
        self.wbuf.extend_from_slice(body);
        shared.frames_out.fetch_add(1, Ordering::Relaxed);
        shared.bytes_out.fetch_add(5 + body.len() as u64, Ordering::Relaxed);
        if is_error {
            shared.errors_sent.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Push pending reply bytes at the socket until it would block.
    /// Fault injection happens once per attempt, before any bytes
    /// move: a disabled plane is a single branch.
    fn flush(&mut self, shared: &Shared) {
        if self.dead {
            return;
        }
        if !self.pending_write() {
            if self.close_after_flush {
                self.dead = true;
            }
            return;
        }
        if shared.fault.is_enabled() {
            if let Some(d) = shared.fault.delay() {
                std::thread::sleep(d);
            }
            if shared.fault.io_error() {
                self.dead = true;
                return;
            }
            let pending = self.wbuf.len() - self.wpos;
            if pending > 1 && shared.fault.short_write() {
                // Leak a prefix onto the wire, then fail: the frame is
                // truncated mid-body exactly as a dying peer would
                // leave it, and the connection closes.
                let _ = self.sock.write(&self.wbuf[self.wpos..self.wpos + pending / 2]);
                self.dead = true;
                return;
            }
        }
        loop {
            let pending = &self.wbuf[self.wpos..];
            if pending.is_empty() {
                break;
            }
            match self.sock.write(pending) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(k) => {
                    self.wpos += k;
                    self.write_progress = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        if self.close_after_flush {
            self.dead = true;
        }
    }
}

/// The single-threaded event loop owning every connection.
struct Reactor {
    engine: Arc<Engine>,
    cfg: ServeConfig,
    shared: Arc<Shared>,
    unix: UnixListener,
    tcp: Option<TcpListener>,
    hub: Arc<Hub>,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
}

impl Reactor {
    fn run_loop(&mut self) -> io::Result<()> {
        let deadline = self.cfg.serve_secs.map(|s| Instant::now() + Duration::from_secs(s));
        loop {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    self.shared.begin_shutdown();
                }
            }
            let shutting = self.shared.shutdown.load(Ordering::SeqCst);
            if shutting && self.conns.is_empty() {
                return Ok(());
            }
            let drained = self.shared.drain_expired();

            // Build this tick's poll set: self-pipe, listeners (only
            // while accepting), and each connection's interest.
            let mut fds = Vec::with_capacity(3 + self.conns.len());
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            let unix_idx = if shutting {
                None
            } else {
                fds.push(PollFd::new(self.unix.as_raw_fd(), POLLIN));
                Some(fds.len() - 1)
            };
            let tcp_idx = match (&self.tcp, shutting) {
                (Some(t), false) => {
                    fds.push(PollFd::new(t.as_raw_fd(), POLLIN));
                    Some(fds.len() - 1)
                }
                _ => None,
            };
            let mut conn_idx: Vec<(u64, usize)> = Vec::with_capacity(self.conns.len());
            for (&id, conn) in &self.conns {
                let mut ev = 0i16;
                if conn.wants_read(drained) {
                    ev |= POLLIN;
                }
                if conn.pending_write() {
                    ev |= POLLOUT;
                }
                if ev != 0 {
                    conn_idx.push((id, fds.len()));
                    fds.push(PollFd::new(conn.sock.fd(), ev));
                }
            }
            poll(&mut fds, TICK_MS)?;

            // Drain the self-pipe (a byte per push, coalesced).
            let mut wake_buf = [0u8; 256];
            loop {
                match (&self.wake_rx).read(&mut wake_buf) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }

            // Completions first: they free in-flight slots, which
            // unblocks parsing and parked frames below.
            for c in self.hub.drain() {
                self.handle_completion(c);
            }

            // Accept new clients. A non-transient listener error is
            // fatal: begin shutdown and surface it.
            if unix_idx.is_some_and(|i| fds[i].readable()) {
                if let Err(e) = self.accept_unix() {
                    self.shared.begin_shutdown();
                    return Err(e);
                }
            }
            if tcp_idx.is_some_and(|i| fds[i].readable()) {
                if let Err(e) = self.accept_tcp() {
                    self.shared.begin_shutdown();
                    return Err(e);
                }
            }

            // Pull bytes off ready connections and parse.
            for &(id, i) in &conn_idx {
                if fds[i].readable() {
                    self.read_conn(id);
                    self.parse_conn(id);
                }
            }

            // Retry parked submits / parked frames.
            self.retry_stalled();

            // Flush pending replies, enforce the write-stall limit,
            // and settle EOF/drain closes.
            let shared = Arc::clone(&self.shared);
            let now_drained = shared.drain_expired();
            for conn in self.conns.values_mut() {
                if !conn.dead && conn.pending_write() {
                    conn.flush(&shared);
                }
                if !conn.dead && conn.pending_write() {
                    let limit =
                        if now_drained { DRAIN_WRITE_STALL_LIMIT } else { WRITE_STALL_LIMIT };
                    if conn.write_progress.elapsed() >= limit {
                        rankd_log!(
                            Level::Debug,
                            "server",
                            "conn {} not draining replies, closing",
                            conn.id
                        );
                        conn.dead = true;
                    }
                }
                if !conn.dead && (now_drained || conn.eof) && conn.idle() {
                    conn.dead = true;
                }
            }
            self.reap();
        }
    }

    fn accept_unix(&mut self) -> io::Result<()> {
        loop {
            match self.unix.accept() {
                Ok((stream, _addr)) => self.admit(Transport::Unix(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    fn accept_tcp(&mut self) -> io::Result<()> {
        loop {
            let Some(listener) = &self.tcp else { return Ok(()) };
            match listener.accept() {
                Ok((stream, _addr)) => self.admit(Transport::Tcp(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// Register one accepted socket, or turn it away at the client
    /// cap with a best-effort typed BUSY (the one blocking write in
    /// the reactor — the socket is new and empty, so it cannot stall
    /// on a full buffer).
    fn admit(&mut self, mut sock: Transport) {
        if self.conns.len() >= self.cfg.max_clients {
            self.shared.busy_rejected.fetch_add(1, Ordering::Relaxed);
            self.shared.errors_sent.fetch_add(1, Ordering::Relaxed);
            let body = error_body(ErrorCode::Busy, "server at max clients");
            let mut frame = Vec::with_capacity(5 + body.len());
            frame.extend_from_slice(&(1 + body.len() as u32).to_le_bytes());
            frame.push(FrameKind::Error as u8);
            frame.extend_from_slice(&body);
            let _ = sock.set_nonblocking(false);
            if sock.write_all(&frame).is_ok() {
                self.shared.frames_out.fetch_add(1, Ordering::Relaxed);
                self.shared.bytes_out.fetch_add(frame.len() as u64, Ordering::Relaxed);
            }
            return;
        }
        // The connection id doubles as the dataset-store ownership key
        // *and* the quota tenant key: handles and admissions are
        // scoped to the connection, like file descriptors.
        let conn_id = self.shared.connections_total.fetch_add(1, Ordering::Relaxed) + 1;
        let now_active = self.shared.connections_active.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared.peak_connections.fetch_max(now_active, Ordering::Relaxed);
        let _ = sock.set_nonblocking(true);
        if let Transport::Tcp(t) = &sock {
            // Replies are small and latency-bound; never Nagle them.
            let _ = t.set_nodelay(true);
        }
        self.conns.insert(conn_id, Conn::new(conn_id, sock));
    }

    /// Pull every available byte off the socket (one fault probe per
    /// tick, not per chunk, so idle connections aren't ground down).
    fn read_conn(&mut self, conn_id: u64) {
        let shared = Arc::clone(&self.shared);
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        if conn.dead || conn.eof {
            return;
        }
        if shared.fault.is_enabled() {
            if let Some(d) = shared.fault.delay() {
                std::thread::sleep(d);
            }
            if shared.fault.io_error() {
                conn.dead = true;
                return;
            }
        }
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match conn.sock.read(&mut buf) {
                // EOF: no more requests will arrive, but frames
                // already buffered still parse and their replies
                // still flush before the connection closes.
                Ok(0) => {
                    conn.eof = true;
                    return;
                }
                Ok(k) => conn.rbuf.extend_from_slice(&buf[..k]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Extract and dispatch every complete frame in the read buffer,
    /// stopping at a partial frame or whenever the connection's state
    /// forbids further parsing (stall, serial job in flight, closing).
    fn parse_conn(&mut self, conn_id: u64) {
        let max_frame = self.cfg.max_frame;
        let shared = Arc::clone(&self.shared);
        loop {
            if shared.drain_expired() {
                break;
            }
            let frame = {
                let Some(conn) = self.conns.get_mut(&conn_id) else { return };
                if conn.dead
                    || conn.close_after_flush
                    || conn.stalled.is_some()
                    || conn.serial_inflight
                {
                    break;
                }
                let avail = conn.rbuf.len() - conn.rpos;
                if avail < 4 {
                    break;
                }
                let len_bytes: [u8; 4] =
                    conn.rbuf[conn.rpos..conn.rpos + 4].try_into().expect("4 bytes");
                let len = u32::from_le_bytes(len_bytes);
                if len == 0 {
                    // Framing is broken in a way no typed reply can
                    // describe; close silently, as a failed read would.
                    conn.dead = true;
                    break;
                }
                if len > max_frame {
                    conn.enqueue(
                        &shared,
                        FrameKind::Error,
                        &error_body(
                            ErrorCode::FrameTooLarge,
                            &format!("frame length {len} exceeds cap {max_frame}"),
                        ),
                        true,
                    );
                    conn.close_after_flush = true;
                    break;
                }
                let len = len as usize;
                if avail < 4 + len {
                    break;
                }
                let kind = conn.rbuf[conn.rpos + 4];
                let body = conn.rbuf[conn.rpos + 5..conn.rpos + 4 + len].to_vec();
                conn.rpos += 4 + len;
                Frame { kind, body }
            };
            shared.frames_in.fetch_add(1, Ordering::Relaxed);
            shared.bytes_in.fetch_add(5 + frame.body.len() as u64, Ordering::Relaxed);
            self.dispatch_guarded(conn_id, &frame);
        }
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            if conn.rpos > 0 {
                conn.rbuf.drain(..conn.rpos);
                conn.rpos = 0;
            }
        }
    }

    /// Panic firewall around dispatch: decode and execution are typed,
    /// so a panic below is a server bug — but it must cost exactly one
    /// connection (typed reply, then close), never the reactor or the
    /// daemon.
    fn dispatch_guarded(&mut self, conn_id: u64, frame: &Frame) {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.dispatch(conn_id, frame)
        }));
        if r.is_err() {
            self.reply_error(conn_id, None, ErrorCode::InternalError, "request handling panicked");
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.close_after_flush = true;
            }
            let shared = Arc::clone(&self.shared);
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.flush(&shared);
            }
        }
    }

    /// Queue one reply frame on a connection and flush
    /// opportunistically.
    fn enqueue_reply(&mut self, conn_id: u64, kind: FrameKind, body: &[u8], is_error: bool) {
        let shared = Arc::clone(&self.shared);
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.enqueue(&shared, kind, body, is_error);
            conn.flush(&shared);
        }
    }

    /// Queue a typed error reply; with a `request_id` it goes out as a
    /// pipelined [`FrameKind::ErrorP`] echoing the id.
    fn reply_error(&mut self, conn_id: u64, request_id: Option<u64>, code: ErrorCode, msg: &str) {
        let body = error_body(code, msg);
        match request_id {
            Some(id) => {
                self.enqueue_reply(conn_id, FrameKind::ErrorP, &pipelined_body(id, &body), true)
            }
            None => self.enqueue_reply(conn_id, FrameKind::Error, &body, true),
        }
    }

    /// Error reply followed by connection close (handshake failures,
    /// engine shutdown).
    fn close_after_reply(
        &mut self,
        conn_id: u64,
        request_id: Option<u64>,
        code: ErrorCode,
        msg: &str,
    ) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.close_after_flush = true;
        }
        self.reply_error(conn_id, request_id, code, msg);
    }

    /// Decode and answer one frame.
    fn dispatch(&mut self, conn_id: u64, frame: &Frame) {
        let t_decode = Instant::now();
        let req = match protocol::decode_request(frame) {
            Ok(req) => req,
            Err(we) => {
                // Decode failures consumed the whole body off the
                // wire, so the stream is still framed correctly:
                // reply and carry on.
                rankd_log!(Level::Debug, "server", "decode failed: {we}");
                self.reply_error(conn_id, None, we.code, &we.message);
                return;
            }
        };
        let decode_ns = t_decode.elapsed().as_nanos() as u64;
        let flags = match &req {
            WireRequest::Rank { flags, .. }
            | WireRequest::Scan { flags, .. }
            | WireRequest::SegScan { flags, .. }
            | WireRequest::RankH { flags, .. }
            | WireRequest::ScanH { flags, .. }
            | WireRequest::SegScanH { flags, .. } => Some(*flags),
            _ => None,
        };
        let negotiated = self.conns.get(&conn_id).and_then(|c| c.negotiated);
        // Versioned request features: a connection that negotiated
        // lower and sends them anyway is speaking a protocol it did
        // not agree to, so the frame is malformed (the connection
        // survives — framing is intact). Pre-HELLO frames fall through
        // to the EXPECTED_HELLO arm below instead.
        if let Some(f) = flags {
            if f.deadline_ms.is_some() && negotiated.is_some_and(|v| v < 5) {
                self.reply_error(
                    conn_id,
                    None,
                    ErrorCode::Malformed,
                    "FLAG_DEADLINE requires a v5 handshake",
                );
                return;
            }
            if f.batch && negotiated.is_some_and(|v| v < 6) {
                self.reply_error(
                    conn_id,
                    None,
                    ErrorCode::Malformed,
                    "FLAG_BATCH requires a v6 handshake",
                );
                return;
            }
            if f.request_id.is_some() && negotiated.is_some_and(|v| v < 6) {
                self.reply_error(
                    conn_id,
                    None,
                    ErrorCode::Malformed,
                    "FLAG_REQUEST_ID requires a v6 handshake",
                );
                return;
            }
        }
        match req {
            WireRequest::Hello { magic, version } => {
                if magic != protocol::MAGIC {
                    self.close_after_reply(
                        conn_id,
                        None,
                        ErrorCode::BadMagic,
                        &format!("magic {magic:#010x}, want {:#010x}", protocol::MAGIC),
                    );
                    return;
                }
                // v3..v6 are purely additive over v2, so
                // older-but-compatible clients are served; they simply
                // never send handle, mutation, deadline, or pipelining
                // frames. HELLO_OK still carries the server's version
                // so a newer client knows what it may use.
                if !(protocol::MIN_VERSION..=protocol::VERSION).contains(&version) {
                    self.close_after_reply(
                        conn_id,
                        None,
                        ErrorCode::VersionMismatch,
                        &format!(
                            "client speaks v{version}, server accepts v{}..=v{}",
                            protocol::MIN_VERSION,
                            protocol::VERSION
                        ),
                    );
                    return;
                }
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.negotiated = Some(version);
                }
                // Advertise the cap this server actually enforces
                // (ServeConfig::max_frame), not the protocol default.
                let body = protocol::hello_ok_body(protocol::VERSION, self.cfg.max_frame);
                self.enqueue_reply(conn_id, FrameKind::HelloOk, &body, false);
            }
            _ if negotiated.is_none() => {
                self.reply_error(
                    conn_id,
                    None,
                    ErrorCode::ExpectedHello,
                    "send HELLO before requests",
                );
            }
            WireRequest::Stats => {
                let body = protocol::stats_body(&self.stats_v1());
                self.enqueue_reply(conn_id, FrameKind::StatsOk, &body, false);
            }
            WireRequest::StatsV2 => {
                let body = protocol::stats_v2_body(&self.stats_v2());
                self.enqueue_reply(conn_id, FrameKind::StatsV2Ok, &body, false);
            }
            WireRequest::Shutdown => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.close_after_flush = true;
                }
                self.enqueue_reply(conn_id, FrameKind::ShutdownOk, &[], false);
                self.shared.begin_shutdown();
            }
            WireRequest::Put { list } => self.do_put(conn_id, list),
            WireRequest::Mutate { .. } | WireRequest::Drop { .. } => {
                // Serial equivalence: a mutation must not overlap jobs
                // already in flight on this connection (they read the
                // dataset the mutation edits). Park the frame until
                // the in-flight set drains; no side effects were taken
                // yet, so re-dispatching later is safe.
                let busy = self
                    .conns
                    .get(&conn_id)
                    .map(|c| !c.inflight.is_empty() || c.serial_inflight)
                    .unwrap_or(false);
                if busy {
                    if let Some(conn) = self.conns.get_mut(&conn_id) {
                        conn.stalled = Some(Stalled::Frame(Frame {
                            kind: frame.kind,
                            body: frame.body.clone(),
                        }));
                    }
                    return;
                }
                match req {
                    WireRequest::Mutate { handle, edits } => {
                        self.do_mutate(conn_id, handle, &edits)
                    }
                    WireRequest::Drop { handle } => self.do_drop(conn_id, handle),
                    _ => unreachable!("outer match narrowed to MUTATE/DROP"),
                }
            }
            WireRequest::Rank { .. }
            | WireRequest::Scan { .. }
            | WireRequest::SegScan { .. }
            | WireRequest::RankH { .. }
            | WireRequest::ScanH { .. }
            | WireRequest::SegScanH { .. } => self.dispatch_job(
                conn_id,
                frame,
                req,
                flags.expect("job frames carry flags"),
                decode_ns,
            ),
        }
    }

    /// Admit one dataset into the resident store.
    fn do_put(&mut self, conn_id: u64, list: LinkedList) {
        // Injected admission failures and the store-pressure watermark
        // both answer OVERLOADED — a *retryable* refusal, unlike the
        // terminal STORE_FULL (dataset can never fit) or the tenant's
        // own QUOTA_EXCEEDED (the tenant must DROP first).
        if self.shared.fault.store_error() {
            self.reply_error(
                conn_id,
                None,
                ErrorCode::Overloaded,
                "store admission refused (injected), retry_after_ms=50",
            );
            return;
        }
        if self.shared.store_quota > 0
            && self.shared.store.owned_bytes(conn_id) >= self.shared.store_quota
        {
            self.shared.quota_rejected_store.fetch_add(1, Ordering::Relaxed);
            self.reply_error(
                conn_id,
                None,
                ErrorCode::QuotaExceeded,
                &format!("tenant store quota ({} bytes) exceeded", self.shared.store_quota),
            );
            return;
        }
        if self.shared.shed_store_bytes > 0
            && self.shared.store.stats().resident_bytes >= self.shared.shed_store_bytes
        {
            self.shared.shed_store.fetch_add(1, Ordering::Relaxed);
            self.reply_error(
                conn_id,
                None,
                ErrorCode::Overloaded,
                "store over pressure watermark, retry_after_ms=100",
            );
            return;
        }
        match self.shared.store.put(conn_id, Arc::new(list)) {
            Ok(receipt) => {
                rankd_log!(
                    Level::Debug,
                    "server",
                    "conn {conn_id} PUT handle={} ({} bytes resident)",
                    receipt.handle,
                    receipt.bytes
                );
                let body = protocol::put_ok_body(receipt.handle, receipt.bytes);
                self.enqueue_reply(conn_id, FrameKind::PutOk, &body, false);
            }
            Err(e) => self.reply_error(conn_id, None, store_error_code(e), &e.to_string()),
        }
    }

    /// Apply one mutation batch inline. Mutations run on the reactor
    /// thread, not through the job queue: they hold the dataset's
    /// mutation lock anyway, so queueing them would only add latency,
    /// and the engine's planner is still consulted for the maintenance
    /// strategy.
    fn do_mutate(&mut self, conn_id: u64, handle: u64, edits: &[listkit::dynamic::Edit]) {
        match crate::dynamic::mutate(
            &self.shared.store,
            self.engine.planner(),
            handle,
            conn_id,
            edits,
        ) {
            Ok(out) => {
                rankd_log!(
                    Level::Debug,
                    "server",
                    "conn {conn_id} MUTATE handle={handle} applied={} len={} {} \
                     dirty={} artifacts={} in {:.3}ms",
                    out.applied,
                    out.len,
                    if out.incremental { "incremental" } else { "full" },
                    out.dirty_shards,
                    out.artifacts,
                    out.exec_ns as f64 / 1e6
                );
                let body = protocol::mutate_ok_body(&WireMutateOk {
                    applied: out.applied,
                    len: out.len,
                    incremental: out.incremental,
                    dirty_shards: out.dirty_shards,
                    artifacts: out.artifacts,
                    exec_ns: out.exec_ns,
                });
                self.enqueue_reply(conn_id, FrameKind::MutateOk, &body, false);
            }
            Err(e) => {
                let code = match e {
                    MutateError::Stale => ErrorCode::StaleHandle,
                    MutateError::Edit(_) => ErrorCode::BadMutation,
                };
                self.reply_error(conn_id, None, code, &format!("MUTATE handle {handle}: {e}"));
            }
        }
    }

    fn do_drop(&mut self, conn_id: u64, handle: u64) {
        match self.shared.store.drop_dataset(handle, conn_id) {
            Ok(()) => self.enqueue_reply(conn_id, FrameKind::DropOk, &[], false),
            Err(e) => self.reply_error(
                conn_id,
                None,
                store_error_code(e),
                &format!("DROP handle {handle}: {e}"),
            ),
        }
    }

    /// Admission-control and submit one job-bearing request.
    fn dispatch_job(
        &mut self,
        conn_id: u64,
        frame: &Frame,
        req: WireRequest,
        flags: ReqFlags,
        decode_ns: u64,
    ) {
        // Serial jobs behind pipelined traffic wait for the in-flight
        // set to drain (park the frame — no side effects yet), so
        // their one-at-a-time reply contract holds. Checked before
        // anything is counted so the re-dispatch double-records
        // nothing.
        let dup = {
            let Some(conn) = self.conns.get_mut(&conn_id) else { return };
            if flags.request_id.is_none() && !conn.inflight.is_empty() {
                conn.stalled =
                    Some(Stalled::Frame(Frame { kind: frame.kind, body: frame.body.clone() }));
                return;
            }
            flags.request_id.filter(|id| conn.inflight.contains_key(id))
        };
        if let Some(id) = dup {
            self.reply_error(
                conn_id,
                Some(id),
                ErrorCode::Malformed,
                &format!("request_id {id} already in flight"),
            );
            return;
        }
        // Load shedding: past the watermark, tell the client to back
        // off *now*. Checked before quota admission so a shed never
        // needs an admission undone.
        if self.shared.shed_queue_depth > 0
            && self.engine.queue_depth() >= self.shared.shed_queue_depth
        {
            self.shared.shed_queue.fetch_add(1, Ordering::Relaxed);
            self.reply_error(
                conn_id,
                flags.request_id,
                ErrorCode::Overloaded,
                "queue over shed watermark, retry_after_ms=25",
            );
            return;
        }
        if !self.shared.quota.try_admit(conn_id) {
            self.reply_error(
                conn_id,
                flags.request_id,
                ErrorCode::QuotaExceeded,
                &format!("tenant in-flight quota ({}) exceeded", self.shared.quota.max_inflight()),
            );
            return;
        }
        // Job-bearing frames get a trace id at the moment of decode —
        // the earliest point the request exists as a typed value — so
        // the span covers the whole server-side pipeline.
        let trace_id = telemetry::next_trace_id();
        self.engine.telemetry().record_phase(Phase::Decode, decode_ns);
        rankd_log!(
            Level::Trace,
            "server",
            "request trace={trace_id} kind={:#04x} body={}B decode={:.3}ms",
            frame.kind,
            frame.body.len(),
            decode_ns as f64 / 1e6
        );
        let mut opts = JobOptions::default().with_trace_id(trace_id);
        opts.decode_ns = decode_ns;
        opts.deadline_ms = flags.deadline_ms;
        opts.priority = if flags.batch { Priority::Batch } else { Priority::Interactive };
        let arrival_seq = {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                self.shared.quota.complete(conn_id);
                return;
            };
            let s = conn.next_arrival;
            conn.next_arrival += 1;
            s
        };
        let mut ctx = ReplyCtx {
            conn: conn_id,
            request_id: flags.request_id,
            arrival_seq,
            trace_id,
            _pin: None,
        };
        let hub = Arc::clone(&self.hub);
        let submit: SubmitFn = match req {
            WireRequest::Rank { list, .. } => {
                rank_sub(ListSource::Inline(Arc::new(list)), flags.sharded, opts, ctx, hub)
            }
            WireRequest::Scan { op, list, values, .. } => scan_any(
                ListSource::Inline(Arc::new(list)),
                op,
                values,
                flags.sharded,
                opts,
                ctx,
                hub,
            ),
            WireRequest::SegScan { op, list, starts, values, .. } => seg_any(
                ListSource::Inline(Arc::new(list)),
                op,
                Arc::new(starts),
                values,
                flags.sharded,
                opts,
                ctx,
                hub,
            ),
            WireRequest::RankH { handle, .. } => {
                let Some(pin) = self.resolve_pin(conn_id, handle, flags.request_id) else {
                    return;
                };
                ctx._pin = Some(Arc::clone(&pin));
                rank_sub(ListSource::Resident(pin), flags.sharded, opts, ctx, hub)
            }
            WireRequest::ScanH { op, handle, values, .. } => {
                let Some(pin) = self.resolve_pin(conn_id, handle, flags.request_id) else {
                    return;
                };
                ctx._pin = Some(Arc::clone(&pin));
                scan_any(ListSource::Resident(pin), op, values, flags.sharded, opts, ctx, hub)
            }
            WireRequest::SegScanH { op, handle, starts, values, .. } => {
                let Some(pin) = self.resolve_pin(conn_id, handle, flags.request_id) else {
                    return;
                };
                ctx._pin = Some(Arc::clone(&pin));
                seg_any(
                    ListSource::Resident(pin),
                    op,
                    Arc::new(starts),
                    values,
                    flags.sharded,
                    opts,
                    ctx,
                    hub,
                )
            }
            _ => unreachable!("dispatch routes only job-bearing frames here"),
        };
        self.attempt_submit(conn_id, submit, flags.request_id, arrival_seq);
    }

    /// Pin a resident dataset for a handle-routed job; on failure the
    /// quota admission is returned and the typed store error replied.
    fn resolve_pin(
        &mut self,
        conn_id: u64,
        handle: u64,
        request_id: Option<u64>,
    ) -> Option<Arc<DatasetRef>> {
        match self.shared.store.get(handle, conn_id) {
            Ok(entry) => Some(Arc::new(entry)),
            Err(e) => {
                self.shared.quota.complete(conn_id);
                self.reply_error(
                    conn_id,
                    request_id,
                    store_error_code(e),
                    &format!("handle {handle}: {e}"),
                );
                None
            }
        }
    }

    /// Offer a job to the engine's non-blocking path. A full queue
    /// parks the submit closure (quota admission stays held — parsing
    /// is paused, so no competing admission can occur on this
    /// connection, and a disconnect settles via `drop_tenant`).
    fn attempt_submit(
        &mut self,
        conn_id: u64,
        mut submit: SubmitFn,
        request_id: Option<u64>,
        arrival_seq: u64,
    ) {
        match submit(&self.engine) {
            Ok(_job_id) => self.note_submitted(conn_id, request_id, arrival_seq),
            Err(SubmitError::Full) => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.stalled = Some(Stalled::Submit { submit, request_id, arrival_seq });
                } else {
                    self.shared.quota.complete(conn_id);
                }
            }
            Err(SubmitError::Shutdown) => {
                self.shared.quota.complete(conn_id);
                self.close_after_reply(
                    conn_id,
                    request_id,
                    ErrorCode::EngineShutdown,
                    "engine shut down",
                );
            }
            Err(SubmitError::Invalid) => {
                self.shared.quota.complete(conn_id);
                self.reply_error(
                    conn_id,
                    request_id,
                    ErrorCode::InvalidRequest,
                    "request failed submit validation",
                );
            }
        }
    }

    /// Record a successful submit in the connection's in-flight state
    /// and the pipelining gauges.
    fn note_submitted(&mut self, conn_id: u64, request_id: Option<u64>, arrival_seq: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else { return };
        match request_id {
            Some(id) => {
                conn.inflight.insert(id, arrival_seq);
                let depth = conn.inflight.len() as u64;
                self.shared.pipelined_requests.fetch_add(1, Ordering::Relaxed);
                self.shared.pipeline_depth.record(depth);
                self.shared.max_pipeline_depth.fetch_max(depth, Ordering::Relaxed);
            }
            None => conn.serial_inflight = true,
        }
    }

    /// Deliver one settled job's reply: settle the quota and in-flight
    /// ledgers, queue the frame, and resume parsing (the completion
    /// may have unblocked a serial connection or freed read
    /// backpressure).
    fn handle_completion(&mut self, c: Completion) {
        // A completion for a reaped connection is discarded: its
        // `drop_tenant` already settled the quota ledger, and the
        // reply has nowhere to go.
        self.shared.quota.complete(c.conn);
        let shared = Arc::clone(&self.shared);
        let Some(conn) = self.conns.get_mut(&c.conn) else { return };
        match c.request_id {
            Some(id) => {
                conn.inflight.remove(&id);
                // A reply overtaking an earlier-arrived in-flight
                // request is a reorder — the pipelining contract
                // clients must handle (and STATS_V2 counts).
                if conn.inflight.values().any(|&seq| seq < c.arrival_seq) {
                    shared.reply_reorders.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => conn.serial_inflight = false,
        }
        let t_reply = Instant::now();
        conn.enqueue(&shared, c.kind, &c.body, c.is_error);
        conn.flush(&shared);
        if !c.is_error {
            let reply_ns = t_reply.elapsed().as_nanos() as u64;
            self.engine.telemetry().record_phase(Phase::ReplyWrite, reply_ns);
            rankd_log!(
                Level::Trace,
                "server",
                "reply trace={} bytes={} reply-write={:.3}ms",
                c.trace_id,
                c.body.len() + 5,
                reply_ns as f64 / 1e6
            );
        }
        self.parse_conn(c.conn);
    }

    /// Re-offer parked submits and re-dispatch parked frames whose
    /// blocking condition cleared.
    fn retry_stalled(&mut self) {
        let ids: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.stalled.is_some() && !c.dead)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let Some(stalled) = self.conns.get_mut(&id).and_then(|c| c.stalled.take()) else {
                continue;
            };
            match stalled {
                Stalled::Submit { submit, request_id, arrival_seq } => {
                    // Re-stalls itself on Full; parses buffered frames
                    // on success.
                    self.attempt_submit(id, submit, request_id, arrival_seq);
                    if self.conns.get(&id).is_some_and(|c| c.stalled.is_none()) {
                        self.parse_conn(id);
                    }
                }
                Stalled::Frame(frame) => {
                    let ready = self
                        .conns
                        .get(&id)
                        .map(|c| c.inflight.is_empty() && !c.serial_inflight)
                        .unwrap_or(false);
                    if ready {
                        self.dispatch_guarded(id, &frame);
                        self.parse_conn(id);
                    } else if let Some(conn) = self.conns.get_mut(&id) {
                        conn.stalled = Some(Stalled::Frame(frame));
                    }
                }
            }
        }
    }

    /// Remove finished connections and settle their tenant state.
    fn reap(&mut self) {
        let dead: Vec<u64> = self.conns.iter().filter(|(_, c)| c.dead).map(|(&id, _)| id).collect();
        for conn_id in dead {
            self.conns.remove(&conn_id);
            self.shared.quota.drop_tenant(conn_id);
            let dropped = self.shared.store.drop_connection(conn_id);
            if dropped > 0 {
                rankd_log!(
                    Level::Debug,
                    "server",
                    "conn {conn_id} closed, dropped {dropped} resident dataset(s)"
                );
            }
            self.shared.connections_active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn stats_v1(&self) -> WireStats {
        let es = self.engine.stats();
        let ss = self.shared.stats();
        WireStats {
            engine_submitted: es.submitted,
            engine_completed: es.completed,
            engine_cancelled: es.cancelled,
            engine_failed: es.failed,
            engine_elements: es.elements,
            connections_total: ss.connections_total,
            connections_active: ss.connections_active,
            peak_connections: ss.peak_connections,
            frames_in: ss.frames_in,
            frames_out: ss.frames_out,
            bytes_in: ss.bytes_in,
            bytes_out: ss.bytes_out,
            errors_sent: ss.errors_sent,
            busy_rejected: ss.busy_rejected,
            text: format!("{es}\n-- serving --\n{ss}\n"),
        }
    }

    fn stats_v2(&self) -> WireStatsV2 {
        let es = self.engine.stats();
        let ss = self.shared.stats();
        let st = self.shared.store.stats();
        let ms = self.shared.store.mutation_stats();
        let sn = self.engine.sched_snapshot();
        WireStatsV2 {
            phase: es.phase_hist,
            per_op: es.op_hist,
            mispredict: es.mispredict,
            gauges: StatsGauges {
                uptime_ns: (es.uptime_s * 1e9) as u64,
                submitted: es.submitted,
                completed: es.completed,
                cancelled: es.cancelled,
                failed: es.failed,
                rejected_full: es.rejected_full,
                elements: es.elements,
                queue_depth: es.queue_depth as u64,
                peak_queue_depth: es.peak_queue_depth as u64,
                lane_steps: es.lane_steps,
                lane_slots: es.lane_slots,
                connections_active: ss.connections_active,
                connections_total: ss.connections_total,
            },
            store: StoreGauges {
                budget_bytes: st.budget_bytes,
                resident_bytes: st.resident_bytes,
                resident_count: st.resident_count,
                puts: st.puts,
                drops: st.drops,
                lookups: st.lookups,
                hits: st.hits,
                misses: st.misses,
                evictions: st.evictions,
                put_rejected: st.put_rejected,
                artifacts_built: st.artifacts_built,
                artifacts_reused: st.artifacts_reused,
            },
            mutate: MutGauges {
                mutations: ms.mutations,
                edits: ms.edits,
                incremental: ms.incremental,
                full: ms.full,
                dirty_shards_patched: ms.dirty_shards_patched,
                artifacts_patched: ms.artifacts_patched,
            },
            fault: {
                let fs = self.shared.fault.snapshot();
                FaultGauges {
                    injected_io_errors: fs.io_errors,
                    injected_delays: fs.delays,
                    injected_short_writes: fs.short_writes,
                    injected_exec_panics: fs.exec_panics,
                    injected_store_errors: fs.store_errors,
                    panics_recovered: es.panics_recovered,
                    workers_respawned: es.workers_respawned,
                    deadline_expired: es.deadline_expired,
                    shed_queue: self.shared.shed_queue.load(Ordering::Relaxed),
                    shed_store: self.shared.shed_store.load(Ordering::Relaxed),
                }
            },
            sched: SchedGauges {
                inflight_interactive: sn.inflight(Priority::Interactive),
                inflight_batch: sn.inflight(Priority::Batch),
                dispatched_interactive: sn.dispatched[0],
                dispatched_batch: sn.dispatched[1],
                aged_dispatches: sn.aged,
                quota_rejected_inflight: self.shared.quota.rejected(),
                quota_rejected_store: self.shared.quota_rejected_store.load(Ordering::Relaxed),
                reply_reorders: self.shared.reply_reorders.load(Ordering::Relaxed),
                pipelined_requests: self.shared.pipelined_requests.load(Ordering::Relaxed),
                max_pipeline_depth: self.shared.max_pipeline_depth.load(Ordering::Relaxed),
            },
            pipeline_depth: self.shared.pipeline_depth.snapshot(),
            dispatch_by_op: es.dispatch_by_op.iter().map(|(op, row)| (*op, row.to_vec())).collect(),
        }
    }
}

/// The wire error code for a store refusal.
fn store_error_code(e: StoreError) -> ErrorCode {
    match e {
        StoreError::StaleHandle => ErrorCode::StaleHandle,
        StoreError::StoreFull => ErrorCode::StoreFull,
    }
}
