//! Engine metrics: counters, snapshot, and the printable report.

use crate::op::OpKind;
use crate::planner::{Planner, MISPREDICT_SCALE};
use crate::pool::PoolStats;
use crate::sched::SchedSnapshot;
use crate::telemetry::{Histogram, Phase, Telemetry};
use listrank::Algorithm;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const OPS: usize = OpKind::ALL.len();

/// Per-op-kind live counters.
#[derive(Debug, Default)]
pub(crate) struct OpCounters {
    pub(crate) completed: AtomicU64,
    pub(crate) elements: AtomicU64,
    pub(crate) exec_ns: AtomicU64,
}

/// Live counters (atomics; updated by workers and submitters).
#[derive(Debug)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) rejected_full: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    pub(crate) elements: AtomicU64,
    pub(crate) exec_ns: AtomicU64,
    pub(crate) queued_ns: AtomicU64,
    pub(crate) sharded_jobs: AtomicU64,
    pub(crate) shards_ranked: AtomicU64,
    pub(crate) stitch_ns: AtomicU64,
    pub(crate) lane_steps: AtomicU64,
    pub(crate) lane_slots: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) panics_recovered: AtomicU64,
    pub(crate) workers_respawned: AtomicU64,
    /// Indexed by [`OpKind::ALL`] order.
    pub(crate) per_op: [OpCounters; OPS],
}

impl Counters {
    pub(crate) fn new() -> Self {
        Counters {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            exec_ns: AtomicU64::new(0),
            queued_ns: AtomicU64::new(0),
            sharded_jobs: AtomicU64::new(0),
            shards_ranked: AtomicU64::new(0),
            stitch_ns: AtomicU64::new(0),
            lane_steps: AtomicU64::new(0),
            lane_slots: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            panics_recovered: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            per_op: Default::default(),
        }
    }
}

/// Per-op-kind throughput snapshot (one row of the stats surface's op
/// dimension).
#[derive(Clone, Copy, Debug)]
pub struct OpThroughput {
    /// The operation kind.
    pub op: OpKind,
    /// Jobs of this kind completed.
    pub completed: u64,
    /// Vertices processed by jobs of this kind.
    pub elements: u64,
    /// Total execution nanoseconds of jobs of this kind.
    pub exec_ns: u64,
}

impl OpThroughput {
    /// Mean execution nanoseconds per element.
    pub fn ns_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.exec_ns as f64 / self.elements as f64
        }
    }

    /// Elements per second of execution time (per-worker rate: sums
    /// over workers, so it exceeds wall-clock throughput when several
    /// workers run this kind concurrently).
    pub fn elements_per_exec_sec(&self) -> f64 {
        if self.exec_ns == 0 {
            0.0
        } else {
            self.elements as f64 / (self.exec_ns as f64 / 1e9)
        }
    }
}

/// A point-in-time view of the engine's metrics.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Seconds since the engine started.
    pub uptime_s: f64,
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs cancelled before execution.
    pub cancelled: u64,
    /// Jobs whose execution panicked (completed with `JobError::Failed`).
    pub failed: u64,
    /// Non-blocking submissions rejected because the queue was full.
    pub rejected_full: u64,
    /// Small-job batches executed.
    pub batches: u64,
    /// Jobs that rode in a batch.
    pub batched_jobs: u64,
    /// Total vertices processed.
    pub elements: u64,
    /// Total execution nanoseconds (sum over jobs; overlaps across
    /// workers, so divide by workers for wall-clock intuition).
    pub exec_ns: u64,
    /// Total nanoseconds jobs spent queued.
    pub queued_ns: u64,
    /// Jobs executed through the shard-parallel path (lists above the
    /// per-worker budget).
    pub sharded_jobs: u64,
    /// Total shards ranked across all sharded jobs.
    pub shards_ranked: u64,
    /// Total nanoseconds sharded jobs spent in their stitch phase
    /// (ranking the contracted boundary list).
    pub stitch_ns: u64,
    /// Vertices visited by K-lane interleaved walks (Reid-Miller
    /// Phases 1/3 and the shard-local fragment walks).
    pub lane_steps: u64,
    /// Lane-slots available while those walks ran (sweeps × lanes);
    /// `lane_steps / lane_slots` is the mean lane occupancy.
    pub lane_slots: u64,
    /// Jobs dropped at dequeue because their queue deadline expired.
    pub deadline_expired: u64,
    /// Worker panics caught by the per-job `catch_unwind` isolation
    /// (equals `failed`'s panic share; the waiter got a typed error).
    pub panics_recovered: u64,
    /// Worker threads that re-entered their loop after an unexpected
    /// panic outside job execution.
    pub workers_respawned: u64,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub peak_queue_depth: usize,
    /// Dispatch counts in [`Algorithm::ALL`] order.
    pub dispatch: [u64; Algorithm::ALL.len()],
    /// Non-empty `(bucket upper bound, dispatch counts)` rows.
    pub dispatch_by_bucket: Vec<(usize, [u64; Algorithm::ALL.len()])>,
    /// Non-empty `(op kind, dispatch counts)` rows — which algorithms
    /// served which operators.
    pub dispatch_by_op: Vec<(OpKind, [u64; Algorithm::ALL.len()])>,
    /// Per-op-kind completion/throughput rows (non-empty kinds only,
    /// [`OpKind::ALL`] order).
    pub per_op: Vec<OpThroughput>,
    /// Scratch-pool statistics.
    pub pool: PoolStats,
    /// Latency histogram per request phase, indexed by
    /// [`Phase::index`]. Sum-consistent with the counters: the
    /// queue-wait histogram's `sum()` equals `queued_ns`, the exec
    /// histogram's equals `exec_ns` (empty when telemetry is off).
    pub phase_hist: [Histogram; Phase::ALL.len()],
    /// Exec-latency histogram per op kind, indexed by [`OpKind::ALL`]
    /// order (empty histograms for kinds that never ran).
    pub op_hist: [Histogram; OpKind::ALL.len()],
    /// The planner's mispredict-ratio histogram (values are
    /// `measured/predicted × 1000`; see
    /// [`crate::planner::MISPREDICT_SCALE`]).
    pub mispredict: Histogram,
    /// QoS scheduler counters: per-class queued / dispatched /
    /// finished totals and aging-valve fires.
    pub sched: SchedSnapshot,
}

impl EngineStats {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gather(
        started: Instant,
        counters: &Counters,
        planner: &Planner,
        telemetry: &Telemetry,
        pool: PoolStats,
        queue_depth: usize,
        peak_queue_depth: usize,
        sched: SchedSnapshot,
    ) -> Self {
        let per_op = OpKind::ALL
            .iter()
            .enumerate()
            .filter_map(|(i, &op)| {
                let c = &counters.per_op[i];
                let row = OpThroughput {
                    op,
                    completed: c.completed.load(Ordering::Relaxed),
                    elements: c.elements.load(Ordering::Relaxed),
                    exec_ns: c.exec_ns.load(Ordering::Relaxed),
                };
                (row.completed > 0).then_some(row)
            })
            .collect();
        EngineStats {
            uptime_s: started.elapsed().as_secs_f64(),
            submitted: counters.submitted.load(Ordering::Relaxed),
            completed: counters.completed.load(Ordering::Relaxed),
            cancelled: counters.cancelled.load(Ordering::Relaxed),
            failed: counters.failed.load(Ordering::Relaxed),
            rejected_full: counters.rejected_full.load(Ordering::Relaxed),
            batches: counters.batches.load(Ordering::Relaxed),
            batched_jobs: counters.batched_jobs.load(Ordering::Relaxed),
            elements: counters.elements.load(Ordering::Relaxed),
            exec_ns: counters.exec_ns.load(Ordering::Relaxed),
            queued_ns: counters.queued_ns.load(Ordering::Relaxed),
            sharded_jobs: counters.sharded_jobs.load(Ordering::Relaxed),
            shards_ranked: counters.shards_ranked.load(Ordering::Relaxed),
            stitch_ns: counters.stitch_ns.load(Ordering::Relaxed),
            lane_steps: counters.lane_steps.load(Ordering::Relaxed),
            lane_slots: counters.lane_slots.load(Ordering::Relaxed),
            deadline_expired: counters.deadline_expired.load(Ordering::Relaxed),
            panics_recovered: counters.panics_recovered.load(Ordering::Relaxed),
            workers_respawned: counters.workers_respawned.load(Ordering::Relaxed),
            queue_depth,
            peak_queue_depth,
            dispatch: planner.dispatch_totals(),
            dispatch_by_bucket: planner.dispatch_by_bucket(),
            dispatch_by_op: planner.dispatch_by_op(),
            per_op,
            pool,
            phase_hist: telemetry.phase_snapshots(),
            op_hist: telemetry.op_snapshots(),
            mispredict: planner.mispredict_histogram(),
            sched,
        }
    }

    /// Completed jobs per second of uptime.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.uptime_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.uptime_s
        }
    }

    /// Vertices processed per second of uptime.
    pub fn elements_per_sec(&self) -> f64 {
        if self.uptime_s <= 0.0 {
            0.0
        } else {
            self.elements as f64 / self.uptime_s
        }
    }

    /// Mean lane occupancy of the interleaved walks: the fraction of
    /// lane-slots that held a live cursor (`0.0` when no interleaved
    /// walk ran). Low occupancy means jobs had too few live chains for
    /// their lane count — the tuner's cue to drop K.
    pub fn lane_occupancy(&self) -> f64 {
        if self.lane_slots == 0 {
            0.0
        } else {
            self.lane_steps as f64 / self.lane_slots as f64
        }
    }

    /// Mean shards per sharded job (`0.0` when none ran sharded).
    pub fn mean_shards_per_sharded_job(&self) -> f64 {
        if self.sharded_jobs == 0 {
            0.0
        } else {
            self.shards_ranked as f64 / self.sharded_jobs as f64
        }
    }

    /// Mean queue latency per completed job, milliseconds.
    pub fn mean_queue_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.queued_ns as f64 / self.completed as f64 / 1e6
        }
    }
}

fn format_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} completed / {} submitted ({} cancelled, {} failed, {} rejected) in {:.2}s",
            self.completed,
            self.submitted,
            self.cancelled,
            self.failed,
            self.rejected_full,
            self.uptime_s
        )?;
        writeln!(
            f,
            "throughput: {} jobs/s, {} elem/s   queue: depth {} (peak {}), mean wait {:.3} ms",
            format_count(self.jobs_per_sec()),
            format_count(self.elements_per_sec()),
            self.queue_depth,
            self.peak_queue_depth,
            self.mean_queue_ms()
        )?;
        writeln!(
            f,
            "batching: {} batches covering {} jobs   pool: {:.0}% hit rate ({} hits / {} misses, {} idle)",
            self.batches,
            self.batched_jobs,
            self.pool.hit_rate() * 100.0,
            self.pool.hits,
            self.pool.misses,
            self.pool.idle
        )?;
        if self.deadline_expired > 0 || self.panics_recovered > 0 || self.workers_respawned > 0 {
            writeln!(
                f,
                "resilience: {} panics recovered, {} workers respawned, {} deadlines expired",
                self.panics_recovered, self.workers_respawned, self.deadline_expired
            )?;
        }
        if self.sched.dispatched[1] > 0 || self.sched.aged > 0 {
            // Only printed once batch-class or aging activity exists, so
            // all-interactive workloads keep the historical report shape.
            writeln!(
                f,
                "scheduler: {} interactive / {} batch dispatched ({} / {} in flight), {} aged to the front",
                self.sched.dispatched[0],
                self.sched.dispatched[1],
                self.sched.inflight(crate::sched::Priority::Interactive),
                self.sched.inflight(crate::sched::Priority::Batch),
                self.sched.aged
            )?;
        }
        if self.lane_slots > 0 {
            writeln!(
                f,
                "lanes: {:.0}% occupancy over {} interleaved steps",
                self.lane_occupancy() * 100.0,
                format_count(self.lane_steps as f64),
            )?;
        }
        if self.sharded_jobs > 0 {
            writeln!(
                f,
                "sharded: {} jobs over {} shards ({:.1} shards/job), stitch total {:.3} ms",
                self.sharded_jobs,
                self.shards_ranked,
                self.mean_shards_per_sharded_job(),
                self.stitch_ns as f64 / 1e6
            )?;
        }
        if !self.per_op.is_empty() {
            writeln!(f, "by op (execution-time rates, summed across workers):")?;
            for row in &self.per_op {
                writeln!(
                    f,
                    "  {:>10}: {:>8} jobs, {:>8} elems, {:>8} elem/s, {:.2} ns/elem",
                    row.op.name(),
                    row.completed,
                    format_count(row.elements as f64),
                    format_count(row.elements_per_exec_sec()),
                    row.ns_per_element()
                )?;
            }
        }
        writeln!(f, "dispatch by size (rows are job-size upper bounds):")?;
        write!(f, "  {:>12}", "n <")?;
        for alg in Algorithm::ALL {
            write!(f, " {:>15}", alg.name())?;
        }
        writeln!(f)?;
        for (hi, counts) in &self.dispatch_by_bucket {
            write!(f, "  {:>12}", format_count(*hi as f64))?;
            for c in counts {
                write!(f, " {c:>15}")?;
            }
            writeln!(f)?;
        }
        write!(f, "  {:>12}", "total")?;
        for c in &self.dispatch {
            write!(f, " {c:>15}")?;
        }
        writeln!(f)?;
        if !self.dispatch_by_op.is_empty() {
            writeln!(f, "dispatch by op:")?;
            for (op, counts) in &self.dispatch_by_op {
                write!(f, "  {:>12}", op.name())?;
                for c in counts {
                    write!(f, " {c:>15}")?;
                }
                writeln!(f)?;
            }
        }
        if self.phase_hist.iter().any(|h| !h.is_empty()) {
            writeln!(f, "latency by phase (ms):")?;
            writeln!(
                f,
                "  {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "phase", "samples", "p50", "p95", "p99", "max"
            )?;
            for phase in Phase::ALL {
                let h = &self.phase_hist[phase.index()];
                if h.is_empty() {
                    continue;
                }
                writeln!(f, "  {:>12} {}", phase.name(), hist_row(h))?;
            }
        }
        if self.op_hist.iter().any(|h| !h.is_empty()) {
            writeln!(f, "exec latency by op (ms):")?;
            writeln!(
                f,
                "  {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "op", "samples", "p50", "p95", "p99", "max"
            )?;
            for op in OpKind::ALL {
                let h = &self.op_hist[op.index()];
                if h.is_empty() {
                    continue;
                }
                writeln!(f, "  {:>12} {}", op.name(), hist_row(h))?;
            }
        }
        if !self.mispredict.is_empty() {
            writeln!(
                f,
                "planner mispredict (measured/predicted): p50 {:.2}x, p95 {:.2}x, p99 {:.2}x over {} scored",
                self.mispredict.percentile(50.0) as f64 / MISPREDICT_SCALE as f64,
                self.mispredict.percentile(95.0) as f64 / MISPREDICT_SCALE as f64,
                self.mispredict.percentile(99.0) as f64 / MISPREDICT_SCALE as f64,
                self.mispredict.count()
            )?;
        }
        Ok(())
    }
}

/// One `samples p50 p95 p99 max` row (milliseconds) for a non-empty
/// histogram of nanosecond samples.
fn hist_row(h: &Histogram) -> String {
    format!(
        "{:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
        h.count(),
        h.percentile(50.0) as f64 / 1e6,
        h.percentile(95.0) as f64 / 1e6,
        h.percentile(99.0) as f64 / 1e6,
        h.max() as f64 / 1e6
    )
}
