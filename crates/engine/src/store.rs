//! Resident dataset store: the handle-based data plane.
//!
//! Shipping a successor array on every RANK/SCAN frame means a request
//! on a 10⁸-vertex list moves ~800 MB before any ranking happens — the
//! socket measures memcpy, not the paper's algorithm (Reid-Miller's
//! C-90 numbers assume the list is *resident*). The store fixes the
//! economics: a client `PUT`s a list once, receives a 64-bit handle,
//! and every later query names the handle instead of re-sending (and
//! re-validating) the data.
//!
//! * **Validated once** — the O(n) structural validation in
//!   [`LinkedList::new`] runs at PUT; handle queries skip decode and
//!   validation entirely.
//! * **Artifact cache** — the first sharded query against a dataset
//!   builds a [`ShardedList`] (shard decomposition + boundary table +
//!   lane policy) and caches it keyed by `(shard_size, lanes)`; later
//!   queries with the same plan reuse it and pay only stitch + walk.
//! * **Byte-budgeted LRU** — resident bytes (lists + cached artifacts)
//!   never exceed the configured budget. PUT evicts idle
//!   least-recently-used datasets to make room and fails with
//!   [`StoreError::StoreFull`] when the budget cannot be met; an
//!   artifact that doesn't fit is still used for its query, just not
//!   cached (build–use–discard).
//! * **Refcounted eviction** — every resolved query holds a
//!   [`DatasetRef`] guard; entries with live guards are never evicted,
//!   so eviction cannot free a dataset mid-query. `Arc` semantics back
//!   this up: even an explicit DROP only unlinks the entry, in-flight
//!   queries complete on their clone.
//! * **Connection-scoped handles** — like file descriptors, a handle
//!   belongs to the connection that PUT it: queries or DROPs from any
//!   other connection see [`StoreError::StaleHandle`], and a handler
//!   that disconnects drops everything it owned.
//!
//! * **Mutable datasets** — a resident list can be edited in place
//!   (splice / delete / append batches, [`DatasetRef::apply_edits`]):
//!   the entry keeps an editable next+prev mirror, the query-visible
//!   list is an atomically swapped snapshot (in-flight queries finish
//!   on the pre-mutation `Arc`), and footprint deltas are re-charged
//!   against the budget. The incremental artifact maintenance built on
//!   top lives in [`crate::dynamic`].
//!
//! The store is transport-agnostic (no sockets here); `engine::server`
//! shares one instance across client handlers, and `tests/store.rs`
//! property-tests the invariants directly.

use listkit::dynamic::{Edit, EditError, EditReport, MutableList};
use listkit::sharded::ShardedList;
use listkit::LinkedList;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Default byte budget for resident datasets and artifacts (1 GiB).
pub const DEFAULT_STORE_BUDGET: u64 = 1 << 30;

/// Lock a store mutex, riding through poisoning. A panic inside a
/// client handler (isolated at the serving layer) must not brick the
/// store for every *other* connection: each critical section here
/// re-establishes its invariants from scratch (byte accounting is
/// recomputed against the entry map, never incrementally trusted
/// across a panic), so continuing past a poisoned flag degrades one
/// operation's accounting at worst — strictly better than turning the
/// whole data plane into a panic cascade.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a store operation was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The handle does not name a resident dataset owned by this
    /// connection — never issued, already dropped, evicted, or PUT by
    /// a different connection.
    StaleHandle,
    /// Admitting the dataset would exceed the byte budget even after
    /// evicting every idle resident entry.
    StoreFull,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::StaleHandle => write!(f, "stale dataset handle"),
            StoreError::StoreFull => write!(f, "dataset store budget exhausted"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Receipt for a successful PUT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PutReceipt {
    /// Handle naming the resident dataset in later queries.
    pub handle: u64,
    /// Bytes charged against the store budget for the list itself
    /// (artifacts built later are charged separately).
    pub bytes: u64,
}

/// Point-in-time snapshot of the store's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Configured byte budget.
    pub budget_bytes: u64,
    /// Bytes currently resident (lists + cached artifacts).
    pub resident_bytes: u64,
    /// Datasets currently resident.
    pub resident_count: u64,
    /// Successful PUTs.
    pub puts: u64,
    /// Datasets removed by explicit DROP or connection teardown.
    pub drops: u64,
    /// Handle resolution attempts (`hits + misses == lookups`).
    pub lookups: u64,
    /// Lookups that resolved to a resident dataset.
    pub hits: u64,
    /// Lookups that found no dataset for the (handle, connection).
    pub misses: u64,
    /// Datasets evicted by LRU pressure.
    pub evictions: u64,
    /// PUTs refused because the budget could not be met.
    pub put_rejected: u64,
    /// Sharded artifacts built (cache misses on a plan key).
    pub artifacts_built: u64,
    /// Sharded artifacts served from the cache.
    pub artifacts_reused: u64,
}

/// Point-in-time snapshot of the store's mutation-plane counters,
/// fed by [`crate::dynamic`] as batches land.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Mutation batches applied.
    pub mutations: u64,
    /// Individual edits applied (batches sum their edit counts).
    pub edits: u64,
    /// Artifact maintenance passes that patched dirty shards in place.
    pub incremental: u64,
    /// Artifact maintenance passes that rebuilt from scratch.
    pub full: u64,
    /// Dirty shards patched by incremental passes.
    pub dirty_shards_patched: u64,
    /// Cached artifacts brought up to date (patched or rebuilt).
    pub artifacts_patched: u64,
}

/// Estimated resident footprint of a validated list: the `u32`
/// successor array plus fixed header overhead. An estimate, not an
/// allocator measurement — the budget is a capacity-planning knob, not
/// an accounting ledger.
pub fn list_footprint(list: &LinkedList) -> u64 {
    4 * list.len() as u64 + 96
}

/// Estimated resident footprint of a built sharded artifact: shard-
/// local successor arrays (≈4 B/vertex), boundary-table rows, and
/// per-shard headers.
pub fn artifact_footprint(sharded: &ShardedList) -> u64 {
    4 * sharded.len() as u64
        + 16 * sharded.fragment_count() as u64
        + 64 * sharded.shard_count() as u64
        + 96
}

struct DatasetEntry {
    handle: u64,
    owner: u64,
    /// The query-visible list. Swapped wholesale by the mutation plane;
    /// queries clone the `Arc` once at resolution time and keep ranking
    /// their snapshot even across a concurrent mutation.
    list: Mutex<Arc<LinkedList>>,
    /// Footprint currently charged for the list (tracks length changes
    /// from mutations). Mutated only under the store lock.
    list_bytes: AtomicU64,
    /// Artifact bytes charged to this entry. Mutated only under the
    /// store lock; atomic so the eviction scan can read it through the
    /// shared `Arc` without aliasing games.
    artifact_bytes: AtomicU64,
    /// Bytes charged for the editable mirror (zero until the first
    /// mutation materializes it). Mutated only under the store lock.
    dynamic_bytes: AtomicU64,
    /// Editable next+prev mirror of the list, materialized by the first
    /// mutation batch. The lock also serializes mutation batches per
    /// dataset: the apply → snapshot → swap sequence runs under it.
    dynamic: Mutex<Option<MutableList>>,
    /// Live [`DatasetRef`] guards. Incremented under the store lock,
    /// decremented lock-free on guard drop; the eviction scan (under
    /// the lock) skips any entry it observes in use, so the race only
    /// ever delays an eviction, never frees a dataset mid-query.
    in_use: AtomicU64,
    artifacts: Arc<ArtifactCache>,
}

impl DatasetEntry {
    fn total_bytes(&self) -> u64 {
        self.list_bytes.load(Ordering::Relaxed)
            + self.artifact_bytes.load(Ordering::Relaxed)
            + self.dynamic_bytes.load(Ordering::Relaxed)
    }
}

struct Inner {
    entries: HashMap<u64, Arc<DatasetEntry>>,
    /// Handles in recency order: front = least recently used.
    order: Vec<u64>,
    resident_bytes: u64,
    next_handle: u64,
}

/// The byte-budgeted resident dataset store. One instance is shared by
/// every client handler of a server; see the [module docs](self) for
/// the invariants it maintains.
pub struct DatasetStore {
    budget: u64,
    inner: Mutex<Inner>,
    puts: AtomicU64,
    drops: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    put_rejected: AtomicU64,
    artifacts_built: AtomicU64,
    artifacts_reused: AtomicU64,
    mutations: AtomicU64,
    edits: AtomicU64,
    mutate_incremental: AtomicU64,
    mutate_full: AtomicU64,
    dirty_shards_patched: AtomicU64,
    artifacts_patched: AtomicU64,
}

impl fmt::Debug for DatasetStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("DatasetStore")
            .field("budget", &s.budget_bytes)
            .field("resident_bytes", &s.resident_bytes)
            .field("resident_count", &s.resident_count)
            .finish()
    }
}

impl DatasetStore {
    /// An empty store with the given byte budget.
    pub fn new(budget: u64) -> Self {
        DatasetStore {
            budget,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                order: Vec::new(),
                resident_bytes: 0,
                next_handle: 1,
            }),
            puts: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            put_rejected: AtomicU64::new(0),
            artifacts_built: AtomicU64::new(0),
            artifacts_reused: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            mutate_incremental: AtomicU64::new(0),
            mutate_full: AtomicU64::new(0),
            dirty_shards_patched: AtomicU64::new(0),
            artifacts_patched: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Admit a validated list for connection `conn`, evicting idle LRU
    /// entries as needed. Handles are sequential, start at 1, and are
    /// never reused.
    pub fn put(
        self: &Arc<Self>,
        conn: u64,
        list: Arc<LinkedList>,
    ) -> Result<PutReceipt, StoreError> {
        let bytes = list_footprint(&list);
        let mut inner = lock_unpoisoned(&self.inner);
        if !self.evict_to_fit(&mut inner, bytes, None) {
            self.put_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::StoreFull);
        }
        let handle = inner.next_handle;
        inner.next_handle += 1;
        let entry = Arc::new(DatasetEntry {
            handle,
            owner: conn,
            list: Mutex::new(list),
            list_bytes: AtomicU64::new(bytes),
            artifact_bytes: AtomicU64::new(0),
            dynamic_bytes: AtomicU64::new(0),
            dynamic: Mutex::new(None),
            in_use: AtomicU64::new(0),
            artifacts: Arc::new(ArtifactCache {
                handle,
                store: Arc::downgrade(self),
                map: Mutex::new(HashMap::new()),
            }),
        });
        inner.entries.insert(handle, entry);
        inner.order.push(handle);
        inner.resident_bytes += bytes;
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(PutReceipt { handle, bytes })
    }

    /// Resolve `handle` for connection `conn` into a pinned guard. The
    /// entry moves to most-recently-used and cannot be evicted while
    /// the guard lives.
    pub fn get(&self, handle: u64, conn: u64) -> Result<DatasetRef, StoreError> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut inner = lock_unpoisoned(&self.inner);
        match inner.entries.get(&handle) {
            Some(entry) if entry.owner == conn => {
                let entry = Arc::clone(entry);
                entry.in_use.fetch_add(1, Ordering::Relaxed);
                inner.order.retain(|&h| h != handle);
                inner.order.push(handle);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(DatasetRef { entry })
            }
            _ => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Err(StoreError::StaleHandle)
            }
        }
    }

    /// Drop the dataset named by `handle` if connection `conn` owns
    /// it. In-flight queries holding a [`DatasetRef`] complete on their
    /// pinned clone; the handle is stale from this call on.
    pub fn drop_dataset(&self, handle: u64, conn: u64) -> Result<(), StoreError> {
        let mut inner = lock_unpoisoned(&self.inner);
        match inner.entries.get(&handle) {
            Some(entry) if entry.owner == conn => {
                let entry = inner.entries.remove(&handle).expect("entry just observed");
                inner.order.retain(|&h| h != handle);
                inner.resident_bytes -= entry.total_bytes();
                self.drops.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => Err(StoreError::StaleHandle),
        }
    }

    /// Drop every dataset owned by connection `conn` (handler
    /// teardown). Returns how many were removed.
    pub fn drop_connection(&self, conn: u64) -> usize {
        let mut inner = lock_unpoisoned(&self.inner);
        let doomed: Vec<u64> =
            inner.entries.values().filter(|e| e.owner == conn).map(|e| e.handle).collect();
        for handle in &doomed {
            let entry = inner.entries.remove(handle).expect("listed above");
            inner.resident_bytes -= entry.total_bytes();
        }
        inner.order.retain(|h| !doomed.contains(h));
        self.drops.fetch_add(doomed.len() as u64, Ordering::Relaxed);
        doomed.len()
    }

    /// Bytes currently resident under datasets owned by connection
    /// `conn` — the server's per-tenant store-quota check. A linear
    /// scan over resident entries: the store holds tens of datasets,
    /// not millions, and PUT is already a copy-heavy path.
    pub fn owned_bytes(&self, conn: u64) -> u64 {
        lock_unpoisoned(&self.inner)
            .entries
            .values()
            .filter(|e| e.owner == conn)
            .map(|e| e.total_bytes())
            .sum()
    }

    /// Resident handles in recency order (least recently used first) —
    /// introspection for the property-test harness.
    pub fn resident_handles(&self) -> Vec<u64> {
        lock_unpoisoned(&self.inner).order.clone()
    }

    /// Snapshot of counters and occupancy.
    pub fn stats(&self) -> StoreStats {
        let (resident_bytes, resident_count) = {
            let inner = lock_unpoisoned(&self.inner);
            (inner.resident_bytes, inner.entries.len() as u64)
        };
        StoreStats {
            budget_bytes: self.budget,
            resident_bytes,
            resident_count,
            puts: self.puts.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            put_rejected: self.put_rejected.load(Ordering::Relaxed),
            artifacts_built: self.artifacts_built.load(Ordering::Relaxed),
            artifacts_reused: self.artifacts_reused.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the mutation-plane counters.
    pub fn mutation_stats(&self) -> MutationStats {
        MutationStats {
            mutations: self.mutations.load(Ordering::Relaxed),
            edits: self.edits.load(Ordering::Relaxed),
            incremental: self.mutate_incremental.load(Ordering::Relaxed),
            full: self.mutate_full.load(Ordering::Relaxed),
            dirty_shards_patched: self.dirty_shards_patched.load(Ordering::Relaxed),
            artifacts_patched: self.artifacts_patched.load(Ordering::Relaxed),
        }
    }

    /// Count one applied mutation batch and its artifact maintenance
    /// passes (called by [`crate::dynamic`] after the batch lands).
    pub(crate) fn note_mutation(
        &self,
        edits: u64,
        incremental_passes: u64,
        full_passes: u64,
        dirty_shards: u64,
    ) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
        self.edits.fetch_add(edits, Ordering::Relaxed);
        self.mutate_incremental.fetch_add(incremental_passes, Ordering::Relaxed);
        self.mutate_full.fetch_add(full_passes, Ordering::Relaxed);
        self.dirty_shards_patched.fetch_add(dirty_shards, Ordering::Relaxed);
        self.artifacts_patched.fetch_add(incremental_passes + full_passes, Ordering::Relaxed);
    }

    /// Evict idle LRU entries (skipping `exclude`) until `need` more
    /// bytes fit under the budget. Returns `false` — evicting nothing
    /// further — when every remaining entry is pinned by a live guard
    /// or excluded.
    fn evict_to_fit(&self, inner: &mut Inner, need: u64, exclude: Option<u64>) -> bool {
        while inner.resident_bytes + need > self.budget {
            let victim = inner.order.iter().copied().find(|&h| {
                Some(h) != exclude
                    && inner.entries.get(&h).is_some_and(|e| e.in_use.load(Ordering::Relaxed) == 0)
            });
            let Some(victim) = victim else { return false };
            let entry = inner.entries.remove(&victim).expect("victim listed in order");
            inner.order.retain(|&h| h != victim);
            inner.resident_bytes -= entry.total_bytes();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Charge `bytes` of freshly built artifact to `handle`, evicting
    /// idle entries (never `handle` itself) to stay within budget.
    /// `false` means the artifact should not be cached.
    fn try_charge(&self, handle: u64, bytes: u64) -> bool {
        let mut inner = lock_unpoisoned(&self.inner);
        let Some(entry) = inner.entries.get(&handle).map(Arc::clone) else {
            return false;
        };
        if !self.evict_to_fit(&mut inner, bytes, Some(handle)) {
            return false;
        }
        inner.resident_bytes += bytes;
        entry.artifact_bytes.fetch_add(bytes, Ordering::Relaxed);
        true
    }

    /// Return `bytes` previously charged to `handle` (a racing build
    /// lost the insert).
    ///
    /// Skipping when the entry is absent is load-bearing, not an
    /// oversight: a DROP (or eviction) that lands between the charge
    /// and this uncharge subtracts the entry's *current*
    /// `total_bytes()` — which still includes every in-flight charge,
    /// because `try_charge` bumps `artifact_bytes` under the same lock
    /// that removal holds. The drop therefore already returned this
    /// charge; uncharging again would double-credit the budget.
    /// `tests/store.rs` races drops against mid-build charges to pin
    /// the end-state invariant (all handles dropped ⇒ zero resident
    /// bytes).
    fn uncharge(&self, handle: u64, bytes: u64) {
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(entry) = inner.entries.get(&handle).map(Arc::clone) {
            inner.resident_bytes = inner.resident_bytes.saturating_sub(bytes);
            entry.artifact_bytes.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Move one of `handle`'s charged-byte accounts (list, mirror, or
    /// artifact — chosen by `account`) from `old` to `new` bytes,
    /// evicting idle entries on growth. Mutations are applied in
    /// place, so unlike PUT this never fails: if nothing idle can be
    /// evicted the store runs transiently over budget and the next PUT
    /// sheds the pressure. No-op when the entry is already gone
    /// (dropped mid-mutation) — removal subtracted its whole footprint.
    fn recharge(
        &self,
        handle: u64,
        account: impl Fn(&DatasetEntry) -> &AtomicU64,
        old: u64,
        new: u64,
    ) {
        let mut inner = lock_unpoisoned(&self.inner);
        let Some(entry) = inner.entries.get(&handle).map(Arc::clone) else {
            return;
        };
        if new > old {
            self.evict_to_fit(&mut inner, new - old, Some(handle));
            inner.resident_bytes += new - old;
        } else {
            inner.resident_bytes = inner.resident_bytes.saturating_sub(old - new);
        }
        let a = account(&entry);
        let cur = a.load(Ordering::Relaxed);
        a.store((cur + new).saturating_sub(old), Ordering::Relaxed);
    }
}

/// Pinned reference to a resident dataset: while it lives, the entry
/// cannot be evicted. Obtained from [`DatasetStore::get`]; held by the
/// server for the full lifetime of a handle-routed query.
pub struct DatasetRef {
    entry: Arc<DatasetEntry>,
}

impl DatasetRef {
    /// The dataset's handle.
    pub fn handle(&self) -> u64 {
        self.entry.handle
    }

    /// The resident, already-validated list — the current snapshot.
    /// Clones the `Arc` under a brief lock; a concurrent mutation swaps
    /// the entry's snapshot but never this clone.
    pub fn list(&self) -> Arc<LinkedList> {
        Arc::clone(&lock_unpoisoned(&self.entry.list))
    }

    /// Vertices in the dataset (its current snapshot).
    pub fn len(&self) -> usize {
        self.list().len()
    }

    /// A pinned dataset is never empty ([`LinkedList`] forbids it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The dataset's artifact cache, to thread into a
    /// [`Request`](crate::Request) via
    /// [`with_artifacts`](crate::Request::with_artifacts).
    pub fn artifacts(&self) -> Arc<ArtifactCache> {
        Arc::clone(&self.entry.artifacts)
    }

    /// Apply one atomic batch of edits to the resident dataset:
    /// materialize the editable next+prev mirror on first use, apply
    /// the batch (all-or-nothing — a rejected edit leaves the dataset
    /// untouched), swap the query-visible list to the post-edit
    /// snapshot, and re-charge footprint deltas against the budget.
    /// Returns the edit report and the new snapshot.
    ///
    /// Concurrent batches against the same handle serialize on the
    /// mirror lock; queries resolved before the swap complete on their
    /// pre-mutation snapshot (`Arc` semantics, same rule as DROP).
    /// Bringing cached artifacts up to date is the caller's job — see
    /// [`crate::dynamic`], which patches dirty shards or rebuilds under
    /// planner control.
    pub fn apply_edits(&self, edits: &[Edit]) -> Result<(EditReport, Arc<LinkedList>), EditError> {
        let entry = &self.entry;
        let mut dynamic = lock_unpoisoned(&entry.dynamic);
        let store = entry.artifacts.store.upgrade();
        if dynamic.is_none() {
            let mirror = MutableList::from_list(&self.list());
            if let Some(store) = &store {
                store.recharge(entry.handle, |e| &e.dynamic_bytes, 0, mirror.footprint());
            }
            *dynamic = Some(mirror);
        }
        let mirror = dynamic.as_mut().expect("materialized above");
        let old_mirror_bytes = mirror.footprint();
        let report = mirror.apply(edits)?;
        let snapshot = Arc::new(mirror.snapshot());
        let old_list_bytes = entry.list_bytes.load(Ordering::Relaxed);
        *lock_unpoisoned(&entry.list) = Arc::clone(&snapshot);
        if let Some(store) = &store {
            store.recharge(
                entry.handle,
                |e| &e.list_bytes,
                old_list_bytes,
                list_footprint(&snapshot),
            );
            store.recharge(
                entry.handle,
                |e| &e.dynamic_bytes,
                old_mirror_bytes,
                mirror.footprint(),
            );
        }
        Ok((report, snapshot))
    }
}

impl Drop for DatasetRef {
    fn drop(&mut self) {
        self.entry.in_use.fetch_sub(1, Ordering::Relaxed);
    }
}

impl fmt::Debug for DatasetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DatasetRef")
            .field("handle", &self.entry.handle)
            .field("len", &self.len())
            .finish()
    }
}

/// Per-dataset cache of built [`ShardedList`] artifacts keyed by the
/// planner's `(shard_size, lanes)` decision. Workers call
/// [`get_or_build`](ArtifactCache::get_or_build) from the engine's
/// sharded execution arm; bytes are charged through the owning store
/// so cached artifacts compete for the same budget as the lists.
pub struct ArtifactCache {
    handle: u64,
    store: Weak<DatasetStore>,
    map: Mutex<HashMap<(usize, usize), Arc<ShardedList>>>,
}

impl ArtifactCache {
    /// Fetch the artifact for `(shard_size, lanes)`, building it from
    /// `list` on a miss. A freshly built artifact that cannot be
    /// charged within the budget is returned uncached; builds race
    /// optimistically (the map lock is not held across the O(n)
    /// build), and a losing build is uncharged and discarded.
    pub fn get_or_build(
        &self,
        list: &LinkedList,
        shard_size: usize,
        lanes: usize,
    ) -> Arc<ShardedList> {
        let key = (shard_size, lanes);
        if let Some(hit) = lock_unpoisoned(&self.map).get(&key) {
            if let Some(store) = self.store.upgrade() {
                store.artifacts_reused.fetch_add(1, Ordering::Relaxed);
            }
            return Arc::clone(hit);
        }
        let built = Arc::new(ShardedList::build(list, shard_size).with_lanes(lanes));
        let Some(store) = self.store.upgrade() else {
            return built;
        };
        store.artifacts_built.fetch_add(1, Ordering::Relaxed);
        let bytes = artifact_footprint(&built);
        if store.try_charge(self.handle, bytes) {
            let mut map = lock_unpoisoned(&self.map);
            if let Some(winner) = map.get(&key) {
                let winner = Arc::clone(winner);
                drop(map);
                store.uncharge(self.handle, bytes);
                return winner;
            }
            map.insert(key, Arc::clone(&built));
        }
        built
    }

    /// Snapshot of every cached artifact with its plan key, for the
    /// mutation plane's maintenance sweep.
    pub(crate) fn entries(&self) -> Vec<((usize, usize), Arc<ShardedList>)> {
        let map = lock_unpoisoned(&self.map);
        let mut all: Vec<_> = map.iter().map(|(k, v)| (*k, Arc::clone(v))).collect();
        all.sort_unstable_by_key(|(k, _)| *k);
        all
    }

    /// Swap the artifact cached under `key` for an up-to-date build,
    /// moving the budget charge from the old footprint to the new one.
    /// Patched artifacts share clean shards with their predecessor by
    /// `Arc`, so the charge delta is the accounting truth even though
    /// physical memory is mostly shared. Entry already dropped ⇒ the
    /// drop subtracted the old charge and the new artifact is orphaned
    /// with its cache — nothing to account.
    pub(crate) fn replace(&self, key: (usize, usize), artifact: Arc<ShardedList>) {
        let new_bytes = artifact_footprint(&artifact);
        let old = lock_unpoisoned(&self.map).insert(key, artifact);
        let old_bytes = old.map(|a| artifact_footprint(&a)).unwrap_or(0);
        if let Some(store) = self.store.upgrade() {
            store.recharge(self.handle, |e| &e.artifact_bytes, old_bytes, new_bytes);
        }
    }

    /// Cached plan keys, for tests.
    pub fn cached_plans(&self) -> Vec<(usize, usize)> {
        let mut keys: Vec<_> = lock_unpoisoned(&self.map).keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

impl fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("handle", &self.handle)
            .field("plans", &self.cached_plans())
            .finish()
    }
}
