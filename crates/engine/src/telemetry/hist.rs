//! Log₂-bucketed latency histograms with sub-bucket resolution.
//!
//! The design is the classic HDR layout: values below [`SUB`] get one
//! exact bucket each; above that, each power-of-two range is split into
//! [`SUB`] equal sub-buckets, so every bucket's width is at most
//! `1/SUB` (6.25%) of its lower bound. That makes the bucket index
//! computable with two bit operations — O(1), no search — while keeping
//! every reported percentile within a guaranteed relative error bound.
//!
//! Two flavors share the same bucket math:
//!
//! * [`Histogram`] — plain, single-owner, mergeable. This is the math
//!   type: it records with `&mut self`, merges with saturating
//!   arithmetic (associative and commutative — pinned by proptests in
//!   `crates/engine/tests/telemetry.rs`), travels over the wire in the
//!   `STATS_V2` frame, and renders percentiles.
//! * [`AtomicHistogram`] — the lock-free concurrent recorder used on
//!   the engine's hot paths. Bucket slots are plain `AtomicU64`s;
//!   `count`/`sum` go through a [`Striped`] counter so concurrent
//!   workers don't serialize on one cache line. `snapshot()` collapses
//!   it into a [`Histogram`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// log₂ of the sub-bucket count: each power-of-two range is split into
/// `2^SUB_BITS` sub-buckets.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range (and the bound below which every
/// value gets an exact bucket).
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: one linear group of [`SUB`] exact buckets plus
/// `64 - SUB_BITS` exponential groups of [`SUB`] sub-buckets, covering
/// all of `u64`.
pub const SLOTS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// Bucket index of a value. O(1): a leading-zeros count and a shift.
#[inline]
pub fn index_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let h = 63 - v.leading_zeros(); // highest set bit, ≥ SUB_BITS
        let group = (h - SUB_BITS + 1) as usize;
        let sub = ((v >> (h - SUB_BITS)) & (SUB - 1)) as usize;
        (group << SUB_BITS) + sub
    }
}

/// Smallest value that lands in bucket `i` (the bucket's inclusive
/// lower bound).
#[inline]
pub fn lower_bound(i: usize) -> u64 {
    debug_assert!(i < SLOTS);
    if i < SUB as usize {
        i as u64
    } else {
        let group = (i >> SUB_BITS) as u32;
        let sub = (i as u64) & (SUB - 1);
        let h = group + SUB_BITS - 1;
        (1u64 << h) + (sub << (h - SUB_BITS))
    }
}

/// Largest value that lands in bucket `i` (the bucket's inclusive
/// upper bound).
#[inline]
pub fn upper_bound(i: usize) -> u64 {
    if i + 1 >= SLOTS {
        u64::MAX
    } else {
        lower_bound(i + 1) - 1
    }
}

fn saturating_fetch_add(cell: &AtomicU64, add: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(add);
        if next == cur {
            return; // already saturated
        }
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A lock-free counter striped across cache lines.
///
/// Hot-path increments land on a per-thread stripe (no shared cache
/// line between workers); reads sum the stripes. Totals saturate at
/// `u64::MAX` instead of wrapping.
pub struct Striped {
    stripes: Box<[Stripe]>,
}

/// One cache line worth of counter.
#[repr(align(64))]
#[derive(Default)]
struct Stripe {
    value: AtomicU64,
}

/// Number of stripes: enough that a handful of workers rarely collide.
const STRIPES: usize = 16;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE_SEED: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
}

fn stripe_of(len: usize) -> usize {
    STRIPE_SEED.with(|s| *s) % len
}

impl Striped {
    /// A zeroed striped counter.
    pub fn new() -> Self {
        Striped { stripes: (0..STRIPES).map(|_| Stripe::default()).collect() }
    }

    /// Add `v` on this thread's stripe (lock-free, saturating).
    #[inline]
    pub fn add(&self, v: u64) {
        saturating_fetch_add(&self.stripes[stripe_of(self.stripes.len())].value, v);
    }

    /// Sum of all stripes (saturating).
    pub fn get(&self) -> u64 {
        self.stripes.iter().fold(0u64, |acc, s| acc.saturating_add(s.value.load(Ordering::Relaxed)))
    }
}

impl Default for Striped {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain, mergeable log₂/sub-bucket histogram (see module docs).
///
/// All arithmetic saturates at `u64::MAX`; saturating unsigned addition
/// is `min(a + b, MAX)` over the naturals, which keeps [`merge`]
/// associative and commutative even at the overflow boundary
/// (proptest-pinned).
///
/// [`merge`]: Histogram::merge
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; SLOTS], count: 0, sum: 0, max: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `weight` samples of value `v` (saturating).
    #[inline]
    pub fn record_n(&mut self, v: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        let i = index_of(v);
        self.counts[i] = self.counts[i].saturating_add(weight);
        self.count = self.count.saturating_add(weight);
        self.sum = self.sum.saturating_add(v.saturating_mul(weight));
        self.max = self.max.max(v);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact (not bucketized) sum of all recorded values, saturating.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact), or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another histogram into this one (element-wise saturating
    /// add). Associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The bucket `(lower, upper)` bounds containing the `p`-th
    /// percentile sample (`p` in `[0, 100]`), or `(0, 0)` if empty.
    ///
    /// The bound guarantee: at least `⌈p/100 · count⌉` samples are ≤
    /// `upper`, and fewer than that are < `lower` — i.e. the true
    /// percentile sample's value lies in `[lower, upper]`, a range no
    /// wider than `1/SUB` (6.25%) of its lower bound.
    pub fn percentile_bounds(&self, p: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                // The exact max tightens the top bucket's upper bound.
                return (lower_bound(i), upper_bound(i).min(self.max));
            }
        }
        (self.max, self.max) // unreachable unless counts were mutated externally
    }

    /// A point estimate of the `p`-th percentile: the midpoint of the
    /// bucket containing it (always within [`percentile_bounds`]).
    ///
    /// [`percentile_bounds`]: Histogram::percentile_bounds
    pub fn percentile(&self, p: f64) -> u64 {
        let (lo, hi) = self.percentile_bounds(p);
        lo + (hi - lo) / 2
    }

    /// Non-empty buckets as `(bucket index, count)` pairs — the sparse
    /// form the wire encoding uses.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c != 0).map(|(i, &c)| (i as u16, c))
    }

    /// Rebuild a histogram from its sparse parts (wire decode).
    /// Returns `None` if a bucket index is out of range.
    pub fn from_parts(buckets: &[(u16, u64)], count: u64, sum: u64, max: u64) -> Option<Histogram> {
        let mut h = Histogram::new();
        for &(i, c) in buckets {
            if (i as usize) >= SLOTS {
                return None;
            }
            h.counts[i as usize] = h.counts[i as usize].saturating_add(c);
        }
        h.count = count;
        h.sum = sum;
        h.max = max;
        Some(h)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The concurrent, lock-free histogram recorder (see module docs).
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    count: Striped,
    sum: Striped,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            count: Striped::new(),
            sum: Striped::new(),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free and O(1): one indexed saturating
    /// add on the bucket, two striped adds, one `fetch_max`.
    #[inline]
    pub fn record(&self, v: u64) {
        saturating_fetch_add(&self.counts[index_of(v)], 1);
        self.count.add(1);
        self.sum.add(v);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Collapse into a plain [`Histogram`] for math/merge/encode.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.get();
        h.sum = self.sum.get();
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        // Every bucket's lower bound maps back to that bucket, and
        // bucket i+1 starts right after bucket i ends.
        for i in 0..SLOTS {
            let lo = lower_bound(i);
            assert_eq!(index_of(lo), i, "lower bound of bucket {i}");
            let hi = upper_bound(i);
            assert_eq!(index_of(hi), i, "upper bound of bucket {i}");
            if i + 1 < SLOTS {
                assert_eq!(lower_bound(i + 1), hi + 1);
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(lower_bound(v as usize), v);
            assert_eq!(upper_bound(v as usize), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[17u64, 1000, 65_535, 1 << 30, u64::MAX / 3, u64::MAX] {
            let i = index_of(v);
            let (lo, hi) = (lower_bound(i), upper_bound(i));
            assert!(lo <= v && v <= hi);
            // Bucket width ≤ lo / SUB for the exponential groups.
            if v >= SUB {
                assert!(hi - lo <= lo / SUB + 1, "bucket {i} too wide: [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn percentiles_of_known_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 1000 * 1001 / 2);
        assert_eq!(h.max(), 1000);
        for &(p, expect) in &[(50.0, 500u64), (95.0, 950), (99.0, 990), (100.0, 1000)] {
            let (lo, hi) = h.percentile_bounds(p);
            assert!(lo <= expect && expect <= hi, "p{p}: true value {expect} outside [{lo}, {hi}]");
            let mid = h.percentile(p);
            assert!(lo <= mid && mid <= hi);
        }
        // p0 = the smallest sample's bucket.
        let (lo, hi) = h.percentile_bounds(0.0);
        assert!(lo <= 1 && 1 <= hi);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile_bounds(50.0), (0, 0));
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        a.record(1000);
        b.record(10);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 1020);
        assert_eq!(m.max(), 1000);
    }

    #[test]
    fn saturation_does_not_wrap() {
        let mut h = Histogram::new();
        h.record_n(7, u64::MAX);
        h.record_n(7, 5);
        assert_eq!(h.count(), u64::MAX);
        let mut other = Histogram::new();
        other.record_n(7, u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn atomic_matches_plain() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 999, 1 << 20, u64::MAX] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot(), p);
    }

    #[test]
    fn atomic_recording_is_thread_safe() {
        let a = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let a = std::sync::Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        a.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = a.snapshot();
        assert_eq!(s.count(), 40_000);
        assert_eq!(s.max(), 3 * 10_000 + 9_999);
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 250, 1 << 33] {
            h.record(v);
        }
        let buckets: Vec<(u16, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(&buckets, h.count(), h.sum(), h.max()).unwrap();
        assert_eq!(back, h);
        assert!(Histogram::from_parts(&[(u16::MAX, 1)], 1, 1, 1).is_none());
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let s = std::sync::Arc::new(Striped::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.add(3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.get(), 8 * 1000 * 3);
        s.add(u64::MAX);
        assert_eq!(s.get(), u64::MAX);
    }
}
