//! `RANKD_LOG` — the leveled structured logger.
//!
//! A deliberately tiny stderr logger (std only, no external deps): one
//! global level parsed once from the `RANKD_LOG` environment variable
//! (`error|warn|info|debug|trace`, default `warn`), a cheap
//! [`enabled`] guard so disabled call sites cost one relaxed atomic
//! load, and a line format that is structured enough to grep:
//!
//! ```text
//! [rankd +12.045s WARN engine] slow request trace=42 op=rank n=1000000 total=312.4ms ...
//! ```
//!
//! Call sites use the [`rankd_log!`](crate::rankd_log) macro, which
//! formats its arguments only when the level is enabled.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Log severity, most to least severe. The active level comes from
/// `RANKD_LOG`; a line is emitted when its level is at or above it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 0,
    /// Degraded behavior worth a human's attention (default level);
    /// slow-request lines land here.
    Warn = 1,
    /// Lifecycle events: serve start/stop, config.
    Info = 2,
    /// Per-decision detail: planner dispatch choices.
    Debug = 3,
    /// Per-request detail: frame decode, reply writes, trace spans.
    Trace = 4,
}

impl Level {
    /// Display name, upper case, as printed in log lines.
    pub fn name(&self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn init_level() -> u8 {
    let level =
        std::env::var("RANKD_LOG").ok().and_then(|s| Level::parse(&s)).unwrap_or(Level::Warn) as u8;
    MAX_LEVEL.store(level, Ordering::Relaxed);
    level
}

/// The active maximum level (parsed from `RANKD_LOG` on first use).
pub fn max_level() -> Level {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    let raw = if raw == LEVEL_UNSET { init_level() } else { raw };
    match raw {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Whether a line at `level` would be emitted. Call sites guard on
/// this before formatting, so disabled logging costs one atomic load.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

fn start_instant() -> &'static Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now)
}

fn sink() -> &'static Mutex<()> {
    static SINK: Mutex<()> = Mutex::new(());
    &SINK
}

/// Emit one log line to stderr (unconditionally — use [`enabled`] or
/// the [`rankd_log!`](crate::rankd_log) macro to guard). `target`
/// names the subsystem (`engine`, `planner`, `serve`, …).
pub fn write(level: Level, target: &str, msg: &str) {
    let t = start_instant().elapsed();
    // One writeln under a lock so concurrent workers never interleave
    // within a line; stderr itself is line-buffered anyway.
    let guard = sink().lock().unwrap_or_else(|e| e.into_inner());
    let _ = writeln!(
        std::io::stderr(),
        "[rankd +{:.3}s {} {}] {}",
        t.as_secs_f64(),
        level.name(),
        target,
        msg
    );
    drop(guard);
}

/// Log a structured line if `RANKD_LOG` admits the level; the format
/// arguments are not evaluated otherwise.
///
/// ```
/// use engine::telemetry::log::Level;
/// engine::rankd_log!(Level::Debug, "planner", "dispatch n={} alg={}", 1000, "serial");
/// ```
#[macro_export]
macro_rules! rankd_log {
    ($level:expr, $target:expr, $($arg:tt)*) => {
        if $crate::telemetry::log::enabled($level) {
            $crate::telemetry::log::write($level, $target, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_documented_levels() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse(" trace "), Some(Level::Trace));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn enabled_is_monotone() {
        let max = max_level();
        assert!(enabled(Level::Error) || max < Level::Error);
        if enabled(Level::Trace) {
            assert!(enabled(Level::Debug));
        }
    }

    #[test]
    fn write_does_not_panic() {
        write(Level::Error, "test", "line with fields k=v n=3");
    }
}
