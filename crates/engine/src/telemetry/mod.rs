//! End-to-end telemetry: latency histograms, request tracing, and the
//! structured logger.
//!
//! Reid-Miller's paper is a *measurement* paper — its argument rests on
//! per-phase timing breakdowns — and this module gives the serving
//! stack the same discipline. Three pieces, all std-only and all
//! O(1)/lock-free on the recording path:
//!
//! * [`hist`] — log₂-bucketed, sub-bucket-resolved latency histograms
//!   ([`Histogram`] for math and the wire, [`AtomicHistogram`] for
//!   concurrent recording) plus cache-line [`Striped`] counters.
//! * [`trace`] — per-request [trace ids](trace::next_trace_id), the
//!   [`Phase`] taxonomy (decode → queue-wait → plan → exec → stitch →
//!   reply-write), and a [`Ring`] of recent [`Span`] timelines.
//! * [`log`] — the `RANKD_LOG`-leveled stderr logger and the
//!   [`rankd_log!`](crate::rankd_log) macro.
//!
//! [`Telemetry`] is the per-engine registry that owns the histograms
//! and the span ring; the worker loop and the socket server record
//! into it, [`crate::EngineStats`] snapshots it, and the `STATS_V2`
//! wire frame ships it to `rankd stats`.

pub mod hist;
pub mod log;
pub mod trace;

pub use hist::{AtomicHistogram, Histogram, Striped};
pub use trace::{next_trace_id, Phase, Ring, Span};

use crate::op::OpKind;
use log::Level;

/// How many completed-request spans the ring keeps.
const SPAN_RING_CAPACITY: usize = 256;

/// Default slow-request threshold (total phase time) when neither
/// `EngineConfig::slow_request_ms` nor `RANKD_SLOW_MS` is set.
pub const DEFAULT_SLOW_MS: u64 = 250;

/// The per-engine telemetry registry: per-phase and per-op latency
/// histograms, the span ring, and the slow-request policy.
///
/// Recording is lock-free and O(1) (see [`AtomicHistogram`]); with
/// `enabled == false` every record call is a branch and nothing else,
/// which is the baseline the <3% overhead budget is measured against.
pub struct Telemetry {
    enabled: bool,
    slow_ns: u64,
    phase: [AtomicHistogram; Phase::ALL.len()],
    per_op: [AtomicHistogram; OpKind::ALL.len()],
    spans: Ring<Span>,
}

impl Telemetry {
    /// A registry. `slow_ms` is the slow-request log threshold; pass
    /// `None` to take `RANKD_SLOW_MS` (or [`DEFAULT_SLOW_MS`]).
    pub fn new(enabled: bool, slow_ms: Option<u64>) -> Self {
        let slow_ms = slow_ms.unwrap_or_else(|| {
            std::env::var("RANKD_SLOW_MS")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(DEFAULT_SLOW_MS)
        });
        Telemetry {
            enabled,
            slow_ns: slow_ms.saturating_mul(1_000_000),
            phase: std::array::from_fn(|_| AtomicHistogram::new()),
            per_op: std::array::from_fn(|_| AtomicHistogram::new()),
            spans: Ring::new(SPAN_RING_CAPACITY),
        }
    }

    /// Whether recording is active (`EngineConfig::telemetry`).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The slow-request threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_ns
    }

    /// Record one phase duration.
    #[inline]
    pub fn record_phase(&self, phase: Phase, ns: u64) {
        if self.enabled {
            self.phase[phase.index()].record(ns);
        }
    }

    /// Record one completed job's execution time under its op kind.
    #[inline]
    pub fn record_op(&self, op: OpKind, exec_ns: u64) {
        if self.enabled {
            self.per_op[op.index()].record(exec_ns);
        }
    }

    /// Record a completed request's span: pushes it on the ring and
    /// emits the slow-request warning line when the total phase time
    /// crosses the threshold.
    pub fn record_span(&self, span: Span) {
        if !self.enabled {
            return;
        }
        let total = span.total_ns();
        if total >= self.slow_ns && log::enabled(Level::Warn) {
            log::write(
                Level::Warn,
                "engine",
                &format!(
                    "slow request trace={} op={} n={} alg={} shards={} total={:.3}ms {}",
                    span.trace_id,
                    span.op,
                    span.n,
                    span.algorithm.name(),
                    span.shards,
                    total as f64 / 1e6,
                    span.timeline()
                ),
            );
        } else if log::enabled(Level::Trace) {
            log::write(
                Level::Trace,
                "engine",
                &format!(
                    "span trace={} op={} n={} total={:.3}ms {}",
                    span.trace_id,
                    span.op,
                    span.n,
                    total as f64 / 1e6,
                    span.timeline()
                ),
            );
        }
        self.spans.push(span);
    }

    /// Snapshot one phase histogram.
    pub fn phase_snapshot(&self, phase: Phase) -> Histogram {
        self.phase[phase.index()].snapshot()
    }

    /// Snapshot every phase histogram, indexed by [`Phase::index`].
    pub fn phase_snapshots(&self) -> [Histogram; Phase::ALL.len()] {
        std::array::from_fn(|i| self.phase[i].snapshot())
    }

    /// Snapshot every per-op exec-latency histogram, indexed by
    /// [`OpKind::ALL`] order.
    pub fn op_snapshots(&self) -> [Histogram; OpKind::ALL.len()] {
        std::array::from_fn(|i| self.per_op[i].snapshot())
    }

    /// The up-to-`k` most recent request spans, oldest first.
    pub fn recent_spans(&self, k: usize) -> Vec<Span> {
        self.spans.recent(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::new(false, Some(10));
        t.record_phase(Phase::Exec, 1000);
        t.record_op(OpKind::Rank, 1000);
        t.record_span(Span {
            trace_id: 1,
            op: OpKind::Rank,
            n: 10,
            algorithm: listrank::Algorithm::Serial,
            shards: 0,
            phase_ns: [1; 6],
        });
        assert!(t.phase_snapshot(Phase::Exec).is_empty());
        assert!(t.op_snapshots()[OpKind::Rank.index()].is_empty());
        assert!(t.recent_spans(8).is_empty());
    }

    #[test]
    fn enabled_registry_accumulates() {
        let t = Telemetry::new(true, Some(1_000_000)); // high threshold: no log spam
        t.record_phase(Phase::QueueWait, 500);
        t.record_phase(Phase::QueueWait, 1500);
        t.record_op(OpKind::Add, 2500);
        let q = t.phase_snapshot(Phase::QueueWait);
        assert_eq!(q.count(), 2);
        assert_eq!(q.sum(), 2000);
        assert_eq!(t.op_snapshots()[OpKind::Add.index()].count(), 1);
        let mut span = Span {
            trace_id: 9,
            op: OpKind::Add,
            n: 10,
            algorithm: listrank::Algorithm::Serial,
            shards: 0,
            phase_ns: [0; 6],
        };
        span.phase_ns[Phase::Exec.index()] = 2500;
        t.record_span(span);
        let recent = t.recent_spans(8);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].trace_id, 9);
    }

    #[test]
    fn slow_threshold_from_explicit_config() {
        let t = Telemetry::new(true, Some(7));
        assert_eq!(t.slow_threshold_ns(), 7_000_000);
    }
}
