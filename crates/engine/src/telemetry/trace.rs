//! Request tracing: trace ids, request phases, and the span ring.
//!
//! Every request gets a process-unique trace id
//! ([`super::next_trace_id`]) at its earliest
//! observation point — frame decode in the server, `submit` for
//! in-process callers — which rides through the job queue, comes back
//! on the [`crate::JobHandle`], and is echoed in the OUTPUT wire frame
//! so a client log line and a daemon log line can be joined on one
//! number.
//!
//! Completed requests leave a [`Span`] — the per-phase nanosecond
//! timeline — in a fixed-capacity [`Ring`]: the most recent spans are
//! always inspectable ([`Ring::recent`]) without unbounded memory, and
//! recording is O(1) (an atomic slot claim plus one uncontended
//! per-slot lock; two writers only touch the same lock when the ring
//! has wrapped all the way around between them).

use crate::op::OpKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The request phases instrumented end to end, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Parsing the request frame body into a typed request (server).
    Decode,
    /// Waiting in the engine's bounded job queue.
    QueueWait,
    /// Planner dispatch: choosing algorithm / lanes / shards.
    Plan,
    /// Executing the rank/scan itself.
    Exec,
    /// The sharded path's boundary-list stitch (0 for monolithic runs).
    Stitch,
    /// Writing the OUTPUT reply back to the client (server).
    ReplyWrite,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::Decode,
        Phase::QueueWait,
        Phase::Plan,
        Phase::Exec,
        Phase::Stitch,
        Phase::ReplyWrite,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Decode => "decode",
            Phase::QueueWait => "queue-wait",
            Phase::Plan => "plan",
            Phase::Exec => "exec",
            Phase::Stitch => "stitch",
            Phase::ReplyWrite => "reply-write",
        }
    }

    /// Index into [`Phase::ALL`]-shaped arrays (also the wire id of
    /// this phase's histogram block in STATS_V2).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Inverse of [`Phase::index`] (wire decode).
    pub fn from_index(i: usize) -> Option<Phase> {
        Phase::ALL.get(i).copied()
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate the next process-unique trace id (monotonic, starts at 1;
/// 0 is reserved as "no trace").
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The completed timeline of one request: per-phase nanoseconds plus
/// identity. Phases a request never entered are 0.
#[derive(Clone, Debug)]
pub struct Span {
    /// The request's trace id.
    pub trace_id: u64,
    /// What the request computed.
    pub op: OpKind,
    /// List length.
    pub n: usize,
    /// Executing algorithm (stitch algorithm for sharded runs).
    pub algorithm: listrank::Algorithm,
    /// Shard count; 0 = monolithic.
    pub shards: usize,
    /// Nanoseconds per phase, indexed by [`Phase::index`].
    pub phase_ns: [u64; Phase::ALL.len()],
}

impl Span {
    /// Sum of all phase durations.
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// The `phase=duration_ms` timeline, for log lines.
    pub fn timeline(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for p in Phase::ALL {
            let ns = self.phase_ns[p.index()];
            if !out.is_empty() {
                out.push(' ');
            }
            let _ = write!(out, "{}={:.3}ms", p.name(), ns as f64 / 1e6);
        }
        out
    }
}

/// A fixed-capacity overwrite-oldest ring of recent values.
///
/// `push` claims a slot with one atomic increment and takes that
/// slot's (uncontended) lock — O(1), no global lock, no allocation
/// after construction. Used for request [`Span`]s and the planner's
/// decision log.
pub struct Ring<T> {
    slots: Box<[Mutex<Option<T>>]>,
    head: AtomicU64,
}

impl<T: Clone> Ring<T> {
    /// A ring holding the `capacity` most recent pushes (capacity is
    /// rounded up to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring { slots: (0..capacity).map(|_| Mutex::new(None)).collect(), head: AtomicU64::new(0) }
    }

    /// Record a value, overwriting the oldest once full.
    pub fn push(&self, value: T) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
    }

    /// Total values ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The up-to-`k` most recent values, oldest first.
    pub fn recent(&self, k: usize) -> Vec<T> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let len = head.min(cap).min(k as u64);
        let mut out = Vec::with_capacity(len as usize);
        for i in (0..len).rev() {
            let seq = head - 1 - i;
            let slot = (seq % cap) as usize;
            if let Some(v) = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()).clone() {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_round_trip() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phase::from_index(i), Some(*p));
        }
        assert_eq!(Phase::from_index(Phase::ALL.len()), None);
        assert_eq!(format!("{}", Phase::QueueWait), "queue-wait");
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert!(b > a);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let r: Ring<u32> = Ring::new(4);
        for v in 0..10u32 {
            r.push(v);
        }
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.recent(10), vec![6, 7, 8, 9]);
        assert_eq!(r.recent(2), vec![8, 9]);
    }

    #[test]
    fn ring_under_capacity() {
        let r: Ring<u32> = Ring::new(8);
        r.push(1);
        r.push(2);
        assert_eq!(r.recent(8), vec![1, 2]);
    }

    #[test]
    fn span_total_and_timeline() {
        let mut s = Span {
            trace_id: 7,
            op: OpKind::Rank,
            n: 100,
            algorithm: listrank::Algorithm::Serial,
            shards: 0,
            phase_ns: [0; 6],
        };
        s.phase_ns[Phase::QueueWait.index()] = 1_500_000;
        s.phase_ns[Phase::Exec.index()] = 2_000_000;
        assert_eq!(s.total_ns(), 3_500_000);
        let t = s.timeline();
        assert!(t.contains("queue-wait=1.500ms"));
        assert!(t.contains("exec=2.000ms"));
        assert!(t.contains("decode=0.000ms"));
    }
}
