//! Mixed-workload generation and the engine-vs-baseline throughput
//! harness (shared by the `rankd` CLI and the criterion benchmark).

use crate::engine::Engine;
use crate::job::{JobOutput, JobSpec};
use listkit::gen;
use listkit::ops::AddOp;
use listrank::{Algorithm, HostRunner};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of a mixed ranking/scan workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Smallest job size decade: jobs of ≥ `10^min_exp` vertices.
    pub min_exp: u32,
    /// Largest job size decade: jobs up to `10^max_exp` vertices.
    pub max_exp: u32,
    /// Element budget per decade: decade `e` gets about
    /// `elems_per_decade / 10^e` jobs (clamped to `max_jobs_per_decade`,
    /// minimum 1), so every decade contributes comparable total work.
    pub elems_per_decade: u64,
    /// Cap on the job count of any decade (keeps 10² from dominating).
    pub max_jobs_per_decade: usize,
    /// Fraction of jobs that are `+`-scans instead of rankings.
    pub scan_frac: f64,
    /// Generator seed (lists, sizes and the submission order are all
    /// deterministic functions of it).
    pub seed: u64,
    /// Distinct lists generated per decade (jobs share them via `Arc`).
    pub lists_per_decade: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            min_exp: 2,
            max_exp: 7,
            elems_per_decade: 2_000_000,
            max_jobs_per_decade: 3000,
            scan_frac: 0.3,
            seed: 0xC90,
            lists_per_decade: 3,
        }
    }
}

/// A pre-generated job mix (generation cost is paid before timing).
pub struct Workload {
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Total vertices across all jobs.
    pub total_elements: u64,
}

impl Workload {
    /// Generate the mixed workload described by `cfg`.
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        assert!(cfg.min_exp <= cfg.max_exp, "min_exp must be ≤ max_exp");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut jobs: Vec<JobSpec> = Vec::new();
        for e in cfg.min_exp..=cfg.max_exp {
            let base = 10u64.pow(e) as usize;
            // Distinct lists for this decade, sizes jittered log-uniform
            // within [10^e, 10^(e+1)) — except the top decade, which is
            // pinned to exactly 10^max_exp so the workload's size range
            // is the configured [10^min_exp, 10^max_exp].
            let variants: Vec<(Arc<listkit::LinkedList>, Arc<Vec<i64>>)> = (0..cfg
                .lists_per_decade
                .max(1))
                .map(|v| {
                    let factor = if e == cfg.max_exp {
                        1.0
                    } else {
                        10f64.powf(rng.random_range(0.0f64..1.0))
                    };
                    let n = ((base as f64) * factor) as usize;
                    let list = Arc::new(gen::random_list(n, cfg.seed ^ (e as u64) << 8 ^ v as u64));
                    let values: Arc<Vec<i64>> =
                        Arc::new((0..n as i64).map(|i| (i % 23) - 11).collect());
                    (list, values)
                })
                .collect();
            let count = (cfg.elems_per_decade / base as u64)
                .clamp(1, cfg.max_jobs_per_decade as u64) as usize;
            for j in 0..count {
                let (list, values) = &variants[j % variants.len()];
                let job = if rng.random_range(0.0f64..1.0) < cfg.scan_frac {
                    JobSpec::ScanAdd { list: Arc::clone(list), values: Arc::clone(values) }
                } else {
                    JobSpec::Rank { list: Arc::clone(list) }
                };
                jobs.push(job);
            }
        }
        // Interleave decades so the queue always sees a mix of sizes.
        gen::fisher_yates(&mut jobs, &mut rng);
        let total_elements = jobs.iter().map(|j| j.len() as u64).sum();
        Workload { jobs, total_elements }
    }
}

/// Outcome of driving one workload through an executor.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Wall-clock time for the whole workload.
    pub elapsed: Duration,
    /// Jobs completed.
    pub jobs: usize,
    /// Vertices processed.
    pub elements: u64,
    /// Order-independent digest of all outputs (keeps work honest and
    /// catches divergence between executors on the same workload):
    /// per-job position-sensitive folds, aggregated by wrapping
    /// addition so duplicated jobs cannot cancel as they would under
    /// XOR.
    pub checksum: u64,
}

impl RunResult {
    /// Elements per second.
    pub fn elements_per_sec(&self) -> f64 {
        self.elements as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn fold_output(out: &JobOutput) -> u64 {
    // Mix the vertex index into each term: a rank vector is always a
    // permutation of 0..n, so a position-blind XOR would be identical
    // for any misassignment of correct values to wrong vertices.
    match out {
        JobOutput::Ranks(r) => r
            .iter()
            .enumerate()
            .fold(0u64, |a, (v, &x)| a ^ (x ^ (v as u64) << 32).wrapping_mul(0x9e3779b9)),
        JobOutput::Scan(s) => s
            .iter()
            .enumerate()
            .fold(0u64, |a, (v, &x)| a ^ (x as u64 ^ (v as u64) << 32).wrapping_mul(0x85ebca6b)),
    }
}

/// Drive the workload through the engine: submit everything (blocking
/// submits exercise backpressure), then await all handles.
pub fn run_engine(engine: &Engine, workload: &Workload) -> RunResult {
    let t0 = Instant::now();
    let handles: Vec<_> = workload
        .jobs
        .iter()
        .map(|spec| engine.submit(spec.clone()).expect("engine accepting work"))
        .collect();
    let mut checksum = 0u64;
    let mut jobs = 0usize;
    for h in handles {
        let report = h.wait().expect("job completed");
        checksum = checksum.wrapping_add(fold_output(&report.output));
        jobs += 1;
    }
    RunResult { elapsed: t0.elapsed(), jobs, elements: workload.total_elements, checksum }
}

/// Parameters of the huge-list sharded-ranking scenario: a few jobs
/// over one list far above the per-worker budget, run once through the
/// shard-parallel path and once through the monolithic fallback.
#[derive(Clone, Debug)]
pub struct HugeListConfig {
    /// Vertices in the huge list (scales to 10^8 virtual elements; the
    /// list is shared by every job via `Arc`, so memory holds one copy).
    pub n: usize,
    /// Ranking jobs submitted over the list per pass.
    pub jobs: usize,
    /// Blocked-layout block size: the locality knob. Real huge lists
    /// arrive as concatenations of locally-built chunks; `block`
    /// vertices stay contiguous while blocks land in random order.
    pub block: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for HugeListConfig {
    fn default() -> Self {
        HugeListConfig { n: 1 << 24, jobs: 4, block: 4096, seed: 0xC90 }
    }
}

/// Both passes of the huge-list scenario, checksum-verified against
/// each other.
#[derive(Clone, Copy, Debug)]
pub struct ShardedComparison {
    /// The shard-parallel pass (`JobSpec::RankSharded`).
    pub sharded: RunResult,
    /// The monolithic pass (`JobSpec::Rank`, planner-dispatched).
    pub monolithic: RunResult,
}

impl ShardedComparison {
    /// Sharded throughput over monolithic throughput.
    pub fn speedup(&self) -> f64 {
        self.monolithic.elapsed.as_secs_f64() / self.sharded.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Drive the huge-list scenario through `engine`: submit `cfg.jobs`
/// sharded ranking jobs, await them, then the same jobs monolithically,
/// and check both passes produce identical bytes.
///
/// # Panics
/// Panics if the two passes' checksums diverge.
pub fn run_sharded_scenario(engine: &Engine, cfg: &HugeListConfig) -> ShardedComparison {
    let list =
        Arc::new(gen::list_with_layout(cfg.n, gen::Layout::Blocked(cfg.block.max(1)), cfg.seed));
    let pass = |spec_for: &dyn Fn() -> JobSpec| -> RunResult {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..cfg.jobs.max(1))
            .map(|_| engine.submit(spec_for()).expect("engine accepting work"))
            .collect();
        let mut checksum = 0u64;
        let mut jobs = 0usize;
        for h in handles {
            let report = h.wait().expect("job completed");
            checksum = checksum.wrapping_add(fold_output(&report.output));
            jobs += 1;
        }
        RunResult {
            elapsed: t0.elapsed(),
            jobs,
            elements: cfg.n as u64 * cfg.jobs.max(1) as u64,
            checksum,
        }
    };
    let sharded = pass(&|| JobSpec::RankSharded { list: Arc::clone(&list) });
    let monolithic = pass(&|| JobSpec::Rank { list: Arc::clone(&list) });
    assert_eq!(
        sharded.checksum, monolithic.checksum,
        "sharded and monolithic passes diverged on the same list"
    );
    ShardedComparison { sharded, monolithic }
}

/// The naive baseline the engine must beat: submit-and-wait each job in
/// order through a one-shot `HostRunner` with a fixed algorithm and
/// fresh allocations — exactly what callers did before `rankd` existed.
pub fn run_baseline(workload: &Workload) -> RunResult {
    let runner = HostRunner::new(Algorithm::ReidMiller);
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for spec in &workload.jobs {
        let out = match spec {
            JobSpec::Rank { list } | JobSpec::RankSharded { list } => {
                JobOutput::Ranks(runner.rank(list))
            }
            JobSpec::ScanAdd { list, values } => JobOutput::Scan(runner.scan(list, values, &AddOp)),
        };
        checksum = checksum.wrapping_add(fold_output(&out));
    }
    RunResult {
        elapsed: t0.elapsed(),
        jobs: workload.jobs.len(),
        elements: workload.total_elements,
        checksum,
    }
}
