//! Mixed-workload generation and the engine-vs-baseline throughput
//! harness (shared by the `rankd` CLI and the criterion benchmark).

use crate::engine::Engine;
use crate::job::{JobHandle, Request};
use listkit::gen;
use listkit::ops::{AddOp, Affine, AffineOp, MaxOp, MinOp, XorOp};
use listkit::segmented::{self, SegOp};
use listkit::LinkedList;
use listrank::{Algorithm, HostRunner};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which scan operators the mixed workload routes through the engine
/// (`rankd --op`): one specific operator, or the full rotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpSelect {
    /// Rotate through every operator (including a segmented case).
    Mixed,
    /// `+`-scans only.
    Add,
    /// max-scans only.
    Max,
    /// min-scans only.
    Min,
    /// xor-scans only.
    Xor,
    /// Affine-composition scans only (non-commutative).
    Affine,
    /// Segmented `+`-scans only.
    Segmented,
}

impl OpSelect {
    /// Parse a `rankd --op` value.
    pub fn parse(s: &str) -> Option<OpSelect> {
        Some(match s {
            "mixed" => OpSelect::Mixed,
            "add" => OpSelect::Add,
            "max" => OpSelect::Max,
            "min" => OpSelect::Min,
            "xor" => OpSelect::Xor,
            "affine" => OpSelect::Affine,
            "seg" | "segmented" => OpSelect::Segmented,
            _ => return None,
        })
    }

    /// The scan kind the `i`-th generated variant carries.
    fn kind_for(self, i: usize) -> ScanKind {
        const ROTATION: [ScanKind; 6] = [
            ScanKind::Add,
            ScanKind::Max,
            ScanKind::Xor,
            ScanKind::Affine,
            ScanKind::Seg,
            ScanKind::Min,
        ];
        match self {
            OpSelect::Mixed => ROTATION[i % ROTATION.len()],
            OpSelect::Add => ScanKind::Add,
            OpSelect::Max => ScanKind::Max,
            OpSelect::Min => ScanKind::Min,
            OpSelect::Xor => ScanKind::Xor,
            OpSelect::Affine => ScanKind::Affine,
            OpSelect::Segmented => ScanKind::Seg,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum ScanKind {
    Add,
    Max,
    Min,
    Xor,
    Affine,
    Seg,
}

/// Parameters of a mixed ranking/scan workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Smallest job size decade: jobs of ≥ `10^min_exp` vertices.
    pub min_exp: u32,
    /// Largest job size decade: jobs up to `10^max_exp` vertices.
    pub max_exp: u32,
    /// Element budget per decade: decade `e` gets about
    /// `elems_per_decade / 10^e` jobs (clamped to `max_jobs_per_decade`,
    /// minimum 1), so every decade contributes comparable total work.
    pub elems_per_decade: u64,
    /// Cap on the job count of any decade (keeps 10² from dominating).
    pub max_jobs_per_decade: usize,
    /// Fraction of jobs that are scans instead of rankings.
    pub scan_frac: f64,
    /// Which scan operators the scan jobs use.
    pub op: OpSelect,
    /// Generator seed (lists, sizes and the submission order are all
    /// deterministic functions of it).
    pub seed: u64,
    /// Distinct lists generated per decade (jobs share them via `Arc`).
    pub lists_per_decade: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            min_exp: 2,
            max_exp: 7,
            elems_per_decade: 2_000_000,
            max_jobs_per_decade: 3000,
            scan_frac: 0.3,
            op: OpSelect::Mixed,
            seed: 0xC90,
            lists_per_decade: 3,
        }
    }
}

/// One pre-generated job: the list plus the payload of its designated
/// operator. An enum over the concrete operators keeps the harness
/// allocation-free at submit time (every submit just clones `Arc`s into
/// a typed [`Request`]).
#[derive(Clone)]
enum WorkJob {
    Rank(Arc<LinkedList>),
    Add(Arc<LinkedList>, Arc<Vec<i64>>),
    Max(Arc<LinkedList>, Arc<Vec<i64>>),
    Min(Arc<LinkedList>, Arc<Vec<i64>>),
    Xor(Arc<LinkedList>, Arc<Vec<u64>>),
    Affine(Arc<LinkedList>, Arc<Vec<Affine>>),
    Seg(Arc<LinkedList>, Arc<Vec<i64>>, Arc<Vec<bool>>),
}

/// An in-flight job: the typed handles a mixed workload produces.
enum Pending {
    U64(JobHandle<Vec<u64>>),
    I64(JobHandle<Vec<i64>>),
    Aff(JobHandle<Vec<Affine>>),
}

impl Pending {
    /// Await the job and fold its typed output into a digest.
    fn wait_digest(self) -> u64 {
        match self {
            Pending::U64(h) => fold_u64(&h.wait().expect("job completed").output),
            Pending::I64(h) => fold_i64(&h.wait().expect("job completed").output),
            Pending::Aff(h) => fold_affine(&h.wait().expect("job completed").output),
        }
    }
}

impl WorkJob {
    fn len(&self) -> usize {
        match self {
            WorkJob::Rank(list)
            | WorkJob::Add(list, _)
            | WorkJob::Max(list, _)
            | WorkJob::Min(list, _)
            | WorkJob::Xor(list, _)
            | WorkJob::Affine(list, _)
            | WorkJob::Seg(list, _, _) => list.len(),
        }
    }

    /// Submit through the typed request API.
    fn submit(&self, engine: &Engine) -> Pending {
        let accepted = "engine accepting work";
        match self {
            WorkJob::Rank(l) => {
                Pending::U64(engine.submit(Request::rank(Arc::clone(l))).expect(accepted))
            }
            WorkJob::Add(l, v) => Pending::I64(
                engine.submit(Request::scan(Arc::clone(l), Arc::clone(v), AddOp)).expect(accepted),
            ),
            WorkJob::Max(l, v) => Pending::I64(
                engine.submit(Request::scan(Arc::clone(l), Arc::clone(v), MaxOp)).expect(accepted),
            ),
            WorkJob::Min(l, v) => Pending::I64(
                engine.submit(Request::scan(Arc::clone(l), Arc::clone(v), MinOp)).expect(accepted),
            ),
            WorkJob::Xor(l, v) => Pending::U64(
                engine.submit(Request::scan(Arc::clone(l), Arc::clone(v), XorOp)).expect(accepted),
            ),
            WorkJob::Affine(l, v) => Pending::Aff(
                engine
                    .submit(Request::scan(Arc::clone(l), Arc::clone(v), AffineOp))
                    .expect(accepted),
            ),
            WorkJob::Seg(l, v, s) => Pending::I64(
                engine
                    .submit(Request::segmented_scan(
                        Arc::clone(l),
                        Arc::clone(v),
                        Arc::clone(s),
                        AddOp,
                    ))
                    .expect(accepted),
            ),
        }
    }

    /// What callers did before `rankd`: a one-shot fixed-algorithm
    /// `HostRunner` call with fresh allocations. Returns the digest of
    /// the output (must agree with the engine path byte for byte).
    fn run_baseline(&self, runner: &HostRunner) -> u64 {
        match self {
            WorkJob::Rank(l) => fold_u64(&runner.rank(l)),
            WorkJob::Add(l, v) => fold_i64(&runner.scan(l, v, &AddOp)),
            WorkJob::Max(l, v) => fold_i64(&runner.scan(l, v, &MaxOp)),
            WorkJob::Min(l, v) => fold_i64(&runner.scan(l, v, &MinOp)),
            WorkJob::Xor(l, v) => fold_u64(&runner.scan(l, v, &XorOp)),
            WorkJob::Affine(l, v) => fold_affine(&runner.scan(l, v, &AffineOp)),
            WorkJob::Seg(l, v, s) => {
                let wrapped = segmented::wrap(v, s);
                let scanned = runner.scan(l, &wrapped, &SegOp(AddOp));
                fold_i64(&segmented::unwrap_exclusive(&scanned, s, &AddOp))
            }
        }
    }
}

/// Scan payload generators: cheap, deterministic per-vertex patterns.
fn i64_values(n: usize) -> Arc<Vec<i64>> {
    Arc::new((0..n as i64).map(|i| (i % 23) - 11).collect())
}

fn u64_values(n: usize) -> Arc<Vec<u64>> {
    Arc::new((0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i).collect())
}

fn affine_values(n: usize) -> Arc<Vec<Affine>> {
    Arc::new((0..n as i64).map(|i| Affine::new((i % 5) - 2, (i % 7) - 3)).collect())
}

fn seg_starts(n: usize) -> Arc<Vec<bool>> {
    Arc::new((0..n).map(|v| v % 64 == 0).collect())
}

/// A pre-generated job mix (generation cost is paid before timing).
pub struct Workload {
    /// The jobs, in submission order.
    jobs: Vec<WorkJob>,
    /// Total vertices across all jobs.
    pub total_elements: u64,
}

impl Workload {
    /// Generate the mixed workload described by `cfg`.
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        assert!(cfg.min_exp <= cfg.max_exp, "min_exp must be ≤ max_exp");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut jobs: Vec<WorkJob> = Vec::new();
        for e in cfg.min_exp..=cfg.max_exp {
            let base = 10u64.pow(e) as usize;
            // Distinct lists for this decade, sizes jittered log-uniform
            // within [10^e, 10^(e+1)) — except the top decade, which is
            // pinned to exactly 10^max_exp so the workload's size range
            // is the configured [10^min_exp, 10^max_exp]. Each variant
            // carries the payload of one designated scan operator, so
            // the full rotation appears across variants and decades
            // without multiplying the value-array memory.
            let variants: Vec<(Arc<LinkedList>, WorkJob)> = (0..cfg.lists_per_decade.max(1))
                .map(|v| {
                    let factor = if e == cfg.max_exp {
                        1.0
                    } else {
                        10f64.powf(rng.random_range(0.0f64..1.0))
                    };
                    let n = ((base as f64) * factor) as usize;
                    let list = Arc::new(gen::random_list(n, cfg.seed ^ (e as u64) << 8 ^ v as u64));
                    let kind = cfg.op.kind_for(v + e as usize);
                    let scan = match kind {
                        ScanKind::Add => WorkJob::Add(Arc::clone(&list), i64_values(n)),
                        ScanKind::Max => WorkJob::Max(Arc::clone(&list), i64_values(n)),
                        ScanKind::Min => WorkJob::Min(Arc::clone(&list), i64_values(n)),
                        ScanKind::Xor => WorkJob::Xor(Arc::clone(&list), u64_values(n)),
                        ScanKind::Affine => WorkJob::Affine(Arc::clone(&list), affine_values(n)),
                        ScanKind::Seg => {
                            WorkJob::Seg(Arc::clone(&list), i64_values(n), seg_starts(n))
                        }
                    };
                    (list, scan)
                })
                .collect();
            let count = (cfg.elems_per_decade / base as u64)
                .clamp(1, cfg.max_jobs_per_decade as u64) as usize;
            for j in 0..count {
                let (list, scan) = &variants[j % variants.len()];
                let job = if rng.random_range(0.0f64..1.0) < cfg.scan_frac {
                    scan.clone()
                } else {
                    WorkJob::Rank(Arc::clone(list))
                };
                jobs.push(job);
            }
        }
        // Interleave decades so the queue always sees a mix of sizes.
        gen::fisher_yates(&mut jobs, &mut rng);
        let total_elements = jobs.iter().map(|j| j.len() as u64).sum();
        Workload { jobs, total_elements }
    }

    /// Number of jobs in the mix.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }
}

/// Outcome of driving one workload through an executor.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Wall-clock time for the whole workload.
    pub elapsed: Duration,
    /// Jobs completed.
    pub jobs: usize,
    /// Vertices processed.
    pub elements: u64,
    /// Order-independent digest of all outputs (keeps work honest and
    /// catches divergence between executors on the same workload):
    /// per-job position-sensitive folds, aggregated by wrapping
    /// addition so duplicated jobs cannot cancel as they would under
    /// XOR.
    pub checksum: u64,
}

impl RunResult {
    /// Elements per second.
    pub fn elements_per_sec(&self) -> f64 {
        self.elements as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Jobs per second.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

// Position-mixed folds: a rank vector is always a permutation of 0..n,
// so a position-blind XOR would be identical for any misassignment of
// correct values to wrong vertices — mix the vertex index into each
// term.
fn fold_u64(xs: &[u64]) -> u64 {
    xs.iter()
        .enumerate()
        .fold(0u64, |a, (v, &x)| a ^ (x ^ (v as u64) << 32).wrapping_mul(0x9e3779b9))
}

fn fold_i64(xs: &[i64]) -> u64 {
    xs.iter()
        .enumerate()
        .fold(0u64, |a, (v, &x)| a ^ (x as u64 ^ (v as u64) << 32).wrapping_mul(0x85ebca6b))
}

fn fold_affine(xs: &[Affine]) -> u64 {
    xs.iter().enumerate().fold(0u64, |acc, (v, f)| {
        acc ^ (f.a as u64 ^ (v as u64) << 32).wrapping_mul(0xc2b2ae35)
            ^ (f.b as u64 ^ (v as u64) << 32).wrapping_mul(0x27d4eb2f)
    })
}

/// Drive the workload through the engine: submit everything (blocking
/// submits exercise backpressure), then await all handles.
pub fn run_engine(engine: &Engine, workload: &Workload) -> RunResult {
    let t0 = Instant::now();
    let pending: Vec<Pending> = workload.jobs.iter().map(|job| job.submit(engine)).collect();
    let mut checksum = 0u64;
    let mut jobs = 0usize;
    for p in pending {
        checksum = checksum.wrapping_add(p.wait_digest());
        jobs += 1;
    }
    RunResult { elapsed: t0.elapsed(), jobs, elements: workload.total_elements, checksum }
}

/// The naive baseline the engine must beat: submit-and-wait each job in
/// order through a one-shot `HostRunner` with a fixed algorithm and
/// fresh allocations — exactly what callers did before `rankd` existed.
pub fn run_baseline(workload: &Workload) -> RunResult {
    let runner = HostRunner::new(Algorithm::ReidMiller);
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for job in &workload.jobs {
        checksum = checksum.wrapping_add(job.run_baseline(&runner));
    }
    RunResult {
        elapsed: t0.elapsed(),
        jobs: workload.jobs.len(),
        elements: workload.total_elements,
        checksum,
    }
}

/// Parameters of the huge-list sharded-ranking scenario: a few jobs
/// over one list far above the per-worker budget, run once through the
/// shard-parallel path and once through the monolithic fallback.
#[derive(Clone, Debug)]
pub struct HugeListConfig {
    /// Vertices in the huge list (scales to 10^8 virtual elements; the
    /// list is shared by every job via `Arc`, so memory holds one copy).
    pub n: usize,
    /// Ranking jobs submitted over the list per pass.
    pub jobs: usize,
    /// Blocked-layout block size: the locality knob. Real huge lists
    /// arrive as concatenations of locally-built chunks; `block`
    /// vertices stay contiguous while blocks land in random order.
    pub block: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for HugeListConfig {
    fn default() -> Self {
        HugeListConfig { n: 1 << 24, jobs: 4, block: 4096, seed: 0xC90 }
    }
}

/// Both passes of the huge-list scenario, checksum-verified against
/// each other.
#[derive(Clone, Copy, Debug)]
pub struct ShardedComparison {
    /// The shard-parallel pass ([`Request::rank_sharded`]).
    pub sharded: RunResult,
    /// The monolithic pass ([`Request::rank`], planner-dispatched).
    pub monolithic: RunResult,
}

impl ShardedComparison {
    /// Sharded throughput over monolithic throughput.
    pub fn speedup(&self) -> f64 {
        self.monolithic.elapsed.as_secs_f64() / self.sharded.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Drive the huge-list scenario through `engine`: submit `cfg.jobs`
/// sharded ranking jobs, await them, then the same jobs monolithically,
/// and check both passes produce identical bytes.
///
/// # Panics
/// Panics if the two passes' checksums diverge.
pub fn run_sharded_scenario(engine: &Engine, cfg: &HugeListConfig) -> ShardedComparison {
    let list =
        Arc::new(gen::list_with_layout(cfg.n, gen::Layout::Blocked(cfg.block.max(1)), cfg.seed));
    let pass = |req_for: &dyn Fn() -> Request<Vec<u64>>| -> RunResult {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..cfg.jobs.max(1))
            .map(|_| engine.submit(req_for()).expect("engine accepting work"))
            .collect();
        let mut checksum = 0u64;
        let mut jobs = 0usize;
        for h in handles {
            let report = h.wait().expect("job completed");
            checksum = checksum.wrapping_add(fold_u64(&report.output));
            jobs += 1;
        }
        RunResult {
            elapsed: t0.elapsed(),
            jobs,
            elements: cfg.n as u64 * cfg.jobs.max(1) as u64,
            checksum,
        }
    };
    let sharded = pass(&|| Request::rank_sharded(Arc::clone(&list)));
    let monolithic = pass(&|| Request::rank(Arc::clone(&list)));
    assert_eq!(
        sharded.checksum, monolithic.checksum,
        "sharded and monolithic passes diverged on the same list"
    );
    ShardedComparison { sharded, monolithic }
}
