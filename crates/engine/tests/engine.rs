//! Integration tests: engine results must be byte-identical to direct
//! `HostRunner` results, under concurrency, batching, cancellation and
//! backpressure; and the adaptive planner must demonstrably dispatch
//! different algorithms by job size.

use engine::{Engine, EngineConfig, JobError, JobOptions, JobSpec};
use listkit::gen;
use listkit::ops::AddOp;
use listrank::{Algorithm, HostRunner};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn shared_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig::default().with_workers(2).with_queue_capacity(256))
    })
}

fn values_for(n: usize) -> Arc<Vec<i64>> {
    Arc::new((0..n as i64).map(|i| (i % 31) - 15).collect())
}

#[test]
fn engine_matches_host_runner_all_algorithms_and_sizes() {
    let engine = shared_engine();
    // Sizes straddle the serial cutoff, the batching cutoff and the
    // parallel regime.
    for &n in &[1usize, 2, 3, 100, 2048, 2049, 10_000, 60_000] {
        let list = Arc::new(gen::random_list(n, n as u64 ^ 0xBEEF));
        let values = values_for(n);
        for alg in Algorithm::ALL {
            let seed = 0x1994 ^ n as u64;
            let opts = JobOptions { seed, algorithm: Some(alg) };
            let rank_handle = engine
                .submit_with(JobSpec::Rank { list: Arc::clone(&list) }, opts)
                .expect("submit rank");
            let scan_handle = engine
                .submit_with(
                    JobSpec::ScanAdd { list: Arc::clone(&list), values: Arc::clone(&values) },
                    opts,
                )
                .expect("submit scan");

            let runner = HostRunner::new(alg).with_seed(seed);
            let rank_report = rank_handle.wait().expect("rank completes");
            assert_eq!(rank_report.algorithm, alg);
            assert_eq!(
                rank_report.output.ranks().expect("rank output"),
                runner.rank(&list).as_slice(),
                "rank parity: {alg} n={n}"
            );
            let scan_report = scan_handle.wait().expect("scan completes");
            assert_eq!(
                scan_report.output.scan().expect("scan output"),
                runner.scan(&list, &values, &AddOp).as_slice(),
                "scan parity: {alg} n={n}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_rank_matches_host_for_random_jobs(
        n in 1usize..30_000,
        seed in any::<u64>(),
        alg_ix in 0usize..5,
    ) {
        let engine = shared_engine();
        let alg = Algorithm::ALL[alg_ix];
        let list = Arc::new(gen::random_list(n, seed));
        let opts = JobOptions { seed, algorithm: Some(alg) };
        let handle = engine
            .submit_with(JobSpec::Rank { list: Arc::clone(&list) }, opts)
            .expect("submit");
        let report = handle.wait().expect("completes");
        let want = HostRunner::new(alg).with_seed(seed).rank(&list);
        prop_assert_eq!(report.output.ranks().expect("ranks"), want.as_slice());
    }

    #[test]
    fn engine_adaptive_rank_is_correct(n in 1usize..50_000, seed in any::<u64>()) {
        // No pinning: whatever the planner picks must still be right.
        let engine = shared_engine();
        let list = Arc::new(gen::random_list(n, seed));
        let handle = engine.submit(JobSpec::Rank { list: Arc::clone(&list) }).expect("submit");
        let report = handle.wait().expect("completes");
        prop_assert_eq!(
            report.output.ranks().expect("ranks"),
            listkit::serial::rank(&list).as_slice()
        );
    }
}

#[test]
fn sixty_four_jobs_in_flight_all_correct() {
    let engine = Engine::new(EngineConfig::default().with_workers(4).with_queue_capacity(256));
    // Occupy all four workers with sizeable jobs so the small jobs
    // below deterministically pile up in the queue.
    let big = Arc::new(gen::random_list(2_000_000, 99));
    let blockers: Vec<_> = (0..4)
        .map(|_| engine.submit(JobSpec::Rank { list: Arc::clone(&big) }).expect("submit blocker"))
        .collect();

    // Pre-generate a handful of lists; 96 jobs reference them.
    let lists: Vec<Arc<listkit::LinkedList>> =
        (0..8).map(|i| Arc::new(gen::random_list(1000 * (i + 1), i as u64))).collect();
    let expected: Vec<Vec<u64>> = lists.iter().map(|l| listkit::serial::rank(l)).collect();

    let handles: Vec<_> = (0..96)
        .map(|i| {
            engine
                .submit(JobSpec::Rank { list: Arc::clone(&lists[i % lists.len()]) })
                .expect("submit")
        })
        .collect();
    // All 96 were submitted before any wait: ≥64 genuinely in flight.
    for (i, h) in handles.into_iter().enumerate() {
        let report = h.wait().expect("job completes");
        assert_eq!(
            report.output.ranks().expect("ranks"),
            expected[i % lists.len()].as_slice(),
            "job {i}"
        );
    }
    for b in blockers {
        b.wait().expect("blocker completes");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 100);
    assert!(
        stats.peak_queue_depth >= 64,
        "peak queue depth {} should show ≥64 jobs in flight",
        stats.peak_queue_depth
    );
}

#[test]
fn planner_dispatches_different_algorithms_by_size() {
    // Planner believes jobs get 4 threads (the dispatch decision under
    // test is independent of the machine the test runs on).
    let engine = Engine::new(
        EngineConfig::default().with_workers(2).with_inner_threads(4).with_queue_capacity(256),
    );
    let small = Arc::new(gen::random_list(200, 7));
    let large = Arc::new(gen::random_list(1_500_000, 8));
    let mut handles = Vec::new();
    for _ in 0..12 {
        handles.push(engine.submit(JobSpec::Rank { list: Arc::clone(&small) }).unwrap());
    }
    for _ in 0..4 {
        handles.push(engine.submit(JobSpec::Rank { list: Arc::clone(&large) }).unwrap());
    }
    let mut small_algs = Vec::new();
    let mut large_algs = Vec::new();
    for h in handles {
        let report = h.wait().expect("completes");
        if report.n == 200 {
            small_algs.push(report.algorithm);
        } else {
            large_algs.push(report.algorithm);
        }
    }
    assert!(
        small_algs.iter().all(|&a| a == Algorithm::Serial),
        "small jobs must go serial, got {small_algs:?}"
    );
    assert!(
        large_algs.iter().all(|&a| a == Algorithm::ReidMiller),
        "large jobs must go to Reid-Miller, got {large_algs:?}"
    );

    // The dispatch split is visible in the stats surface.
    let stats = engine.shutdown();
    let serial_ix = Algorithm::ALL.iter().position(|&a| a == Algorithm::Serial).unwrap();
    let rm_ix = Algorithm::ALL.iter().position(|&a| a == Algorithm::ReidMiller).unwrap();
    assert!(stats.dispatch[serial_ix] >= 12);
    assert!(stats.dispatch[rm_ix] >= 4);
    let rendered = format!("{stats}");
    assert!(rendered.contains("serial") && rendered.contains("reid-miller"));
    // Small and large jobs land in different bucket rows.
    let small_bucket =
        stats.dispatch_by_bucket.iter().find(|(hi, _)| *hi == 256).expect("bucket for n=200");
    assert!(small_bucket.1[serial_ix] >= 12);
    assert_eq!(small_bucket.1[rm_ix], 0);
    let large_bucket = stats
        .dispatch_by_bucket
        .iter()
        .find(|(hi, _)| *hi == (1 << 21))
        .expect("bucket for n=1.5M");
    assert!(large_bucket.1[rm_ix] >= 4);
}

#[test]
fn small_jobs_get_batched() {
    let engine = Engine::new(
        EngineConfig::default().with_workers(1).with_queue_capacity(512).with_batching(4096, 64),
    );
    // Occupy the single worker so the small jobs pile up behind it.
    let big = Arc::new(gen::random_list(2_000_000, 3));
    let blocker = engine.submit(JobSpec::Rank { list: Arc::clone(&big) }).unwrap();
    let small = Arc::new(gen::random_list(500, 4));
    let handles: Vec<_> = (0..100)
        .map(|_| engine.submit(JobSpec::Rank { list: Arc::clone(&small) }).unwrap())
        .collect();
    blocker.wait().expect("big job done");
    let mut batched_jobs = 0;
    for h in handles {
        if h.wait().expect("small job done").batched {
            batched_jobs += 1;
        }
    }
    let stats = engine.shutdown();
    assert!(stats.batches > 0, "expected at least one batch");
    assert!(batched_jobs > 0, "some jobs should report batched execution");
    assert!(stats.batched_jobs >= batched_jobs);
    // The scratch pool served repeat acquisitions.
    assert!(stats.pool.hits > 0, "pool should be re-serving scratches");
}

#[test]
fn malformed_specs_rejected_at_every_submit_path() {
    // Submit-time validation is centralized in `JobSpec::validate`
    // (exhaustive over variants): both the blocking and non-blocking
    // paths must reject a malformed spec, and malformed *successor
    // arrays* cannot even reach a spec — `LinkedList` construction
    // rejects them, so every job variant is structurally sound.
    let engine = shared_engine();
    let list = Arc::new(gen::random_list(100, 1));
    let values = Arc::new(vec![0i64; 99]); // one short
    assert_eq!(
        engine
            .submit(JobSpec::ScanAdd { list: Arc::clone(&list), values: Arc::clone(&values) })
            .map(|h| h.id()),
        Err(engine::SubmitError::Invalid)
    );
    assert_eq!(
        engine.try_submit(JobSpec::ScanAdd { list: Arc::clone(&list), values }).map(|h| h.id()),
        Err(engine::SubmitError::Invalid)
    );
    // Malformed successor arrays: a rho-shaped cycle, an out-of-range
    // link, and a two-tailed structure are all stopped at list
    // construction — no Rank/RankSharded/ScanAdd job can carry them.
    assert!(listkit::LinkedList::new(vec![1, 2, 0], 0).is_err(), "cycle");
    assert!(listkit::LinkedList::new(vec![1, 9, 2], 0).is_err(), "out of range");
    assert!(listkit::LinkedList::new(vec![0, 1], 0).is_err(), "two tails");
    let ok = Arc::new(vec![0i64; 100]);
    let h = engine.submit(JobSpec::ScanAdd { list, values: ok }).expect("valid spec accepted");
    h.wait().expect("valid job completes");
}

#[test]
fn rank_sharded_matches_serial_across_topologies() {
    // A tiny budget forces real sharding; parity must hold on the
    // sharding-friendly (blocked) and sharding-adversarial (random)
    // topologies, across sizes straddling the budget.
    let engine = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_inner_threads(2)
            .with_shard_budget(4096)
            .with_queue_capacity(64),
    );
    let mut handles = Vec::new();
    let mut expected = Vec::new();
    for n in [1usize, 100, 4096, 4097, 30_000, 100_000] {
        for (kind, list) in [
            ("random", gen::random_list(n, n as u64)),
            ("blocked", gen::list_with_layout(n, gen::Layout::Blocked(64), n as u64)),
        ] {
            expected.push((n, kind, listkit::serial::rank(&list)));
            handles.push(
                engine.submit(JobSpec::RankSharded { list: Arc::new(list) }).expect("submit"),
            );
        }
    }
    for (h, (n, kind, want)) in handles.into_iter().zip(&expected) {
        let report = h.wait().expect("completes");
        assert_eq!(report.output.ranks().expect("ranks"), want.as_slice(), "{kind} n={n}");
        if *n > 4096 {
            assert!(report.shards >= 2, "{kind} n={n} should shard, got {}", report.shards);
        } else {
            assert_eq!(report.shards, 0, "{kind} n={n} fits the budget");
        }
    }
    let stats = engine.shutdown();
    assert!(stats.sharded_jobs >= 6, "sharded jobs counted: {}", stats.sharded_jobs);
    assert!(stats.shards_ranked > stats.sharded_jobs, "multiple shards per sharded job");
    let rendered = format!("{stats}");
    assert!(rendered.contains("sharded:"), "stats surface the sharded line:\n{rendered}");
}

#[test]
fn rank_sharded_pinned_algorithm_forces_monolithic() {
    let engine = Engine::new(
        EngineConfig::default().with_workers(1).with_inner_threads(2).with_shard_budget(1000),
    );
    let list = Arc::new(gen::random_list(50_000, 21));
    let opts = JobOptions { seed: 0x1994, algorithm: Some(Algorithm::ReidMiller) };
    let h = engine.submit_with(JobSpec::RankSharded { list: Arc::clone(&list) }, opts).unwrap();
    let report = h.wait().expect("completes");
    assert_eq!(report.shards, 0, "pinning selects the monolithic backend");
    assert_eq!(report.algorithm, Algorithm::ReidMiller);
    assert_eq!(
        report.output.ranks().expect("ranks"),
        HostRunner::new(Algorithm::ReidMiller).with_seed(0x1994).rank(&list).as_slice()
    );
    engine.shutdown();
}

#[test]
fn sharded_scenario_passes_agree() {
    use engine::workload::{run_sharded_scenario, HugeListConfig};
    let engine = Engine::new(
        EngineConfig::default().with_workers(1).with_inner_threads(2).with_shard_budget(8192),
    );
    let cfg = HugeListConfig { n: 60_000, jobs: 2, block: 256, seed: 7 };
    let cmp = run_sharded_scenario(&engine, &cfg); // panics on divergence
    assert_eq!(cmp.sharded.jobs, 2);
    assert_eq!(cmp.monolithic.jobs, 2);
    assert_eq!(cmp.sharded.checksum, cmp.monolithic.checksum);
    let stats = engine.shutdown();
    assert_eq!(stats.sharded_jobs, 2);
    assert!(stats.stitch_ns > 0, "stitch time is measured");
}

#[test]
fn cancellation_before_execution() {
    let engine = Engine::new(EngineConfig::default().with_workers(1));
    // Worker is busy with this one...
    let big = Arc::new(gen::random_list(2_000_000, 5));
    let blocker = engine.submit(JobSpec::Rank { list: big }).unwrap();
    // ...so this one is still queued and can be cancelled.
    let victim_list = Arc::new(gen::random_list(10_000, 6));
    let victim = engine.submit(JobSpec::Rank { list: victim_list }).unwrap();
    assert!(victim.cancel(), "queued job should cancel");
    assert_eq!(victim.wait().map(|r| r.id).unwrap_err(), JobError::Cancelled);
    blocker.wait().expect("big job completes");
    let stats = engine.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn backpressure_rejects_when_full() {
    let engine = Engine::new(EngineConfig::default().with_workers(1).with_queue_capacity(2));
    let big = Arc::new(gen::random_list(3_000_000, 9));
    let small = Arc::new(gen::random_list(100, 10));
    // Occupy the worker, then fill the queue.
    let mut handles = vec![engine.submit(JobSpec::Rank { list: big }).unwrap()];
    let mut rejected = 0;
    for _ in 0..64 {
        match engine.try_submit(JobSpec::Rank { list: Arc::clone(&small) }) {
            Ok(h) => handles.push(h),
            Err(engine::SubmitError::Full) => rejected += 1,
            Err(e) => panic!("unexpected submit error {e:?}"),
        }
    }
    assert!(rejected > 0, "a 2-deep queue must reject some of 64 instant submits");
    for h in handles {
        h.wait().expect("accepted jobs complete");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.rejected_full, rejected);
}

#[test]
fn engine_beats_naive_sequential_baseline() {
    use engine::workload::{run_baseline, run_engine, Workload, WorkloadConfig};
    // Modest workload so the test stays quick; sizes still span three
    // decades so both planner regimes engage.
    let cfg = WorkloadConfig {
        min_exp: 2,
        max_exp: 5,
        elems_per_decade: 300_000,
        max_jobs_per_decade: 500,
        scan_frac: 0.25,
        seed: 0xC90,
        lists_per_decade: 2,
    };
    let workload = Workload::generate(&cfg);
    let engine = Engine::with_defaults();
    // Warm pass (planner measurements, pool population), then the
    // measured pass — mirroring a server's steady state.
    run_engine(&engine, &workload);
    let eng = run_engine(&engine, &workload);
    let base = run_baseline(&workload);
    assert_eq!(eng.checksum, base.checksum, "executors diverged");
    assert!(
        eng.elements_per_sec() >= base.elements_per_sec() * 0.9,
        "engine ({:.1} Melem/s) should at least match the naive baseline ({:.1} Melem/s)",
        eng.elements_per_sec() / 1e6,
        base.elements_per_sec() / 1e6
    );
    engine.shutdown();
}
