//! Integration tests: engine results must be byte-identical to direct
//! `HostRunner` results, under concurrency, batching, cancellation and
//! backpressure; the adaptive planner must demonstrably dispatch
//! different algorithms by job size; and the typed request API must
//! route **every** `listkit::ops` operator through the engine.

use engine::{Engine, EngineConfig, JobError, JobOptions, OpKind, Request};
use listkit::gen;
use listkit::ops::{AddOp, Affine, AffineOp, MaxOp, MinOp, XorOp};
use listkit::segmented;
use listrank::{Algorithm, HostRunner};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn shared_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig::default().with_workers(2).with_queue_capacity(256))
    })
}

fn values_for(n: usize) -> Arc<Vec<i64>> {
    Arc::new((0..n as i64).map(|i| (i % 31) - 15).collect())
}

#[test]
fn engine_matches_host_runner_all_algorithms_and_sizes() {
    let engine = shared_engine();
    // Sizes straddle the serial cutoff, the batching cutoff and the
    // parallel regime.
    for &n in &[1usize, 2, 3, 100, 2048, 2049, 10_000, 60_000] {
        let list = Arc::new(gen::random_list(n, n as u64 ^ 0xBEEF));
        let values = values_for(n);
        for alg in Algorithm::ALL {
            let seed = 0x1994 ^ n as u64;
            let opts = JobOptions { seed, algorithm: Some(alg), ..Default::default() };
            let rank_handle =
                engine.submit_with(Request::rank(Arc::clone(&list)), opts).expect("submit rank");
            let scan_handle = engine
                .submit_with(Request::scan(Arc::clone(&list), Arc::clone(&values), AddOp), opts)
                .expect("submit scan");

            let runner = HostRunner::new(alg).with_seed(seed);
            let rank_report = rank_handle.wait().expect("rank completes");
            assert_eq!(rank_report.algorithm, alg);
            assert_eq!(rank_report.op, OpKind::Rank);
            assert_eq!(rank_report.output, runner.rank(&list), "rank parity: {alg} n={n}");
            let scan_report = scan_handle.wait().expect("scan completes");
            assert_eq!(scan_report.op, OpKind::Add);
            assert_eq!(
                scan_report.output,
                runner.scan(&list, &values, &AddOp),
                "scan parity: {alg} n={n}"
            );
        }
    }
}

#[test]
fn every_operator_routes_through_the_typed_api() {
    // The tentpole claim: every `listkit::ops` operator — plus a
    // segmented and a non-commutative case — is submittable through the
    // typed request API and agrees with the serial oracle, with no
    // output enum to unwrap anywhere.
    let engine = shared_engine();
    for &n in &[1usize, 2, 257, 5000] {
        let list = Arc::new(gen::random_list(n, 0xA11 ^ n as u64));
        let i64s = values_for(n);
        let u64s: Arc<Vec<u64>> = Arc::new((0..n as u64).map(|i| i.wrapping_mul(0x9e37)).collect());
        let affs: Arc<Vec<Affine>> =
            Arc::new((0..n as i64).map(|i| Affine::new((i % 5) - 2, i % 9)).collect());
        let starts: Arc<Vec<bool>> = Arc::new((0..n).map(|v| v % 13 == 0).collect());

        let add =
            engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&i64s), AddOp)).unwrap();
        let max =
            engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&i64s), MaxOp)).unwrap();
        let min =
            engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&i64s), MinOp)).unwrap();
        let xor =
            engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&u64s), XorOp)).unwrap();
        let aff =
            engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&affs), AffineOp)).unwrap();
        let seg = engine
            .submit(Request::segmented_scan(
                Arc::clone(&list),
                Arc::clone(&i64s),
                Arc::clone(&starts),
                AddOp,
            ))
            .unwrap();

        assert_eq!(add.wait().unwrap().output, listkit::serial::scan(&list, &i64s, &AddOp));
        assert_eq!(max.wait().unwrap().output, listkit::serial::scan(&list, &i64s, &MaxOp));
        assert_eq!(min.wait().unwrap().output, listkit::serial::scan(&list, &i64s, &MinOp));
        assert_eq!(xor.wait().unwrap().output, listkit::serial::scan(&list, &u64s, &XorOp));
        let aff_report = aff.wait().unwrap();
        assert_eq!(aff_report.op, OpKind::Affine);
        assert_eq!(aff_report.output, listkit::serial::scan(&list, &affs, &AffineOp));
        let seg_report = seg.wait().unwrap();
        assert_eq!(seg_report.op, OpKind::Segmented);
        assert_eq!(
            seg_report.output,
            segmented::serial_segmented_scan(&list, &i64s, &starts, &AddOp)
        );
    }
    // The op dimension shows up in the stats surface.
    let stats = shared_engine().stats();
    for kind in
        [OpKind::Add, OpKind::Max, OpKind::Min, OpKind::Xor, OpKind::Affine, OpKind::Segmented]
    {
        assert!(
            stats.per_op.iter().any(|row| row.op == kind && row.completed > 0),
            "{kind} missing from per-op stats"
        );
        assert!(
            stats
                .dispatch_by_op
                .iter()
                .any(|(op, counts)| *op == kind && counts.iter().sum::<u64>() > 0),
            "{kind} missing from the op dispatch matrix"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_rank_matches_host_for_random_jobs(
        n in 1usize..30_000,
        seed in any::<u64>(),
        alg_ix in 0usize..5,
    ) {
        let engine = shared_engine();
        let alg = Algorithm::ALL[alg_ix];
        let list = Arc::new(gen::random_list(n, seed));
        let opts = JobOptions { seed, algorithm: Some(alg), ..Default::default() };
        let handle = engine
            .submit_with(Request::rank(Arc::clone(&list)), opts)
            .expect("submit");
        let report = handle.wait().expect("completes");
        let want = HostRunner::new(alg).with_seed(seed).rank(&list);
        prop_assert_eq!(report.output, want);
    }

    #[test]
    fn engine_adaptive_rank_is_correct(n in 1usize..50_000, seed in any::<u64>()) {
        // No pinning: whatever the planner picks must still be right.
        let engine = shared_engine();
        let list = Arc::new(gen::random_list(n, seed));
        let handle = engine.submit(Request::rank(Arc::clone(&list))).expect("submit");
        let report = handle.wait().expect("completes");
        prop_assert_eq!(report.output, listkit::serial::rank(&list));
    }
}

#[test]
fn sixty_four_jobs_in_flight_all_correct() {
    let engine = Engine::new(EngineConfig::default().with_workers(4).with_queue_capacity(256));
    // Occupy all four workers with sizeable jobs so the small jobs
    // below deterministically pile up in the queue.
    let big = Arc::new(gen::random_list(2_000_000, 99));
    let blockers: Vec<_> = (0..4)
        .map(|_| engine.submit(Request::rank(Arc::clone(&big))).expect("submit blocker"))
        .collect();

    // Pre-generate a handful of lists; 96 jobs reference them.
    let lists: Vec<Arc<listkit::LinkedList>> =
        (0..8).map(|i| Arc::new(gen::random_list(1000 * (i + 1), i as u64))).collect();
    let expected: Vec<Vec<u64>> = lists.iter().map(|l| listkit::serial::rank(l)).collect();

    let handles: Vec<_> = (0..96)
        .map(|i| engine.submit(Request::rank(Arc::clone(&lists[i % lists.len()]))).expect("submit"))
        .collect();
    // All 96 were submitted before any wait: ≥64 genuinely in flight.
    for (i, h) in handles.into_iter().enumerate() {
        let report = h.wait().expect("job completes");
        assert_eq!(report.output, expected[i % lists.len()], "job {i}");
    }
    for b in blockers {
        b.wait().expect("blocker completes");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 100);
    assert!(
        stats.peak_queue_depth >= 64,
        "peak queue depth {} should show ≥64 jobs in flight",
        stats.peak_queue_depth
    );
}

#[test]
fn planner_dispatches_different_algorithms_by_size() {
    // Planner believes jobs get 4 threads (the dispatch decision under
    // test is independent of the machine the test runs on).
    let engine = Engine::new(
        EngineConfig::default().with_workers(2).with_inner_threads(4).with_queue_capacity(256),
    );
    let small = Arc::new(gen::random_list(200, 7));
    let large = Arc::new(gen::random_list(1_500_000, 8));
    let mut handles = Vec::new();
    for _ in 0..12 {
        handles.push(engine.submit(Request::rank(Arc::clone(&small))).unwrap());
    }
    for _ in 0..4 {
        handles.push(engine.submit(Request::rank(Arc::clone(&large))).unwrap());
    }
    let mut small_algs = Vec::new();
    let mut large_algs = Vec::new();
    for h in handles {
        let report = h.wait().expect("completes");
        if report.n == 200 {
            small_algs.push(report.algorithm);
        } else {
            large_algs.push(report.algorithm);
        }
    }
    assert!(
        small_algs.iter().all(|&a| a == Algorithm::Serial),
        "small jobs must go serial, got {small_algs:?}"
    );
    assert!(
        large_algs.iter().all(|&a| a == Algorithm::ReidMiller),
        "large jobs must go to Reid-Miller, got {large_algs:?}"
    );

    // The dispatch split is visible in the stats surface.
    let stats = engine.shutdown();
    let serial_ix = Algorithm::ALL.iter().position(|&a| a == Algorithm::Serial).unwrap();
    let rm_ix = Algorithm::ALL.iter().position(|&a| a == Algorithm::ReidMiller).unwrap();
    assert!(stats.dispatch[serial_ix] >= 12);
    assert!(stats.dispatch[rm_ix] >= 4);
    let rendered = format!("{stats}");
    assert!(rendered.contains("serial") && rendered.contains("reid-miller"));
    // Small and large jobs land in different bucket rows.
    let small_bucket =
        stats.dispatch_by_bucket.iter().find(|(hi, _)| *hi == 256).expect("bucket for n=200");
    assert!(small_bucket.1[serial_ix] >= 12);
    assert_eq!(small_bucket.1[rm_ix], 0);
    let large_bucket = stats
        .dispatch_by_bucket
        .iter()
        .find(|(hi, _)| *hi == (1 << 21))
        .expect("bucket for n=1.5M");
    assert!(large_bucket.1[rm_ix] >= 4);
    // Everything above was a ranking: the op matrix says exactly that.
    let (op, counts) = stats.dispatch_by_op.first().expect("one op row");
    assert_eq!(*op, OpKind::Rank);
    assert_eq!(counts.iter().sum::<u64>(), 16);
}

#[test]
fn small_jobs_get_batched() {
    let engine = Engine::new(
        EngineConfig::default().with_workers(1).with_queue_capacity(512).with_batching(4096, 64),
    );
    // Occupy the single worker so the small jobs pile up behind it.
    let big = Arc::new(gen::random_list(2_000_000, 3));
    let blocker = engine.submit(Request::rank(Arc::clone(&big))).unwrap();
    let small = Arc::new(gen::random_list(500, 4));
    let handles: Vec<_> =
        (0..100).map(|_| engine.submit(Request::rank(Arc::clone(&small))).unwrap()).collect();
    blocker.wait().expect("big job done");
    let mut batched_jobs = 0;
    for h in handles {
        if h.wait().expect("small job done").batched {
            batched_jobs += 1;
        }
    }
    let stats = engine.shutdown();
    assert!(stats.batches > 0, "expected at least one batch");
    assert!(batched_jobs > 0, "some jobs should report batched execution");
    assert!(stats.batched_jobs >= batched_jobs);
    // The scratch pool served repeat acquisitions.
    assert!(stats.pool.hits > 0, "pool should be re-serving scratches");
}

#[test]
fn malformed_specs_rejected_at_every_submit_path() {
    // Submit-time validation is centralized in the spec's `validate`
    // (exhaustive over request kinds): both the blocking and
    // non-blocking paths must reject a malformed request, and malformed
    // *successor arrays* cannot even reach a request — `LinkedList`
    // construction rejects them, so every request is structurally
    // sound.
    let engine = shared_engine();
    let list = Arc::new(gen::random_list(100, 1));
    let values = Arc::new(vec![0i64; 99]); // one short
    assert_eq!(
        engine.submit(Request::scan(Arc::clone(&list), Arc::clone(&values), AddOp)).map(|h| h.id()),
        Err(engine::SubmitError::Invalid)
    );
    assert_eq!(
        engine.try_submit(Request::scan(Arc::clone(&list), values, AddOp)).map(|h| h.id()),
        Err(engine::SubmitError::Invalid)
    );
    // Segmented requests validate both arrays (and survive a
    // values/starts length mismatch without panicking in the builder).
    let good_vals = Arc::new(vec![1i64; 100]);
    let short_starts = Arc::new(vec![false; 40]);
    assert_eq!(
        engine
            .submit(Request::segmented_scan(
                Arc::clone(&list),
                Arc::clone(&good_vals),
                short_starts,
                AddOp
            ))
            .map(|h| h.id()),
        Err(engine::SubmitError::Invalid)
    );
    // Malformed successor arrays: a rho-shaped cycle, an out-of-range
    // link, and a two-tailed structure are all stopped at list
    // construction — no request can carry them.
    assert!(listkit::LinkedList::new(vec![1, 2, 0], 0).is_err(), "cycle");
    assert!(listkit::LinkedList::new(vec![1, 9, 2], 0).is_err(), "out of range");
    assert!(listkit::LinkedList::new(vec![0, 1], 0).is_err(), "two tails");
    let h = engine
        .submit(Request::scan(list, Arc::new(vec![0i64; 100]), AddOp))
        .expect("valid request accepted");
    h.wait().expect("valid job completes");
}

#[test]
fn rank_sharded_matches_serial_across_topologies() {
    // A tiny budget forces real sharding; parity must hold on the
    // sharding-friendly (blocked) and sharding-adversarial (random)
    // topologies, across sizes straddling the budget.
    let engine = Engine::new(
        EngineConfig::default()
            .with_workers(2)
            .with_inner_threads(2)
            .with_shard_budget(4096)
            .with_queue_capacity(64),
    );
    let mut handles = Vec::new();
    let mut expected = Vec::new();
    for n in [1usize, 100, 4096, 4097, 30_000, 100_000] {
        for (kind, list) in [
            ("random", gen::random_list(n, n as u64)),
            ("blocked", gen::list_with_layout(n, gen::Layout::Blocked(64), n as u64)),
        ] {
            expected.push((n, kind, listkit::serial::rank(&list)));
            handles.push(engine.submit(Request::rank_sharded(Arc::new(list))).expect("submit"));
        }
    }
    for (h, (n, kind, want)) in handles.into_iter().zip(&expected) {
        let report = h.wait().expect("completes");
        assert_eq!(&report.output, want, "{kind} n={n}");
        if *n > 4096 {
            assert!(report.shards >= 2, "{kind} n={n} should shard, got {}", report.shards);
        } else {
            assert_eq!(report.shards, 0, "{kind} n={n} fits the budget");
        }
    }
    let stats = engine.shutdown();
    assert!(stats.sharded_jobs >= 6, "sharded jobs counted: {}", stats.sharded_jobs);
    assert!(stats.shards_ranked > stats.sharded_jobs, "multiple shards per sharded job");
    let rendered = format!("{stats}");
    assert!(rendered.contains("sharded:"), "stats surface the sharded line:\n{rendered}");
}

#[test]
fn scan_sharded_stitches_generic_ops() {
    // The sharded path is not rank-only: generic (and non-commutative)
    // scans route through the stitched shard-parallel path and agree
    // with the serial oracle.
    let engine = Engine::new(
        EngineConfig::default().with_workers(1).with_inner_threads(2).with_shard_budget(2048),
    );
    let n = 40_000;
    let list = Arc::new(gen::list_with_layout(n, gen::Layout::Blocked(64), 77));
    let i64s = values_for(n);
    let affs: Arc<Vec<Affine>> =
        Arc::new((0..n as i64).map(|i| Affine::new((i % 3) - 1, i % 5)).collect());
    let max =
        engine.submit(Request::scan_sharded(Arc::clone(&list), Arc::clone(&i64s), MaxOp)).unwrap();
    let aff = engine
        .submit(Request::scan_sharded(Arc::clone(&list), Arc::clone(&affs), AffineOp))
        .unwrap();
    let starts: Arc<Vec<bool>> = Arc::new((0..n).map(|v| v % 97 == 0).collect());
    let seg = engine
        .submit(Request::segmented_scan_sharded(
            Arc::clone(&list),
            Arc::clone(&i64s),
            Arc::clone(&starts),
            AddOp,
        ))
        .unwrap();
    let max_report = max.wait().expect("completes");
    assert!(max_report.shards >= 2, "budget 2048 must shard n=40k");
    assert_eq!(max_report.output, listkit::serial::scan(&list, &i64s, &MaxOp));
    let aff_report = aff.wait().expect("completes");
    assert!(aff_report.shards >= 2);
    assert_eq!(aff_report.output, listkit::serial::scan(&list, &affs, &AffineOp));
    let seg_report = seg.wait().expect("completes");
    assert!(seg_report.shards >= 2, "segmented requests shard too");
    assert_eq!(seg_report.output, segmented::serial_segmented_scan(&list, &i64s, &starts, &AddOp));
    engine.shutdown();
}

#[test]
fn rank_sharded_pinned_algorithm_forces_monolithic() {
    let engine = Engine::new(
        EngineConfig::default().with_workers(1).with_inner_threads(2).with_shard_budget(1000),
    );
    let list = Arc::new(gen::random_list(50_000, 21));
    let opts =
        JobOptions { seed: 0x1994, algorithm: Some(Algorithm::ReidMiller), ..Default::default() };
    let h = engine.submit_with(Request::rank_sharded(Arc::clone(&list)), opts).unwrap();
    let report = h.wait().expect("completes");
    assert_eq!(report.shards, 0, "pinning selects the monolithic backend");
    assert_eq!(report.algorithm, Algorithm::ReidMiller);
    assert_eq!(report.output, HostRunner::new(Algorithm::ReidMiller).with_seed(0x1994).rank(&list));
    engine.shutdown();
}

#[test]
fn sharded_scenario_passes_agree() {
    use engine::workload::{run_sharded_scenario, HugeListConfig};
    let engine = Engine::new(
        EngineConfig::default().with_workers(1).with_inner_threads(2).with_shard_budget(8192),
    );
    let cfg = HugeListConfig { n: 60_000, jobs: 2, block: 256, seed: 7 };
    let cmp = run_sharded_scenario(&engine, &cfg); // panics on divergence
    assert_eq!(cmp.sharded.jobs, 2);
    assert_eq!(cmp.monolithic.jobs, 2);
    assert_eq!(cmp.sharded.checksum, cmp.monolithic.checksum);
    let stats = engine.shutdown();
    assert_eq!(stats.sharded_jobs, 2);
    assert!(stats.stitch_ns > 0, "stitch time is measured");
}

#[test]
fn cancellation_before_execution() {
    let engine = Engine::new(EngineConfig::default().with_workers(1));
    // Worker is busy with this one...
    let big = Arc::new(gen::random_list(2_000_000, 5));
    let blocker = engine.submit(Request::rank(big)).unwrap();
    // ...so this one is still queued and can be cancelled.
    let victim_list = Arc::new(gen::random_list(10_000, 6));
    let victim = engine.submit(Request::rank(victim_list)).unwrap();
    assert!(victim.cancel(), "queued job should cancel");
    assert_eq!(victim.wait().map(|r| r.id).unwrap_err(), JobError::Cancelled);
    blocker.wait().expect("big job completes");
    let stats = engine.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn backpressure_rejects_when_full() {
    let engine = Engine::new(EngineConfig::default().with_workers(1).with_queue_capacity(2));
    let big = Arc::new(gen::random_list(3_000_000, 9));
    let small = Arc::new(gen::random_list(100, 10));
    // Occupy the worker, then fill the queue.
    let mut handles = vec![engine.submit(Request::rank(big)).unwrap()];
    let mut rejected = 0;
    for _ in 0..64 {
        match engine.try_submit(Request::rank(Arc::clone(&small))) {
            Ok(h) => handles.push(h),
            Err(engine::SubmitError::Full) => rejected += 1,
            Err(e) => panic!("unexpected submit error {e:?}"),
        }
    }
    assert!(rejected > 0, "a 2-deep queue must reject some of 64 instant submits");
    for h in handles {
        h.wait().expect("accepted jobs complete");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.rejected_full, rejected);
}

#[test]
fn engine_beats_naive_sequential_baseline() {
    use engine::workload::{run_baseline, run_engine, OpSelect, Workload, WorkloadConfig};
    // Modest workload so the test stays quick; sizes still span three
    // decades so both planner regimes engage, and the op rotation is on.
    let cfg = WorkloadConfig {
        min_exp: 2,
        max_exp: 5,
        elems_per_decade: 300_000,
        max_jobs_per_decade: 500,
        scan_frac: 0.25,
        op: OpSelect::Mixed,
        seed: 0xC90,
        lists_per_decade: 2,
    };
    let workload = Workload::generate(&cfg);
    let engine = Engine::with_defaults();
    // Warm pass (planner measurements, pool population), then the
    // measured pass — mirroring a server's steady state.
    run_engine(&engine, &workload);
    let eng = run_engine(&engine, &workload);
    let base = run_baseline(&workload);
    assert_eq!(eng.checksum, base.checksum, "executors diverged");
    assert!(
        eng.elements_per_sec() >= base.elements_per_sec() * 0.9,
        "engine ({:.1} Melem/s) should at least match the naive baseline ({:.1} Melem/s)",
        eng.elements_per_sec() / 1e6,
        base.elements_per_sec() / 1e6
    );
    engine.shutdown();
}

#[test]
fn lane_stats_and_pinned_lanes_flow_through_the_engine() {
    // A pinned lane count must (a) produce byte-identical results to a
    // direct HostRunner call with the same pinning, and (b) surface
    // lane occupancy in the stats once a Reid-Miller job has run.
    let engine = Engine::new(
        EngineConfig::default().with_workers(1).with_inner_threads(2).with_lanes(Some(4)),
    );
    let list = Arc::new(gen::random_list(200_000, 0xAB));
    let opts =
        JobOptions { seed: 0x1994, algorithm: Some(Algorithm::ReidMiller), ..Default::default() };
    let report = engine
        .submit_with(Request::rank(Arc::clone(&list)), opts)
        .expect("submit")
        .wait()
        .expect("job completes");
    assert_eq!(
        report.output,
        HostRunner::new(Algorithm::ReidMiller).with_seed(0x1994).with_lanes(4).rank(&list),
        "engine with pinned lanes must match the equally-pinned runner byte for byte"
    );
    let stats = engine.shutdown();
    assert!(stats.lane_steps >= 2 * 200_000, "phases 1+3 both walk: {}", stats.lane_steps);
    let occ = stats.lane_occupancy();
    assert!(occ > 0.0 && occ <= 1.0, "occupancy in (0, 1]: {occ}");
}
