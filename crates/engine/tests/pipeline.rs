//! Pipelining differential tests (protocol v6): one connection, many
//! requests in flight, replies in completion order — every reply
//! byte-identical to what a serial v5-style conversation produces for
//! the same request, matched back by `request_id`.
//!
//! Also pinned here: the adversarial client that stops reading replies
//! mid-pipeline (write backpressure must stall that one connection,
//! never the reactor), duplicate / zero request ids rejected as typed
//! malformed, v6 flags refused on v5 handshakes, and both per-tenant
//! quotas (in-flight jobs, resident store bytes) answering typed
//! `quota_exceeded`.
#![cfg(unix)]

use engine::client::Client;
use engine::protocol::{self, ErrorCode, Frame, FrameKind, ReqFlags, WireOp, MAX_FRAME_DEFAULT};
use engine::server::{ServeConfig, Server, ServerControl, ServerStats};
use engine::{Engine, EngineConfig};
use listkit::gen;
use listkit::LinkedList;
use std::collections::HashMap;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

/// Deterministic per-test randomness (splitmix64 finalizer).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn sock_path(tag: &str) -> PathBuf {
    let seq = SOCK_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rankd-pipe-{}-{tag}-{seq}.sock", std::process::id()))
}

struct Running {
    control: ServerControl,
    path: PathBuf,
    join: std::thread::JoinHandle<std::io::Result<ServerStats>>,
}

impl Running {
    fn stop(self) -> ServerStats {
        self.control.request_shutdown();
        self.join.join().expect("server thread").expect("server run")
    }
}

fn start(
    tag: &str,
    engine_cfg: EngineConfig,
    tune: impl FnOnce(ServeConfig) -> ServeConfig,
) -> Running {
    let path = sock_path(tag);
    let cfg = tune(ServeConfig::new(&path).with_drain_grace(Duration::from_secs(10)));
    let engine = Arc::new(Engine::new(engine_cfg));
    let server = Server::bind(engine, cfg).expect("bind test socket");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());
    Running { control, path, join }
}

fn small_engine() -> EngineConfig {
    EngineConfig::default().with_workers(2).with_inner_threads(1)
}

/// Raw v6 handshake on a bare stream.
fn handshake(stream: &mut UnixStream) {
    protocol::write_frame(stream, FrameKind::Hello as u8, &protocol::hello_body()).expect("hello");
    let f = read_one(stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::HelloOk), "handshake reply");
}

fn read_one(stream: &mut UnixStream) -> Frame {
    protocol::read_frame(stream, MAX_FRAME_DEFAULT).expect("read frame").expect("frame present")
}

/// The OUTPUT body's dispatch/timing metadata prefix: `algorithm: u8`,
/// `shards: u32`, `queued_ns: u64`, `exec_ns: u64`, `trace_id: u64`.
/// Timings and trace ids legitimately vary run to run (and the planner
/// may pick a different algorithm as its history warms), so byte
/// parity is asserted on everything *after* this prefix — the count
/// and the output values, which must be exact.
const OUTPUT_META_LEN: usize = 29;

fn payload(body: &[u8]) -> &[u8] {
    assert!(body.len() > OUTPUT_META_LEN, "OUTPUT body too short: {}", body.len());
    &body[OUTPUT_META_LEN..]
}

/// One logical request of the differential mix, encodable with any
/// flag set (serial for the oracle, request-id-tagged for the
/// pipelined connection).
enum Op {
    Rank(LinkedList),
    Scan(LinkedList, Vec<i64>),
    RankH,
    ScanH(Vec<i64>),
    SegScanH(Vec<bool>, Vec<i64>),
}

impl Op {
    fn encode(&self, handle: u64, flags: ReqFlags) -> (u8, Vec<u8>) {
        match self {
            Op::Rank(list) => (FrameKind::Rank as u8, protocol::rank_body_flags(list, flags)),
            Op::Scan(list, vals) => {
                (FrameKind::Scan as u8, protocol::scan_body_flags(list, vals, WireOp::Add, flags))
            }
            Op::RankH => (FrameKind::RankH as u8, protocol::rank_h_body_flags(handle, flags)),
            Op::ScanH(vals) => (
                FrameKind::ScanH as u8,
                protocol::scan_h_body_flags(handle, vals, WireOp::Add, flags),
            ),
            Op::SegScanH(starts, vals) => (
                FrameKind::SegScanH as u8,
                protocol::segscan_h_body_flags(handle, starts, vals, WireOp::Add, flags),
            ),
        }
    }
}

/// PUT `list` on a raw stream, returning the connection-scoped handle.
fn put(stream: &mut UnixStream, list: &LinkedList) -> u64 {
    protocol::write_frame(stream, FrameKind::Put as u8, &protocol::put_body(list)).expect("PUT");
    let f = read_one(stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::PutOk), "PUT reply");
    protocol::decode_put_ok(&f.body).expect("PUT_OK decodes").0
}

/// The tentpole differential: N randomly interleaved rank / scan /
/// handle requests with shuffled request ids, all written before any
/// reply is read. Every pipelined reply must be byte-identical (minus
/// the variable OUTPUT metadata prefix) to the serial oracle's reply
/// for the same request, matched by id, and every id must come back
/// exactly once.
#[test]
fn pipelined_mix_is_byte_identical_to_serial_oracle() {
    const N: usize = 32;
    let server = start("diff", small_engine(), |c| c);

    let resident = gen::random_list(257, 0xD1FF);
    let mut rng_state = 0x1994_2026u64;
    let mut rng = move || {
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(rng_state)
    };

    // The request mix, shared by both connections.
    let ops: Vec<Op> = (0..N)
        .map(|_| {
            let n = 40 + (rng() % 400) as usize;
            let vals = |n: usize, r: &mut dyn FnMut() -> u64| -> Vec<i64> {
                (0..n).map(|_| (r() % 97) as i64 - 48).collect()
            };
            match rng() % 5 {
                0 => Op::Rank(gen::random_list(n, rng())),
                1 => {
                    let list = gen::random_list(n, rng());
                    let v = vals(n, &mut rng);
                    Op::Scan(list, v)
                }
                2 => Op::RankH,
                3 => Op::ScanH(vals(resident.len(), &mut rng)),
                _ => {
                    let starts: Vec<bool> = (0..resident.len()).map(|_| rng() % 4 == 0).collect();
                    Op::SegScanH(starts, vals(resident.len(), &mut rng))
                }
            }
        })
        .collect();

    // Serial oracle: same daemon, separate connection, no request ids.
    let mut oracle = UnixStream::connect(&server.path).expect("oracle connect");
    handshake(&mut oracle);
    let oracle_handle = put(&mut oracle, &resident);
    let mut expected: Vec<Vec<u8>> = Vec::with_capacity(N);
    for op in &ops {
        let (kind, body) = op.encode(oracle_handle, ReqFlags::default());
        protocol::write_frame(&mut oracle, kind, &body).expect("oracle request");
        let f = read_one(&mut oracle);
        assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::Output), "oracle reply");
        expected.push(f.body);
    }

    // Pipelined connection: shuffled ids, everything written up front.
    let mut piped = UnixStream::connect(&server.path).expect("pipelined connect");
    handshake(&mut piped);
    let piped_handle = put(&mut piped, &resident);
    let mut ids: Vec<u64> = (1..=N as u64).collect();
    for i in (1..ids.len()).rev() {
        ids.swap(i, (rng() % (i as u64 + 1)) as usize);
    }
    let mut wire = Vec::new();
    for (idx, op) in ops.iter().enumerate() {
        let flags = ReqFlags::default().with_request_id(ids[idx]);
        let (kind, body) = op.encode(piped_handle, flags);
        protocol::write_frame(&mut wire, kind, &body).expect("encode to Vec");
    }
    piped.write_all(&wire).expect("write pipeline burst");

    // Replies arrive in completion order; collect and match by id.
    let mut got: HashMap<u64, Vec<u8>> = HashMap::new();
    for _ in 0..N {
        let f = read_one(&mut piped);
        assert_eq!(
            FrameKind::from_u8(f.kind),
            Some(FrameKind::OutputP),
            "pipelined replies are OUTPUT_P"
        );
        let (id, inner) = protocol::decode_pipelined(&f.body).expect("pipelined body");
        assert!(got.insert(id, inner.to_vec()).is_none(), "id {id} answered twice");
    }
    for (idx, want) in expected.iter().enumerate() {
        let id = ids[idx];
        let reply = got.get(&id).unwrap_or_else(|| panic!("id {id} never answered"));
        assert_eq!(
            payload(reply),
            payload(want),
            "request {idx} (id {id}): pipelined payload diverged from the serial oracle"
        );
    }

    // The scheduler gauges saw the pipeline.
    let mut client = Client::connect(&server.path).expect("stats connect");
    let v2 = client.stats_v2().expect("stats_v2");
    assert_eq!(v2.sched.pipelined_requests, N as u64);
    assert!(v2.sched.max_pipeline_depth >= 1, "depth gauge never moved");
    assert_eq!(v2.pipeline_depth.count(), N as u64, "one depth sample per pipelined admission");

    drop(oracle);
    drop(piped);
    drop(client);
    server.stop();
}

/// Adversarial pipelining: the client writes a burst whose replies
/// exceed the server's write high-watermark, then refuses to read
/// until every request is submitted. The reactor must park that
/// connection (stop reading it, keep flushing opportunistically) while
/// other clients stay fully served — and once the adversary finally
/// drains, every reply must be present exactly once.
#[test]
fn non_reading_pipeline_client_stalls_only_itself() {
    const BURST: u64 = 48;
    const N: usize = 4000; // 32 KB per reply → ~1.5 MB total, past the 1 MiB watermark
    let server = start("noread", small_engine(), |c| c);

    let list = gen::random_list(N, 0xBAD);
    let mut adversary = UnixStream::connect(&server.path).expect("connect");
    handshake(&mut adversary);
    let mut wire = Vec::new();
    for id in 1..=BURST {
        let flags = ReqFlags::default().with_request_id(id);
        protocol::write_frame(
            &mut wire,
            FrameKind::Rank as u8,
            &protocol::rank_body_flags(&list, flags),
        )
        .expect("encode");
    }
    adversary.write_all(&wire).expect("write burst");

    // Let the replies pile up against the unread socket.
    std::thread::sleep(Duration::from_millis(300));

    // The reactor is still alive for everyone else.
    let mut bystander = Client::connect(&server.path).expect("bystander connect");
    let small = gen::random_list(64, 7);
    let served = bystander.rank(&small).expect("bystander served mid-stall");
    assert_eq!(served.output.len(), 64);

    // Now drain: all BURST replies, each id exactly once, each intact.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..BURST {
        let f = read_one(&mut adversary);
        assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::OutputP));
        let (id, inner) = protocol::decode_pipelined(&f.body).expect("pipelined body");
        assert!(seen.insert(id), "id {id} answered twice");
        let (_, ranks) = protocol::decode_output::<u64>(inner).expect("OUTPUT decodes");
        assert_eq!(ranks.len(), N);
    }
    assert_eq!(seen.len(), BURST as usize);

    drop(adversary);
    drop(bystander);
    server.stop();
}

/// Reusing a request id while it is still in flight is typed
/// malformed (answered on the pipelined path so the client can match
/// it), and the original request still completes.
#[test]
fn duplicate_request_id_is_typed_malformed() {
    let server = start("dup", small_engine(), |c| c);
    let mut stream = UnixStream::connect(&server.path).expect("connect");
    handshake(&mut stream);

    // Big rank (stays in flight) + tiny rank reusing its id, one write.
    let big = gen::random_list(200_000, 1);
    let tiny = gen::random_list(8, 2);
    let flags = ReqFlags::default().with_request_id(7);
    let mut wire = Vec::new();
    protocol::write_frame(
        &mut wire,
        FrameKind::Rank as u8,
        &protocol::rank_body_flags(&big, flags),
    )
    .expect("encode");
    protocol::write_frame(
        &mut wire,
        FrameKind::Rank as u8,
        &protocol::rank_body_flags(&tiny, flags),
    )
    .expect("encode");
    stream.write_all(&wire).expect("write");

    // First reply: the duplicate, refused without waiting for the job.
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::ErrorP), "dup refusal is pipelined");
    let (id, inner) = protocol::decode_pipelined(&f.body).expect("pipelined body");
    assert_eq!(id, 7);
    let (_, code, msg) = protocol::decode_error(inner).expect("error decodes");
    assert_eq!(code, Some(ErrorCode::Malformed));
    assert!(msg.contains("already in flight"), "unexpected message: {msg}");

    // Second reply: the original request, unharmed.
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::OutputP));
    let (id, inner) = protocol::decode_pipelined(&f.body).expect("pipelined body");
    assert_eq!(id, 7);
    let (_, ranks) = protocol::decode_output::<u64>(inner).expect("OUTPUT decodes");
    assert_eq!(ranks.len(), 200_000);

    drop(stream);
    server.stop();
}

/// Request id 0 is reserved: the frame is rejected as typed malformed
/// at decode (no pipelined attribution possible) and the connection
/// survives.
#[test]
fn request_id_zero_is_reserved() {
    let server = start("zero", small_engine(), |c| c);
    let mut stream = UnixStream::connect(&server.path).expect("connect");
    handshake(&mut stream);

    let list = gen::random_list(16, 3);
    let mut body = protocol::rank_body_flags(&list, ReqFlags::default().with_request_id(1));
    body[1..9].fill(0); // stamp the id field (right after the flags byte) to 0
    protocol::write_frame(&mut stream, FrameKind::Rank as u8, &body).expect("write");
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::Error), "plain error: no id to echo");
    let (_, code, msg) = protocol::decode_error(&f.body).expect("error decodes");
    assert_eq!(code, Some(ErrorCode::Malformed));
    assert!(msg.contains("reserved"), "unexpected message: {msg}");

    // Connection survives; a well-formed request still works.
    protocol::write_frame(&mut stream, FrameKind::Rank as u8, &protocol::rank_body(&list, false))
        .expect("write");
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::Output));

    drop(stream);
    server.stop();
}

/// The v6 flag bits are version-gated: a connection that negotiated a
/// v5 HELLO gets typed malformed for FLAG_BATCH and FLAG_REQUEST_ID,
/// and keeps serving v5 traffic afterwards.
#[test]
fn v6_flags_require_a_v6_handshake() {
    let server = start("gate", small_engine(), |c| c);
    let mut stream = UnixStream::connect(&server.path).expect("connect");

    // Handshake as a v5 client.
    let mut hello = Vec::new();
    hello.extend_from_slice(&protocol::MAGIC.to_le_bytes());
    hello.extend_from_slice(&5u16.to_le_bytes());
    protocol::write_frame(&mut stream, FrameKind::Hello as u8, &hello).expect("hello v5");
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::HelloOk));

    let list = gen::random_list(16, 4);
    for (flags, what) in [
        (ReqFlags::default().with_batch(), "FLAG_BATCH"),
        (ReqFlags::default().with_request_id(3), "FLAG_REQUEST_ID"),
    ] {
        let body = protocol::rank_body_flags(&list, flags);
        protocol::write_frame(&mut stream, FrameKind::Rank as u8, &body).expect("write");
        let f = read_one(&mut stream);
        assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::Error), "{what} must be refused");
        let (_, code, msg) = protocol::decode_error(&f.body).expect("error decodes");
        assert_eq!(code, Some(ErrorCode::Malformed), "{what}: {msg}");
        assert!(msg.contains(what), "unexpected message: {msg}");
        assert!(msg.contains("v6 handshake"), "unexpected message: {msg}");
    }

    // Still a working v5 connection (deadline flag is v5-legal).
    protocol::write_frame(
        &mut stream,
        FrameKind::Rank as u8,
        &protocol::rank_body_deadline(&list, false, Some(60_000)),
    )
    .expect("write");
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::Output));

    drop(stream);
    server.stop();
}

/// The per-tenant in-flight quota refuses the excess request with a
/// typed, id-attributed `quota_exceeded` while the admitted request
/// completes normally — and a freed slot admits again.
#[test]
fn inflight_quota_answers_typed_quota_exceeded() {
    let server = start("quota", small_engine(), |c| c.with_inflight_quota(1));
    let mut stream = UnixStream::connect(&server.path).expect("connect");
    handshake(&mut stream);

    let big = gen::random_list(300_000, 5);
    let tiny = gen::random_list(8, 6);
    let mut wire = Vec::new();
    protocol::write_frame(
        &mut wire,
        FrameKind::Rank as u8,
        &protocol::rank_body_flags(&big, ReqFlags::default().with_request_id(1)),
    )
    .expect("encode");
    protocol::write_frame(
        &mut wire,
        FrameKind::Rank as u8,
        &protocol::rank_body_flags(&tiny, ReqFlags::default().with_request_id(2)),
    )
    .expect("encode");
    stream.write_all(&wire).expect("write");

    // The refusal (id 2) outruns the big job (id 1).
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::ErrorP));
    let (id, inner) = protocol::decode_pipelined(&f.body).expect("pipelined body");
    assert_eq!(id, 2);
    let (_, code, msg) = protocol::decode_error(inner).expect("error decodes");
    assert_eq!(code, Some(ErrorCode::QuotaExceeded), "{msg}");

    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::OutputP));
    let (id, _) = protocol::decode_pipelined(&f.body).expect("pipelined body");
    assert_eq!(id, 1);

    // The slot is free again: a fresh pipelined request is admitted.
    protocol::write_frame(
        &mut stream,
        FrameKind::Rank as u8,
        &protocol::rank_body_flags(&tiny, ReqFlags::default().with_request_id(3)),
    )
    .expect("write");
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::OutputP));

    // Exactly one rejection on the gauge.
    let mut client = Client::connect(&server.path).expect("stats connect");
    let v2 = client.stats_v2().expect("stats_v2");
    assert_eq!(v2.sched.quota_rejected_inflight, 1);

    drop(stream);
    drop(client);
    server.stop();
}

/// The per-tenant store quota refuses a PUT from a connection already
/// at its byte cap — typed `quota_exceeded`, not `overloaded` (the
/// tenant must DROP, not retry) — and DROP frees the budget.
#[test]
fn store_quota_answers_typed_quota_exceeded() {
    let server = start("squota", small_engine(), |c| c.with_store_quota(200));
    let mut stream = UnixStream::connect(&server.path).expect("connect");
    handshake(&mut stream);

    // First PUT (owned 0 < 200): admitted, footprint 4·100 + 96 = 496.
    let list = gen::random_list(100, 8);
    let handle = put(&mut stream, &list);

    // Second PUT (owned 496 ≥ 200): refused.
    protocol::write_frame(&mut stream, FrameKind::Put as u8, &protocol::put_body(&list))
        .expect("PUT");
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::Error));
    let (_, code, msg) = protocol::decode_error(&f.body).expect("error decodes");
    assert_eq!(code, Some(ErrorCode::QuotaExceeded), "{msg}");
    assert!(msg.contains("store quota"), "unexpected message: {msg}");

    // DROP frees the tenant's bytes; the next PUT is admitted.
    protocol::write_frame(&mut stream, FrameKind::Drop as u8, &protocol::drop_body(handle))
        .expect("DROP");
    let f = read_one(&mut stream);
    assert_eq!(FrameKind::from_u8(f.kind), Some(FrameKind::DropOk));
    put(&mut stream, &list);

    let mut client = Client::connect(&server.path).expect("stats connect");
    let v2 = client.stats_v2().expect("stats_v2");
    assert_eq!(v2.sched.quota_rejected_store, 1);

    drop(stream);
    drop(client);
    server.stop();
}

/// The typed client pipelining API over TCP: the daemon's TCP listener
/// shares the reactor and the protocol, so a depth-4 pipeline of ranks
/// matches the Unix-socket serial answers exactly.
#[test]
fn client_pipeline_api_over_tcp_matches_unix_serial() {
    let path = sock_path("tcp");
    let engine = Arc::new(Engine::new(small_engine()));
    let cfg = ServeConfig::new(&path)
        .with_tcp(Some("127.0.0.1:0".to_string()))
        .with_drain_grace(Duration::from_secs(10));
    let server = Server::bind(engine, cfg).expect("bind");
    let addr = server.tcp_local_addr().expect("tcp listener bound");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let lists: Vec<LinkedList> =
        (0..4).map(|i| gen::random_list(500 + i * 131, i as u64)).collect();

    let mut serial = Client::connect(&path).expect("unix connect");
    let want: Vec<Vec<u64>> =
        lists.iter().map(|l| serial.rank(l).expect("serial rank").output).collect();

    let mut tcp = Client::connect_tcp(addr.to_string()).expect("tcp connect");
    for (i, list) in lists.iter().enumerate() {
        tcp.send_rank(list, i as u64 + 1).expect("pipelined send");
    }
    let mut got: HashMap<u64, Vec<u64>> = HashMap::new();
    for _ in 0..lists.len() {
        let (id, res) = tcp.recv_pipelined::<u64>().expect("pipelined recv");
        got.insert(id, res.expect("per-request success").output);
    }
    for (i, want) in want.iter().enumerate() {
        assert_eq!(got.get(&(i as u64 + 1)), Some(want), "list {i} diverged over TCP");
    }

    drop(serial);
    drop(tcp);
    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
}
