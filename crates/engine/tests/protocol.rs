//! Wire-format tests that keep `docs/PROTOCOL.md` honest: the byte
//! strings documented there are replayed, literally, through the real
//! codec (and, on unix, through a live server). If an edit to the
//! protocol changes any documented byte, these tests fail until the
//! document is updated to match.

use engine::protocol::{
    self, ErrorCode, Frame, FrameKind, OutputMeta, WireOp, WireRequest, WireValues, MAGIC,
    MAX_FRAME_DEFAULT, VERSION,
};
use listkit::ops::Affine;
use listkit::LinkedList;
use listrank::Algorithm;

/// The worked example list from PROTOCOL.md: traversal order
/// `1 → 0 → 2`, i.e. `next = [2, 0, 2]` (vertex 2 is the self-loop
/// tail) with head 1. Ranks: `rank[0] = 1`, `rank[1] = 0`,
/// `rank[2] = 2`.
fn example_list() -> LinkedList {
    LinkedList::new(vec![2, 0, 2], 1).expect("example list is valid")
}

/// PROTOCOL.md §"A worked round trip", frame 1: HELLO.
const DOC_HELLO: &[u8] = &[
    0x07, 0x00, 0x00, 0x00, // len = 7
    0x01, // kind = HELLO
    0x52, 0x4E, 0x4B, 0x44, // magic "RNKD"
    0x06, 0x00, // version = 6
];

/// PROTOCOL.md §"A worked round trip", frame 2: HELLO_OK.
const DOC_HELLO_OK: &[u8] = &[
    0x07, 0x00, 0x00, 0x00, // len = 7
    0x81, // kind = HELLO_OK
    0x06, 0x00, // version = 6
    0x00, 0x00, 0x00, 0x10, // max_frame = 0x10000000 (256 MiB)
];

/// PROTOCOL.md §"A worked round trip", frame 3: RANK.
const DOC_RANK: &[u8] = &[
    0x16, 0x00, 0x00, 0x00, // len = 22
    0x02, // kind = RANK
    0x00, // flags (bit 0 clear: monolithic dispatch)
    0x01, 0x00, 0x00, 0x00, // head = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x02, 0x00, 0x00, 0x00, // next[0] = 2
    0x00, 0x00, 0x00, 0x00, // next[1] = 0
    0x02, 0x00, 0x00, 0x00, // next[2] = 2 (self-loop tail)
];

/// PROTOCOL.md §"The same RANK with a queue deadline (v5)": the RANK
/// frame with `FLAG_DEADLINE` set and a 1500 ms budget between the
/// flags byte and the list.
const DOC_RANK_DEADLINE: &[u8] = &[
    0x1E, 0x00, 0x00, 0x00, // len = 30
    0x02, // kind = RANK
    0x02, // flags (bit 1: deadline present)
    0xDC, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // deadline_ms = 1500
    0x01, 0x00, 0x00, 0x00, // head = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x02, 0x00, 0x00, 0x00, // next[0] = 2
    0x00, 0x00, 0x00, 0x00, // next[1] = 0
    0x02, 0x00, 0x00, 0x00, // next[2] = 2 (self-loop tail)
];

/// PROTOCOL.md §"A worked round trip", frame 4: OUTPUT (with the
/// document's placeholder timings — queued 1000 ns, exec 2000 ns — and
/// placeholder trace id 1).
const DOC_OUTPUT: &[u8] = &[
    0x3A, 0x00, 0x00, 0x00, // len = 58
    0x82, // kind = OUTPUT
    0x00, // algorithm = 0 (serial)
    0x00, 0x00, 0x00, 0x00, // shards = 0 (monolithic)
    0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // queued_ns = 1000
    0xD0, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // exec_ns = 2000
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // trace_id = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[0] = 1
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[1] = 0
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[2] = 2
];

/// PROTOCOL.md §"STATS_V2 / STATS_V2_OK", the request frame (no body).
const DOC_STATS_V2: &[u8] = &[
    0x01, 0x00, 0x00, 0x00, // len = 1
    0x07, // kind = STATS_V2
];

/// The worked STATS_V2_OK example from PROTOCOL.md: an exec-phase
/// histogram holding two samples (1000 ns and 2000 ns) plus the gauge
/// block. See [`example_stats_v2`] for the semantic content.
const DOC_STATS_V2_OK: &[u8] = &[
    0xF5, 0x01, 0x00, 0x00, // len = 501
    0x87, // kind = STATS_V2_OK
    0x06, 0x00, // block_count = 6
    // block 1: the exec-phase latency histogram
    0x01, // tag = 1 (phase histogram)
    0x03, // id = 3 (phase: exec)
    0x31, 0x00, 0x00, 0x00, // block len = 49
    0x04, // sub_bits = 4
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // count = 2
    0xB8, 0x0B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // sum = 3000
    0xD0, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // max = 2000
    0x02, 0x00, 0x00, 0x00, // nonzero buckets = 2
    0x6F, 0x00, // bucket index = 111 (values 992..1024)
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // bucket count = 1
    0x7F, 0x00, // bucket index = 127 (values 1984..2048)
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // bucket count = 1
    // block 2: the gauge block
    0x04, // tag = 4 (gauges)
    0x00, // id = 0
    0x69, 0x00, 0x00, 0x00, // block len = 105
    0x0D, // gauge count = 13
    0x00, 0xF2, 0x05, 0x2A, 0x01, 0x00, 0x00, 0x00, // uptime_ns = 5e9
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // submitted = 2
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // completed = 2
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // cancelled = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // failed = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rejected_full = 0
    0x06, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // elements = 6
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // queue_depth = 0
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // peak_queue_depth = 1
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // lane_steps = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // lane_slots = 0
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // connections_active = 1
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // connections_total = 1
    // block 3: the dataset-store gauge block (protocol v3)
    0x06, // tag = 6 (store gauges)
    0x00, // id = 0
    0x61, 0x00, 0x00, 0x00, // block len = 97
    0x0C, // store gauge count = 12
    0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00, 0x00, // budget_bytes = 1 GiB
    0x6C, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // resident_bytes = 108
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // resident_count = 1
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // puts = 1
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // drops = 0
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // lookups = 2
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // hits = 2
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // misses = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // evictions = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // put_rejected = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // artifacts_built = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // artifacts_reused = 0
    // block 4: the mutation-plane gauge block (protocol v4)
    0x07, // tag = 7 (mutation gauges)
    0x00, // id = 0
    0x31, 0x00, 0x00, 0x00, // block len = 49
    0x06, // mutation gauge count = 6
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // mutations = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // edits = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // incremental = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // full = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // dirty_shards_patched = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // artifacts_patched = 0
    // block 5: the fault/resilience gauge block (protocol v5)
    0x08, // tag = 8 (fault gauges)
    0x00, // id = 0
    0x51, 0x00, 0x00, 0x00, // block len = 81
    0x0A, // fault gauge count = 10
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // injected_io_errors = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // injected_delays = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // injected_short_writes = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // injected_exec_panics = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // injected_store_errors = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // panics_recovered = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // workers_respawned = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // deadline_expired = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // shed_queue = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // shed_store = 0
    // block 6: the scheduler/QoS gauge block (protocol v6)
    0x09, // tag = 9 (scheduler gauges)
    0x00, // id = 0
    0x51, 0x00, 0x00, 0x00, // block len = 81
    0x0A, // sched gauge count = 10
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // inflight_interactive = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // inflight_batch = 0
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // dispatched_interactive = 2
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // dispatched_batch = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // aged_dispatches = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // quota_rejected_inflight = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // quota_rejected_store = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // reply_reorders = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // pipelined_requests = 0
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // max_pipeline_depth = 0
];

/// The semantic content of [`DOC_STATS_V2_OK`].
fn example_stats_v2() -> protocol::WireStatsV2 {
    let mut v2 = protocol::WireStatsV2::default();
    // 1000 ns lands in bucket 111, 2000 ns in bucket 127 (4 sub-bucket
    // bits: group = floor(log2 v) - 3, sub = top-4-bits-after-leading).
    v2.phase[engine::Phase::Exec.index()].record(1000);
    v2.phase[engine::Phase::Exec.index()].record(2000);
    v2.gauges = protocol::StatsGauges {
        uptime_ns: 5_000_000_000,
        submitted: 2,
        completed: 2,
        cancelled: 0,
        failed: 0,
        rejected_full: 0,
        elements: 6,
        queue_depth: 0,
        peak_queue_depth: 1,
        lane_steps: 0,
        lane_slots: 0,
        connections_active: 1,
        connections_total: 1,
    };
    // One resident 3-vertex dataset (4*3 + 96 = 108 bytes) that served
    // two handle lookups, both hits.
    v2.store = protocol::StoreGauges {
        budget_bytes: 1 << 30,
        resident_bytes: 108,
        resident_count: 1,
        puts: 1,
        drops: 0,
        lookups: 2,
        hits: 2,
        misses: 0,
        evictions: 0,
        put_rejected: 0,
        artifacts_built: 0,
        artifacts_reused: 0,
    };
    // Both ranks dispatched in the (default) interactive class; the
    // conversation was serial, so the pipelining gauges stay zero.
    v2.sched.dispatched_interactive = 2;
    v2
}

#[test]
fn documented_stats_v2_bytes_match_the_codec() {
    // The request frame.
    assert_eq!(framed(FrameKind::StatsV2, &[]), DOC_STATS_V2);
    let frame = parse(DOC_STATS_V2);
    assert!(matches!(protocol::decode_request(&frame).expect("decodes"), WireRequest::StatsV2));

    // The reply: encoder produces exactly the documented bytes, and
    // replaying the documented bytes reproduces the example snapshot.
    let v2 = example_stats_v2();
    let got = framed(FrameKind::StatsV2Ok, &protocol::stats_v2_body(&v2));
    if got != DOC_STATS_V2_OK {
        eprintln!("ACTUAL STATS_V2_OK bytes:");
        for chunk in got.chunks(8) {
            eprintln!(
                "    {},",
                chunk.iter().map(|b| format!("{b:#04X}")).collect::<Vec<_>>().join(", ")
            );
        }
    }
    assert_eq!(got, DOC_STATS_V2_OK);
    let frame = parse(DOC_STATS_V2_OK);
    assert_eq!(frame.kind, FrameKind::StatsV2Ok as u8);
    let decoded = protocol::decode_stats_v2(&frame.body).expect("decodes");
    assert_eq!(decoded, v2);
    let exec = &decoded.phase[engine::Phase::Exec.index()];
    assert_eq!(exec.count(), 2);
    assert_eq!(exec.sum(), 3000);
    assert_eq!(exec.max(), 2000);
}

/// Frame a body the way the wire does.
fn framed(kind: FrameKind, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    protocol::write_frame(&mut out, kind as u8, body).expect("write to Vec");
    out
}

/// Read exactly one frame out of a documented byte string.
fn parse(mut bytes: &[u8]) -> Frame {
    let frame = protocol::read_frame(&mut bytes, MAX_FRAME_DEFAULT)
        .expect("documented bytes frame correctly")
        .expect("documented bytes are non-empty");
    assert!(bytes.is_empty(), "documented example has trailing bytes");
    frame
}

#[test]
fn documented_hello_bytes_match_the_codec() {
    assert_eq!(framed(FrameKind::Hello, &protocol::hello_body()), DOC_HELLO);
    let frame = parse(DOC_HELLO);
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::Hello { magic, version } => {
            assert_eq!(magic, MAGIC);
            assert_eq!(version, VERSION);
        }
        other => panic!("want Hello, got {other:?}"),
    }
}

#[test]
fn documented_hello_ok_bytes_match_the_codec() {
    assert_eq!(
        framed(FrameKind::HelloOk, &protocol::hello_ok_body(VERSION, MAX_FRAME_DEFAULT)),
        DOC_HELLO_OK
    );
    let frame = parse(DOC_HELLO_OK);
    let (version, max_frame) = protocol::decode_hello_ok(&frame.body).expect("decodes");
    assert_eq!(version, VERSION);
    assert_eq!(max_frame, MAX_FRAME_DEFAULT);
}

#[test]
fn documented_rank_bytes_decode_to_the_example_list() {
    // Encoder side: the documented bytes are exactly what the client
    // produces for the example list.
    assert_eq!(framed(FrameKind::Rank, &protocol::rank_body(&example_list(), false)), DOC_RANK);
    // Decoder side: replaying the documented bytes yields the list.
    let frame = parse(DOC_RANK);
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::Rank { list, flags } => {
            assert_eq!(flags, protocol::ReqFlags::default());
            assert_eq!(list.head(), 1);
            assert_eq!(list.links(), &[2, 0, 2]);
        }
        other => panic!("want Rank, got {other:?}"),
    }
}

#[test]
fn documented_deadline_rank_bytes_round_trip() {
    assert_eq!(
        framed(FrameKind::Rank, &protocol::rank_body_deadline(&example_list(), false, Some(1500))),
        DOC_RANK_DEADLINE
    );
    let frame = parse(DOC_RANK_DEADLINE);
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::Rank { list, flags } => {
            assert!(!flags.sharded);
            assert_eq!(flags.deadline_ms, Some(1500));
            assert_eq!(flags.request_id, None);
            assert_eq!(list.head(), 1);
            assert_eq!(list.links(), &[2, 0, 2]);
        }
        other => panic!("want Rank, got {other:?}"),
    }
}

#[test]
fn documented_output_bytes_round_trip() {
    let meta = OutputMeta {
        algorithm: Algorithm::Serial,
        shards: 0,
        queued_ns: 1000,
        exec_ns: 2000,
        trace_id: 1,
    };
    assert_eq!(framed(FrameKind::Output, &protocol::output_body(&meta, &[1u64, 0, 2])), DOC_OUTPUT);
    let frame = parse(DOC_OUTPUT);
    let (got_meta, ranks) = protocol::decode_output::<u64>(&frame.body).expect("decodes");
    assert_eq!(got_meta, meta);
    assert_eq!(ranks, vec![1, 0, 2]);
}

// ------------------------------------------------------------------
// The documented handle conversation (protocol v3)
// ------------------------------------------------------------------

/// PROTOCOL.md §"A worked handle round trip", frame 1: PUT — the same
/// example list as [`DOC_RANK`], shipped once.
const DOC_PUT: &[u8] = &[
    0x16, 0x00, 0x00, 0x00, // len = 22
    0x08, // kind = PUT
    0x00, // flags (reserved, must be zero)
    0x01, 0x00, 0x00, 0x00, // head = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x02, 0x00, 0x00, 0x00, // next[0] = 2
    0x00, 0x00, 0x00, 0x00, // next[1] = 0
    0x02, 0x00, 0x00, 0x00, // next[2] = 2 (self-loop tail)
];

/// PROTOCOL.md §"A worked handle round trip", frame 2: PUT_OK. A fresh
/// daemon issues handle 1 and charges the 3-vertex list's estimated
/// footprint, 4·3 + 96 = 108 bytes, against `--store-budget`.
const DOC_PUT_OK: &[u8] = &[
    0x11, 0x00, 0x00, 0x00, // len = 17
    0x88, // kind = PUT_OK
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // handle = 1
    0x6C, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // bytes = 108
];

/// PROTOCOL.md §"A worked handle round trip", frame 3: RANK_H. The
/// reply is byte-identical to [`DOC_OUTPUT`] — handle routing changes
/// how the dataset reaches the engine, never what comes back.
const DOC_RANK_H: &[u8] = &[
    0x0A, 0x00, 0x00, 0x00, // len = 10
    0x09, // kind = RANK_H
    0x00, // flags (bit 0 clear: monolithic dispatch)
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // handle = 1
];

/// PROTOCOL.md §"A worked handle round trip", frame 5: SCAN_H. An
/// exclusive add-scan over the resident dataset with per-vertex
/// values `v = [5, 7, 9]`; traversal order `1 → 0 → 2` yields
/// `out = [7, 0, 12]`.
const DOC_SCAN_H: &[u8] = &[
    0x27, 0x00, 0x00, 0x00, // len = 39
    0x0A, // kind = SCAN_H
    0x00, // flags
    0x01, // op = 1 (add, i64)
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // handle = 1
    0x03, 0x00, 0x00, 0x00, // count = 3
    0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // v[0] = 5
    0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // v[1] = 7
    0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // v[2] = 9
];

/// PROTOCOL.md §"A worked handle round trip", frame 7: SEGSCAN_H.
/// Same values with a segment restart at vertex 2 (bitmap packs
/// LSB-first: 0b100 = 0x04). The restart zeroes the traversal tail,
/// so `out = [7, 0, 0]`.
const DOC_SEGSCAN_H: &[u8] = &[
    0x28, 0x00, 0x00, 0x00, // len = 40
    0x0B, // kind = SEGSCAN_H
    0x00, // flags
    0x01, // op = 1 (add, i64)
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // handle = 1
    0x03, 0x00, 0x00, 0x00, // count = 3
    0x04, // starts bitmap = 0b100 (vertex 2 restarts a segment)
    0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // v[0] = 5
    0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // v[1] = 7
    0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // v[2] = 9
];

/// PROTOCOL.md §"A worked handle round trip", frame 9: DROP.
const DOC_DROP: &[u8] = &[
    0x09, 0x00, 0x00, 0x00, // len = 9
    0x0C, // kind = DROP
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // handle = 1
];

/// PROTOCOL.md §"A worked handle round trip", frame 10: DROP_OK (no
/// body).
const DOC_DROP_OK: &[u8] = &[
    0x01, 0x00, 0x00, 0x00, // len = 1
    0x89, // kind = DROP_OK
];

/// PROTOCOL.md §"A worked handle round trip", frame 12: the typed
/// ERROR a RANK_H on the dropped handle earns. The connection
/// survives it.
const DOC_ERROR_STALE: &[u8] = &[
    0x21, 0x00, 0x00, 0x00, // len = 33
    0xEE, // kind = ERROR
    0x0C, 0x00, // code = 12 (stale_handle)
    // message = "handle 1: stale dataset handle"
    0x68, 0x61, 0x6E, 0x64, 0x6C, 0x65, 0x20, 0x31, 0x3A, 0x20, 0x73, 0x74, 0x61, 0x6C, 0x65, 0x20,
    0x64, 0x61, 0x74, 0x61, 0x73, 0x65, 0x74, 0x20, 0x68, 0x61, 0x6E, 0x64, 0x6C, 0x65,
];

#[test]
fn documented_put_bytes_round_trip() {
    assert_eq!(framed(FrameKind::Put, &protocol::put_body(&example_list())), DOC_PUT);
    let frame = parse(DOC_PUT);
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::Put { list } => {
            assert_eq!(list.head(), 1);
            assert_eq!(list.links(), &[2, 0, 2]);
        }
        other => panic!("want Put, got {other:?}"),
    }

    // PUT_OK: the documented reply charges exactly the store's
    // footprint estimate for the example list.
    assert_eq!(engine::store::list_footprint(&example_list()), 108);
    assert_eq!(framed(FrameKind::PutOk, &protocol::put_ok_body(1, 108)), DOC_PUT_OK);
    let frame = parse(DOC_PUT_OK);
    assert_eq!(frame.kind, FrameKind::PutOk as u8);
    assert_eq!(protocol::decode_put_ok(&frame.body).expect("decodes"), (1, 108));
}

#[test]
fn documented_handle_query_bytes_round_trip() {
    assert_eq!(framed(FrameKind::RankH, &protocol::rank_h_body(1, false)), DOC_RANK_H);
    let frame = parse(DOC_RANK_H);
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::RankH { handle, flags } => {
            assert_eq!(handle, 1);
            assert_eq!(flags, protocol::ReqFlags::default());
        }
        other => panic!("want RankH, got {other:?}"),
    }

    assert_eq!(
        framed(FrameKind::ScanH, &protocol::scan_h_body(1, &[5i64, 7, 9], WireOp::Add, false)),
        DOC_SCAN_H
    );
    let frame = parse(DOC_SCAN_H);
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::ScanH { op, handle, values, flags } => {
            assert_eq!(flags, protocol::ReqFlags::default());
            assert_eq!(op, WireOp::Add);
            assert_eq!(handle, 1);
            assert_eq!(values, WireValues::I64(vec![5, 7, 9]));
        }
        other => panic!("want ScanH, got {other:?}"),
    }

    assert_eq!(
        framed(
            FrameKind::SegScanH,
            &protocol::segscan_h_body(1, &[false, false, true], &[5i64, 7, 9], WireOp::Add, false)
        ),
        DOC_SEGSCAN_H
    );
    let frame = parse(DOC_SEGSCAN_H);
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::SegScanH { op, handle, starts, values, flags } => {
            assert_eq!(flags, protocol::ReqFlags::default());
            assert_eq!(op, WireOp::Add);
            assert_eq!(handle, 1);
            assert_eq!(starts, vec![false, false, true]);
            assert_eq!(values, WireValues::I64(vec![5, 7, 9]));
        }
        other => panic!("want SegScanH, got {other:?}"),
    }
}

#[test]
fn documented_drop_bytes_round_trip() {
    assert_eq!(framed(FrameKind::Drop, &protocol::drop_body(1)), DOC_DROP);
    let frame = parse(DOC_DROP);
    assert!(matches!(
        protocol::decode_request(&frame).expect("decodes"),
        WireRequest::Drop { handle: 1 }
    ));

    assert_eq!(framed(FrameKind::DropOk, &[]), DOC_DROP_OK);
    let frame = parse(DOC_DROP_OK);
    assert_eq!(frame.kind, FrameKind::DropOk as u8);
    assert!(frame.body.is_empty());

    // The stale-handle ERROR: documented bytes match the codec's
    // encoding of the server's message format.
    assert_eq!(
        framed(
            FrameKind::Error,
            &protocol::error_body(ErrorCode::StaleHandle, "handle 1: stale dataset handle")
        ),
        DOC_ERROR_STALE
    );
    let frame = parse(DOC_ERROR_STALE);
    let (raw, code, message) = protocol::decode_error(&frame.body).expect("decodes");
    assert_eq!(raw, ErrorCode::StaleHandle as u16);
    assert_eq!(code, Some(ErrorCode::StaleHandle));
    assert_eq!(message, "handle 1: stale dataset handle");
}

/// The full documented conversation against a live daemon: write the
/// PROTOCOL.md byte strings to the socket verbatim, compare the replies
/// byte-for-byte (masking only the two timing fields the document
/// marks as variable).
#[cfg(unix)]
#[test]
fn documented_round_trip_against_a_live_server() {
    use std::io::{Read, Write};
    use std::sync::Arc;

    let path = std::env::temp_dir().join(format!("rankd-protodoc-{}.sock", std::process::id()));
    let engine = Arc::new(engine::Engine::new(
        engine::EngineConfig::default().with_workers(1).with_inner_threads(1),
    ));
    let server = engine::server::Server::bind(engine, engine::server::ServeConfig::new(&path))
        .expect("bind");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let mut stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    stream.write_all(DOC_HELLO).expect("send documented HELLO");
    let mut hello_ok = vec![0u8; DOC_HELLO_OK.len()];
    stream.read_exact(&mut hello_ok).expect("read HELLO_OK");
    assert_eq!(hello_ok, DOC_HELLO_OK);

    stream.write_all(DOC_RANK).expect("send documented RANK");
    let mut output = vec![0u8; DOC_OUTPUT.len()];
    stream.read_exact(&mut output).expect("read OUTPUT");
    // Mask queued_ns (offset 10..18), exec_ns (18..26), and trace_id
    // (26..34): the document shows placeholder values for these fields.
    let (meta, _) = protocol::decode_output::<u64>(&output[5..]).expect("live OUTPUT decodes");
    assert_ne!(meta.trace_id, 0, "server assigns a nonzero trace id");
    let mut masked = output.clone();
    masked[10..34].copy_from_slice(&DOC_OUTPUT[10..34]);
    assert_eq!(masked, DOC_OUTPUT, "live reply matches the documented bytes");

    // STATS_V2 over the same connection: one rank has completed, so the
    // per-op and per-phase histograms must be populated and
    // sum-consistent with the OUTPUT frame's own timings. The worker
    // publishes counters just *after* fulfilling the job handle, so
    // the snapshot can trail the OUTPUT reply by a beat — poll until
    // the completion is visible.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let v2 = loop {
        stream.write_all(DOC_STATS_V2).expect("send documented STATS_V2");
        let mut reply = &stream;
        let frame = protocol::read_frame(&mut reply, MAX_FRAME_DEFAULT)
            .expect("read STATS_V2_OK")
            .expect("reply present");
        assert_eq!(frame.kind, FrameKind::StatsV2Ok as u8);
        let v2 = protocol::decode_stats_v2(&frame.body).expect("decodes");
        if v2.gauges.completed == 1 && v2.phase[engine::Phase::ReplyWrite.index()].count() == 1 {
            break v2;
        }
        assert!(std::time::Instant::now() < deadline, "completion never became visible: {v2:?}");
        std::thread::yield_now();
    };
    assert_eq!(v2.gauges.completed, 1);
    assert_eq!(v2.per_op[engine::OpKind::Rank.index()].count(), 1);
    assert_eq!(v2.per_op[engine::OpKind::Rank.index()].sum(), meta.exec_ns);
    assert_eq!(v2.phase[engine::Phase::Exec.index()].sum(), meta.exec_ns);
    assert_eq!(v2.phase[engine::Phase::QueueWait.index()].sum(), meta.queued_ns);
    assert_eq!(v2.phase[engine::Phase::Decode.index()].count(), 1);
    assert_eq!(v2.phase[engine::Phase::ReplyWrite.index()].count(), 1);

    drop(stream);
    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
}

/// The documented *handle* conversation against a live daemon
/// (protocol v3): PUT → RANK_H → SCAN_H → SEGSCAN_H → DROP → a stale
/// RANK_H, every request written as the PROTOCOL.md bytes verbatim and
/// every reply compared byte-for-byte (masking only OUTPUT timing
/// fields). A fresh daemon issues handle 1 deterministically, which is
/// what makes the documented PUT_OK exactly reproducible.
#[cfg(unix)]
#[test]
fn documented_handle_conversation_against_a_live_server() {
    use std::io::{Read, Write};
    use std::sync::Arc;

    let path = std::env::temp_dir().join(format!("rankd-protodoc-h-{}.sock", std::process::id()));
    let engine = Arc::new(engine::Engine::new(
        engine::EngineConfig::default().with_workers(1).with_inner_threads(1),
    ));
    let server = engine::server::Server::bind(engine, engine::server::ServeConfig::new(&path))
        .expect("bind");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let mut stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    let reply_exact = |stream: &mut std::os::unix::net::UnixStream, want: &[u8], what: &str| {
        let mut got = vec![0u8; want.len()];
        stream.read_exact(&mut got).unwrap_or_else(|e| panic!("read {what}: {e}"));
        assert_eq!(got, want, "{what} bytes match the document");
    };

    stream.write_all(DOC_HELLO).expect("send documented HELLO");
    reply_exact(&mut stream, DOC_HELLO_OK, "HELLO_OK");

    // PUT: handle and charged bytes are deterministic on a fresh
    // daemon, so the reply matches the document exactly.
    stream.write_all(DOC_PUT).expect("send documented PUT");
    reply_exact(&mut stream, DOC_PUT_OK, "PUT_OK");

    // RANK_H: the reply is byte-identical to the inline RANK reply
    // (masking the timing/trace fields the document marks variable).
    stream.write_all(DOC_RANK_H).expect("send documented RANK_H");
    let mut output = vec![0u8; DOC_OUTPUT.len()];
    stream.read_exact(&mut output).expect("read RANK_H OUTPUT");
    output[10..34].copy_from_slice(&DOC_OUTPUT[10..34]);
    assert_eq!(output, DOC_OUTPUT, "handle-routed OUTPUT matches the inline reply");

    // SCAN_H and SEGSCAN_H: decode the OUTPUT frames and check the
    // documented expected values.
    for (request, want, what) in
        [(DOC_SCAN_H, vec![7i64, 0, 12], "SCAN_H"), (DOC_SEGSCAN_H, vec![7i64, 0, 0], "SEGSCAN_H")]
    {
        stream.write_all(request).unwrap_or_else(|e| panic!("send documented {what}: {e}"));
        let mut reply = &stream;
        let frame = protocol::read_frame(&mut reply, MAX_FRAME_DEFAULT)
            .expect("read OUTPUT")
            .expect("reply present");
        assert_eq!(frame.kind, FrameKind::Output as u8, "{what} reply kind");
        let (_, out) = protocol::decode_output::<i64>(&frame.body).expect("OUTPUT decodes");
        assert_eq!(out, want, "{what} output matches the documented example");
    }

    stream.write_all(DOC_DROP).expect("send documented DROP");
    reply_exact(&mut stream, DOC_DROP_OK, "DROP_OK");

    // The handle is stale from the DROP on; the documented ERROR comes
    // back byte-for-byte and the connection survives it.
    stream.write_all(DOC_RANK_H).expect("send RANK_H on the dropped handle");
    reply_exact(&mut stream, DOC_ERROR_STALE, "stale-handle ERROR");
    stream.write_all(DOC_STATS_V2).expect("send STATS_V2 after the error");
    let mut reply = &stream;
    let frame = protocol::read_frame(&mut reply, MAX_FRAME_DEFAULT)
        .expect("read STATS_V2_OK")
        .expect("connection survives a stale handle");
    let v2 = protocol::decode_stats_v2(&frame.body).expect("decodes");
    assert_eq!(v2.store.puts, 1);
    assert_eq!(v2.store.drops, 1);
    assert_eq!(v2.store.resident_count, 0);
    assert_eq!(v2.store.hits, 3, "RANK_H + SCAN_H + SEGSCAN_H all hit");
    assert_eq!(v2.store.misses, 1, "the post-DROP RANK_H missed");

    drop(stream);
    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
}

// ------------------------------------------------------------------
// The documented mutation conversation (protocol v4)
// ------------------------------------------------------------------

/// PROTOCOL.md §"A worked mutation round trip": MUTATE against handle
/// 1 with a two-edit batch — splice vertex 0 to the front (traversal
/// `1 → 0 → 2` becomes `0 → 1 → 2`), then append one fresh vertex at
/// the tail (`0 → 1 → 2 → 3`).
const DOC_MUTATE: &[u8] = &[
    0x1F, 0x00, 0x00, 0x00, // len = 31
    0x0D, // kind = MUTATE
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // handle = 1
    0x02, 0x00, 0x00, 0x00, // edit count = 2
    0x01, // edit kind = 1 (splice)
    0x00, 0x00, 0x00, 0x00, // first = 0
    0x00, 0x00, 0x00, 0x00, // last = 0
    0xFF, 0xFF, 0xFF, 0xFF, // after = 0xFFFFFFFF (none: run moves to the front)
    0x03, // edit kind = 3 (append)
    0x01, 0x00, 0x00, 0x00, // count = 1
];

/// PROTOCOL.md §"A worked mutation round trip": the MUTATE_OK reply.
/// Both edits applied, the dataset is 4 vertices long, and with no
/// sharded artifacts cached for a 3-vertex list the maintenance sweep
/// is vacuously incremental (mode 0, zero shards, zero artifacts).
/// `exec_ns` is the document's placeholder, 3000.
const DOC_MUTATE_OK: &[u8] = &[
    0x1E, 0x00, 0x00, 0x00, // len = 30
    0x8A, // kind = MUTATE_OK
    0x02, 0x00, 0x00, 0x00, // applied = 2
    0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // len = 4
    0x00, // mode = 0 (fully incremental maintenance)
    0x00, 0x00, 0x00, 0x00, // dirty_shards = 0
    0x00, 0x00, 0x00, 0x00, // artifacts = 0
    0xB8, 0x0B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // exec_ns = 3000
];

#[test]
fn documented_mutate_bytes_round_trip() {
    use listkit::dynamic::Edit;
    let edits = [Edit::Splice { first: 0, last: 0, after: None }, Edit::Append { count: 1 }];
    assert_eq!(framed(FrameKind::Mutate, &protocol::mutate_body(1, &edits)), DOC_MUTATE);
    let frame = parse(DOC_MUTATE);
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::Mutate { handle, edits: got } => {
            assert_eq!(handle, 1);
            assert_eq!(got, edits);
        }
        other => panic!("want Mutate, got {other:?}"),
    }

    let ok = protocol::WireMutateOk {
        applied: 2,
        len: 4,
        incremental: true,
        dirty_shards: 0,
        artifacts: 0,
        exec_ns: 3000,
    };
    assert_eq!(framed(FrameKind::MutateOk, &protocol::mutate_ok_body(&ok)), DOC_MUTATE_OK);
    let frame = parse(DOC_MUTATE_OK);
    assert_eq!(frame.kind, FrameKind::MutateOk as u8);
    assert_eq!(protocol::decode_mutate_ok(&frame.body).expect("decodes"), ok);

    // A mode byte the document does not define must not decode.
    let mut future = protocol::mutate_ok_body(&ok);
    future[12] = 2;
    assert!(protocol::decode_mutate_ok(&future).is_err(), "mode byte 2 is malformed");
}

/// The documented mutation conversation against a live daemon
/// (protocol v4): PUT the example list, replay the documented MUTATE
/// bytes verbatim, compare the MUTATE_OK byte-for-byte (masking only
/// `exec_ns`, which the document marks variable), then RANK_H and
/// check the post-mutation traversal `0 → 1 → 2 → 3`.
#[cfg(unix)]
#[test]
fn documented_mutation_conversation_against_a_live_server() {
    use std::io::{Read, Write};
    use std::sync::Arc;

    let path = std::env::temp_dir().join(format!("rankd-protodoc-m-{}.sock", std::process::id()));
    let engine = Arc::new(engine::Engine::new(
        engine::EngineConfig::default().with_workers(1).with_inner_threads(1),
    ));
    let server = engine::server::Server::bind(engine, engine::server::ServeConfig::new(&path))
        .expect("bind");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let mut stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    let reply_exact = |stream: &mut std::os::unix::net::UnixStream, want: &[u8], what: &str| {
        let mut got = vec![0u8; want.len()];
        stream.read_exact(&mut got).unwrap_or_else(|e| panic!("read {what}: {e}"));
        assert_eq!(got, want, "{what} bytes match the document");
    };

    stream.write_all(DOC_HELLO).expect("send documented HELLO");
    reply_exact(&mut stream, DOC_HELLO_OK, "HELLO_OK");
    stream.write_all(DOC_PUT).expect("send documented PUT");
    reply_exact(&mut stream, DOC_PUT_OK, "PUT_OK");

    stream.write_all(DOC_MUTATE).expect("send documented MUTATE");
    let mut mutate_ok = vec![0u8; DOC_MUTATE_OK.len()];
    stream.read_exact(&mut mutate_ok).expect("read MUTATE_OK");
    // Mask exec_ns (offset 26..34): the document shows a placeholder.
    mutate_ok[26..34].copy_from_slice(&DOC_MUTATE_OK[26..34]);
    assert_eq!(mutate_ok, DOC_MUTATE_OK, "live MUTATE_OK matches the documented bytes");

    // The handle now serves the mutated list: 0 → 1 → 2 → 3.
    stream.write_all(DOC_RANK_H).expect("send RANK_H after the mutation");
    let mut reply = &stream;
    let frame = protocol::read_frame(&mut reply, MAX_FRAME_DEFAULT)
        .expect("read OUTPUT")
        .expect("reply present");
    assert_eq!(frame.kind, FrameKind::Output as u8);
    let (_, ranks) = protocol::decode_output::<u64>(&frame.body).expect("OUTPUT decodes");
    assert_eq!(ranks, vec![0, 1, 2, 3], "ranks reflect the mutation");

    stream.write_all(DOC_DROP).expect("send documented DROP");
    reply_exact(&mut stream, DOC_DROP_OK, "DROP_OK");

    drop(stream);
    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
}

// ------------------------------------------------------------------
// The documented pipelined conversation (protocol v6)
// ------------------------------------------------------------------

/// PROTOCOL.md §"A worked pipelined conversation", frame 1: the
/// example RANK carrying request id 1 (interactive class).
const DOC_RANK_P1: &[u8] = &[
    0x1E, 0x00, 0x00, 0x00, // len = 30
    0x02, // kind = RANK
    0x08, // flags (bit 3: request id present)
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // request_id = 1
    0x01, 0x00, 0x00, 0x00, // head = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x02, 0x00, 0x00, 0x00, // next[0] = 2
    0x00, 0x00, 0x00, 0x00, // next[1] = 0
    0x02, 0x00, 0x00, 0x00, // next[2] = 2 (self-loop tail)
];

/// PROTOCOL.md §"A worked pipelined conversation", frame 2: the same
/// RANK with request id 2 and the batch class declared.
const DOC_RANK_P2_BATCH: &[u8] = &[
    0x1E, 0x00, 0x00, 0x00, // len = 30
    0x02, // kind = RANK
    0x0C, // flags (bit 2: batch class; bit 3: request id present)
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // request_id = 2
    0x01, 0x00, 0x00, 0x00, // head = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x02, 0x00, 0x00, 0x00, // next[0] = 2
    0x00, 0x00, 0x00, 0x00, // next[1] = 0
    0x02, 0x00, 0x00, 0x00, // next[2] = 2 (self-loop tail)
];

/// PROTOCOL.md §"A worked pipelined conversation": the OUTPUT_P reply
/// to request 1 — the echoed id, then the [`DOC_OUTPUT`] body.
const DOC_OUTPUT_P1: &[u8] = &[
    0x42, 0x00, 0x00, 0x00, // len = 66
    0x8B, // kind = OUTPUT_P
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // request_id = 1
    0x00, // algorithm = 0 (serial)
    0x00, 0x00, 0x00, 0x00, // shards = 0 (monolithic)
    0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // queued_ns = 1000
    0xD0, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // exec_ns = 2000
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // trace_id = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[0] = 1
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[1] = 0
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[2] = 2
];

/// The OUTPUT_P reply to request 2: byte-identical but for the echoed
/// id — the batch flag changes scheduling, never the payload.
const DOC_OUTPUT_P2: &[u8] = &[
    0x42, 0x00, 0x00, 0x00, // len = 66
    0x8B, // kind = OUTPUT_P
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // request_id = 2
    0x00, // algorithm = 0 (serial)
    0x00, 0x00, 0x00, 0x00, // shards = 0 (monolithic)
    0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // queued_ns = 1000
    0xD0, 0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // exec_ns = 2000
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // trace_id = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[0] = 1
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[1] = 0
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rank[2] = 2
];

/// PROTOCOL.md §"A worked pipelined conversation": a RANK carrying
/// the reserved request id 0 — [`DOC_RANK_P1`] with the id zeroed.
const DOC_RANK_P0: &[u8] = &[
    0x1E, 0x00, 0x00, 0x00, // len = 30
    0x02, // kind = RANK
    0x08, // flags (bit 3: request id present)
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // request_id = 0 (reserved)
    0x01, 0x00, 0x00, 0x00, // head = 1
    0x03, 0x00, 0x00, 0x00, // n = 3
    0x02, 0x00, 0x00, 0x00, // next[0] = 2
    0x00, 0x00, 0x00, 0x00, // next[1] = 0
    0x02, 0x00, 0x00, 0x00, // next[2] = 2 (self-loop tail)
];

/// The documented reply to [`DOC_RANK_P0`]: a *plain* ERROR (there is
/// no usable id to echo) with the decode-time message, verbatim.
const DOC_ERROR_ID0: &[u8] = &[
    0x1B, 0x00, 0x00, 0x00, // len = 27
    0xEE, // kind = ERROR
    0x03, 0x00, // code = 3 (malformed)
    0x72, 0x65, 0x71, 0x75, 0x65, 0x73, 0x74, 0x5F, // "request_"
    0x69, 0x64, 0x20, 0x30, 0x20, 0x69, 0x73, 0x20, // "id 0 is "
    0x72, 0x65, 0x73, 0x65, 0x72, 0x76, 0x65, 0x64, // "reserved"
];

/// PROTOCOL.md §"A worked pipelined conversation": the ERROR_P a
/// daemon started with `--inflight-quota 1` sends for request 2 while
/// request 1 is still in flight.
const DOC_ERROR_P_QUOTA: &[u8] = &[
    0x2E, 0x00, 0x00, 0x00, // len = 46
    0xEF, // kind = ERROR_P
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // request_id = 2
    0x12, 0x00, // code = 18 (quota_exceeded)
    0x74, 0x65, 0x6E, 0x61, 0x6E, 0x74, 0x20, 0x69, // "tenant i"
    0x6E, 0x2D, 0x66, 0x6C, 0x69, 0x67, 0x68, 0x74, // "n-flight"
    0x20, 0x71, 0x75, 0x6F, 0x74, 0x61, 0x20, 0x28, // " quota ("
    0x31, 0x29, 0x20, 0x65, 0x78, 0x63, 0x65, 0x65, // "1) excee"
    0x64, 0x65, 0x64, // "ded"
];

#[test]
fn documented_pipelined_bytes_round_trip() {
    // Encoder side: the client's flagged rank bodies produce the
    // documented request frames byte-for-byte.
    assert_eq!(
        framed(
            FrameKind::Rank,
            &protocol::rank_body_flags(
                &example_list(),
                protocol::ReqFlags::default().with_request_id(1)
            )
        ),
        DOC_RANK_P1
    );
    assert_eq!(
        framed(
            FrameKind::Rank,
            &protocol::rank_body_flags(
                &example_list(),
                protocol::ReqFlags::default().with_batch().with_request_id(2)
            )
        ),
        DOC_RANK_P2_BATCH
    );

    // Decoder side: flags survive the trip.
    for (bytes, want_id, want_batch) in [(DOC_RANK_P1, 1u64, false), (DOC_RANK_P2_BATCH, 2, true)] {
        let frame = parse(bytes);
        match protocol::decode_request(&frame).expect("decodes") {
            WireRequest::Rank { list, flags } => {
                assert_eq!(flags.request_id, Some(want_id));
                assert_eq!(flags.batch, want_batch);
                assert_eq!(flags.deadline_ms, None);
                assert_eq!(list.links(), &[2, 0, 2]);
            }
            other => panic!("want Rank, got {other:?}"),
        }
    }

    // OUTPUT_P: the server-side composer (id + OUTPUT body) produces
    // the documented reply, and `decode_pipelined` peels the id back
    // off to expose a plain OUTPUT body.
    let meta = OutputMeta {
        algorithm: Algorithm::Serial,
        shards: 0,
        queued_ns: 1000,
        exec_ns: 2000,
        trace_id: 1,
    };
    let inner = protocol::output_body(&meta, &[1u64, 0, 2]);
    assert_eq!(framed(FrameKind::OutputP, &protocol::pipelined_body(1, &inner)), DOC_OUTPUT_P1);
    assert_eq!(framed(FrameKind::OutputP, &protocol::pipelined_body(2, &inner)), DOC_OUTPUT_P2);
    let frame = parse(DOC_OUTPUT_P2);
    let (id, body) = protocol::decode_pipelined(&frame.body).expect("pipelined envelope decodes");
    assert_eq!(id, 2);
    let (got_meta, ranks) = protocol::decode_output::<u64>(body).expect("inner OUTPUT decodes");
    assert_eq!(got_meta, meta);
    assert_eq!(ranks, vec![1, 0, 2]);

    // The id-0 refusal: decoding the documented request fails with the
    // documented message, and the documented ERROR frame is exactly
    // what the error composer emits for it.
    let frame = parse(DOC_RANK_P0);
    let err = protocol::decode_request(&frame).expect_err("id 0 is refused at decode");
    assert_eq!(err.message, "request_id 0 is reserved");
    assert_eq!(
        framed(FrameKind::Error, &protocol::error_body(ErrorCode::Malformed, &err.message)),
        DOC_ERROR_ID0
    );

    // The quota refusal: ERROR_P is an ERROR body behind the echoed id.
    let refusal =
        protocol::error_body(ErrorCode::QuotaExceeded, "tenant in-flight quota (1) exceeded");
    assert_eq!(
        framed(FrameKind::ErrorP, &protocol::pipelined_body(2, &refusal)),
        DOC_ERROR_P_QUOTA
    );
    let frame = parse(DOC_ERROR_P_QUOTA);
    let (id, body) = protocol::decode_pipelined(&frame.body).expect("envelope decodes");
    assert_eq!(id, 2);
    let (raw, code, message) = protocol::decode_error(body).expect("inner ERROR decodes");
    assert_eq!(raw, ErrorCode::QuotaExceeded as u16);
    assert_eq!(code, Some(ErrorCode::QuotaExceeded));
    assert_eq!(message, "tenant in-flight quota (1) exceeded");
}

/// The documented pipelined conversation against a live daemon
/// (protocol v6): both RANK frames written back-to-back before any
/// reply is read, the two OUTPUT_P replies matched *by id* (the
/// document is explicit that completion order is unspecified), the
/// reserved-id refusal compared byte-for-byte, and the scheduler
/// gauges checked against the documented values.
#[cfg(unix)]
#[test]
fn documented_pipelined_conversation_against_a_live_server() {
    use std::io::{Read, Write};
    use std::sync::Arc;

    let path = std::env::temp_dir().join(format!("rankd-protodoc-p-{}.sock", std::process::id()));
    let engine = Arc::new(engine::Engine::new(
        engine::EngineConfig::default().with_workers(1).with_inner_threads(1),
    ));
    let server = engine::server::Server::bind(engine, engine::server::ServeConfig::new(&path))
        .expect("bind");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let mut stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    stream.write_all(DOC_HELLO).expect("send documented HELLO");
    let mut hello_ok = vec![0u8; DOC_HELLO_OK.len()];
    stream.read_exact(&mut hello_ok).expect("read HELLO_OK");
    assert_eq!(hello_ok, DOC_HELLO_OK);

    // Both requests in one write, replies read afterwards — the whole
    // point of pipelining. Match replies by echoed id; mask the same
    // timing/trace fields the inline round trip masks (they sit 8
    // bytes deeper here, behind the echoed id).
    let mut both = DOC_RANK_P1.to_vec();
    both.extend_from_slice(DOC_RANK_P2_BATCH);
    stream.write_all(&both).expect("send both pipelined RANKs");
    let mut seen = [false; 2];
    for _ in 0..2 {
        let mut reply = vec![0u8; DOC_OUTPUT_P1.len()];
        stream.read_exact(&mut reply).expect("read OUTPUT_P");
        assert_eq!(reply[4], FrameKind::OutputP as u8);
        let id = u64::from_le_bytes(reply[5..13].try_into().expect("8 id bytes"));
        let want: &[u8] = match id {
            1 => DOC_OUTPUT_P1,
            2 => DOC_OUTPUT_P2,
            other => panic!("unexpected request id {other}"),
        };
        assert!(!seen[(id - 1) as usize], "request id {id} answered twice");
        seen[(id - 1) as usize] = true;
        reply[18..42].copy_from_slice(&want[18..42]);
        assert_eq!(reply, want, "OUTPUT_P for request {id} matches the documented bytes");
    }
    assert_eq!(seen, [true, true], "both pipelined requests answered");

    // The reserved id: the documented plain ERROR, byte-for-byte, and
    // the connection survives it.
    stream.write_all(DOC_RANK_P0).expect("send the reserved-id RANK");
    let mut error = vec![0u8; DOC_ERROR_ID0.len()];
    stream.read_exact(&mut error).expect("read the id-0 ERROR");
    assert_eq!(error, DOC_ERROR_ID0, "id-0 refusal matches the documented bytes");

    // The scheduler gauges the document quotes for this conversation.
    // Completions are published just after the reply is queued, so
    // poll until both are visible.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let v2 = loop {
        stream.write_all(DOC_STATS_V2).expect("send STATS_V2");
        let mut reply = &stream;
        let frame = protocol::read_frame(&mut reply, MAX_FRAME_DEFAULT)
            .expect("read STATS_V2_OK")
            .expect("connection survives the id-0 error");
        let v2 = protocol::decode_stats_v2(&frame.body).expect("decodes");
        if v2.gauges.completed == 2 {
            break v2;
        }
        assert!(std::time::Instant::now() < deadline, "completions never became visible: {v2:?}");
        std::thread::yield_now();
    };
    assert_eq!(v2.sched.pipelined_requests, 2);
    assert_eq!(v2.sched.dispatched_interactive, 1);
    assert_eq!(v2.sched.dispatched_batch, 1);
    assert_eq!(v2.sched.inflight_interactive, 0);
    assert_eq!(v2.sched.inflight_batch, 0);

    drop(stream);
    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
}

/// The documented quota refusal against a live daemon started with an
/// in-flight quota of 1: the same two pipelined RANKs written in one
/// write admit request 1 and refuse request 2 with the documented
/// ERROR_P — delivered first, because the refusal never waits for a
/// worker — then request 1's OUTPUT_P arrives intact.
#[cfg(unix)]
#[test]
fn documented_quota_refusal_against_a_live_server() {
    use std::io::{Read, Write};
    use std::sync::Arc;

    let path = std::env::temp_dir().join(format!("rankd-protodoc-q-{}.sock", std::process::id()));
    let engine = Arc::new(engine::Engine::new(
        engine::EngineConfig::default().with_workers(1).with_inner_threads(1),
    ));
    let server = engine::server::Server::bind(
        engine,
        engine::server::ServeConfig::new(&path).with_inflight_quota(1),
    )
    .expect("bind");
    let control = server.control();
    let join = std::thread::spawn(move || server.run());

    let mut stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    stream.write_all(DOC_HELLO).expect("send documented HELLO");
    let mut hello_ok = vec![0u8; DOC_HELLO_OK.len()];
    stream.read_exact(&mut hello_ok).expect("read HELLO_OK");
    assert_eq!(hello_ok, DOC_HELLO_OK);

    // One write carrying both frames: the reactor parses them in the
    // same readable event, so the quota check on request 2 happens
    // before request 1's completion can possibly be processed — the
    // documented refusal is deterministic.
    let mut both = DOC_RANK_P1.to_vec();
    both.extend_from_slice(DOC_RANK_P2_BATCH);
    stream.write_all(&both).expect("send both pipelined RANKs");

    let mut refusal = vec![0u8; DOC_ERROR_P_QUOTA.len()];
    stream.read_exact(&mut refusal).expect("read the quota ERROR_P");
    assert_eq!(refusal, DOC_ERROR_P_QUOTA, "refusal matches the documented bytes");

    let mut output = vec![0u8; DOC_OUTPUT_P1.len()];
    stream.read_exact(&mut output).expect("read request 1's OUTPUT_P");
    output[18..42].copy_from_slice(&DOC_OUTPUT_P1[18..42]);
    assert_eq!(output, DOC_OUTPUT_P1, "request 1 is unaffected by the refusal");

    // The refusal is counted, and the quota slot is free again: a
    // fresh id on the same connection goes through.
    stream.write_all(DOC_RANK_P2_BATCH).expect("resend request 2 alone");
    let mut retry = vec![0u8; DOC_OUTPUT_P2.len()];
    stream.read_exact(&mut retry).expect("read the retried OUTPUT_P");
    retry[18..42].copy_from_slice(&DOC_OUTPUT_P2[18..42]);
    assert_eq!(retry, DOC_OUTPUT_P2, "the retry succeeds once the slot frees");

    stream.write_all(DOC_STATS_V2).expect("send STATS_V2");
    let mut reply = &stream;
    let frame = protocol::read_frame(&mut reply, MAX_FRAME_DEFAULT)
        .expect("read STATS_V2_OK")
        .expect("reply present");
    let v2 = protocol::decode_stats_v2(&frame.body).expect("decodes");
    assert_eq!(v2.sched.quota_rejected_inflight, 1);

    drop(stream);
    control.request_shutdown();
    join.join().expect("server thread").expect("server run");
}

// ------------------------------------------------------------------
// Codec round trips beyond the documented example
// ------------------------------------------------------------------

#[test]
fn scan_and_segscan_bodies_round_trip_for_every_operator() {
    let list = LinkedList::new(vec![1, 2, 3, 3], 0).expect("chain");
    let starts = vec![true, false, true, false];
    for op in WireOp::ALL {
        let frame_body = match op {
            WireOp::Add | WireOp::Max | WireOp::Min => {
                protocol::scan_body(&list, &[-1i64, 2, -3, 4], op, false)
            }
            WireOp::Xor => protocol::scan_body(&list, &[1u64, 2, 3, 4], op, true),
            WireOp::Affine => protocol::scan_body(
                &list,
                &[Affine::new(1, 2), Affine::new(-1, 0), Affine::new(2, 2), Affine::new(0, 7)],
                op,
                false,
            ),
        };
        let frame = Frame { kind: FrameKind::Scan as u8, body: frame_body };
        match protocol::decode_request(&frame).expect("scan decodes") {
            WireRequest::Scan { op: got, list: l, values, flags } => {
                assert_eq!(got, op);
                assert_eq!(l.links(), list.links());
                assert_eq!(flags.deadline_ms, None);
                assert_eq!(flags.sharded, op == WireOp::Xor);
                match (op, values) {
                    (WireOp::Add | WireOp::Max | WireOp::Min, WireValues::I64(v)) => {
                        assert_eq!(v, vec![-1, 2, -3, 4])
                    }
                    (WireOp::Xor, WireValues::U64(v)) => assert_eq!(v, vec![1, 2, 3, 4]),
                    (WireOp::Affine, WireValues::Affine(v)) => assert_eq!(v.len(), 4),
                    (op, v) => panic!("mispaired {op:?} / {v:?}"),
                }
            }
            other => panic!("want Scan, got {other:?}"),
        }

        let seg_body = match op {
            WireOp::Add | WireOp::Max | WireOp::Min => {
                protocol::segscan_body(&list, &starts, &[-1i64, 2, -3, 4], op, false)
            }
            WireOp::Xor => protocol::segscan_body(&list, &starts, &[1u64, 2, 3, 4], op, false),
            WireOp::Affine => protocol::segscan_body(
                &list,
                &starts,
                &[Affine::new(1, 2), Affine::new(-1, 0), Affine::new(2, 2), Affine::new(0, 7)],
                op,
                false,
            ),
        };
        let frame = Frame { kind: FrameKind::SegScan as u8, body: seg_body };
        match protocol::decode_request(&frame).expect("segscan decodes") {
            WireRequest::SegScan { starts: got, .. } => assert_eq!(got, starts),
            other => panic!("want SegScan, got {other:?}"),
        }
    }
}

#[test]
fn start_bitmap_packs_lsb_first_with_partial_final_byte() {
    // 9 flags: 1 bit into the second byte.
    let starts = vec![true, false, false, true, false, false, false, false, true];
    let packed = protocol::pack_starts(&starts);
    assert_eq!(packed, vec![0b0000_1001, 0b0000_0001]);
    let list = LinkedList::from_order(&[0, 1, 2, 3, 4, 5, 6, 7, 8]).expect("chain");
    let body = protocol::segscan_body(&list, &starts, &[0i64; 9], WireOp::Add, false);
    let frame = Frame { kind: FrameKind::SegScan as u8, body };
    match protocol::decode_request(&frame).expect("decodes") {
        WireRequest::SegScan { starts: got, .. } => assert_eq!(got, starts),
        other => panic!("want SegScan, got {other:?}"),
    }
}

#[test]
fn stats_and_error_bodies_round_trip() {
    let stats = protocol::WireStats {
        engine_submitted: 10,
        engine_completed: 9,
        engine_cancelled: 1,
        engine_failed: 0,
        engine_elements: 123_456,
        connections_total: 4,
        connections_active: 2,
        peak_connections: 3,
        frames_in: 40,
        frames_out: 39,
        bytes_in: 10_000,
        bytes_out: 90_000,
        errors_sent: 1,
        busy_rejected: 0,
        text: "jobs: 9 completed".to_string(),
    };
    let decoded = protocol::decode_stats(&protocol::stats_body(&stats)).expect("decodes");
    assert_eq!(decoded, stats);

    let body = protocol::error_body(ErrorCode::Busy, "server at max clients");
    let (raw, code, message) = protocol::decode_error(&body).expect("decodes");
    assert_eq!(raw, ErrorCode::Busy as u16);
    assert_eq!(code, Some(ErrorCode::Busy));
    assert_eq!(message, "server at max clients");

    // An unknown error code still decodes, with the raw value kept.
    let mut future = protocol::error_body(ErrorCode::Busy, "from the future");
    future[0] = 0xFE;
    future[1] = 0x00;
    let (raw, code, _) = protocol::decode_error(&future).expect("decodes");
    assert_eq!(raw, 0xFE);
    assert_eq!(code, None);
}

#[test]
fn decode_rejects_malformed_bodies_with_typed_codes() {
    // Zero-length frames, truncated fields, trailing bytes.
    let cases: Vec<(u8, Vec<u8>, ErrorCode)> = vec![
        (0x7F, vec![], ErrorCode::UnknownKind),
        (FrameKind::Hello as u8, vec![0x52], ErrorCode::Malformed),
        (FrameKind::Rank as u8, vec![0], ErrorCode::Malformed),
        (FrameKind::Scan as u8, vec![0, 99], ErrorCode::UnknownOp),
        (FrameKind::Stats as u8, vec![1, 2], ErrorCode::Malformed), // trailing bytes
        (FrameKind::Output as u8, vec![], ErrorCode::Malformed),    // server→client kind
    ];
    for (kind, body, want) in cases {
        let frame = Frame { kind, body };
        let err = protocol::decode_request(&frame).expect_err("must not decode");
        assert_eq!(err.code, want, "kind {kind:#04x}: {err}");
    }
}

#[test]
fn reserved_flag_bits_are_rejected_not_silently_dropped() {
    // PROTOCOL.md: "other bits must be zero". A future client's
    // unknown flag must fail typed, never execute with the flag
    // ignored.
    let list = LinkedList::new(vec![1, 1], 0).expect("chain");
    for frame_kind in [FrameKind::Rank, FrameKind::Scan] {
        let mut body = match frame_kind {
            FrameKind::Rank => protocol::rank_body(&list, false),
            _ => protocol::scan_body(&list, &[1i64, 2], WireOp::Add, false),
        };
        body[0] |= 0x10; // a reserved bit (0x01..0x08 are all assigned as of v6)
        let frame = Frame { kind: frame_kind as u8, body };
        let err = protocol::decode_request(&frame).expect_err("reserved bit must not decode");
        assert_eq!(err.code, ErrorCode::Malformed, "{err}");
    }
    // The sharded bit itself stays fine.
    let frame = Frame { kind: FrameKind::Rank as u8, body: protocol::rank_body(&list, true) };
    assert!(matches!(
        protocol::decode_request(&frame),
        Ok(WireRequest::Rank { flags: protocol::ReqFlags { sharded: true, .. }, .. })
    ));
}

#[test]
fn deadline_flag_round_trips_and_truncation_fails_typed() {
    // Protocol v5: FLAG_DEADLINE carries a u64 millisecond budget
    // between the flags byte and the rest of the body, on both the
    // inline and the by-handle request layouts.
    let list = LinkedList::new(vec![1, 1], 0).expect("chain");
    let frame = Frame {
        kind: FrameKind::Rank as u8,
        body: protocol::rank_body_deadline(&list, false, Some(1500)),
    };
    assert!(matches!(
        protocol::decode_request(&frame).expect("decodes"),
        WireRequest::Rank {
            flags: protocol::ReqFlags { sharded: false, deadline_ms: Some(1500), .. },
            ..
        }
    ));
    let frame = Frame {
        kind: FrameKind::RankH as u8,
        body: protocol::rank_h_body_deadline(7, true, Some(u64::MAX)),
    };
    assert!(matches!(
        protocol::decode_request(&frame).expect("decodes"),
        WireRequest::RankH {
            handle: 7,
            flags: protocol::ReqFlags { sharded: true, deadline_ms: Some(u64::MAX), .. },
        }
    ));
    let frame = Frame {
        kind: FrameKind::ScanH as u8,
        body: protocol::scan_h_body_deadline(3, &[1i64, 2], WireOp::Add, false, Some(250)),
    };
    assert!(matches!(
        protocol::decode_request(&frame).expect("decodes"),
        WireRequest::ScanH {
            handle: 3,
            flags: protocol::ReqFlags { deadline_ms: Some(250), .. },
            ..
        }
    ));

    // A deadline-flagged body truncated at ANY byte — inside the
    // links, the list header, or the deadline field itself — is
    // Malformed, never a misdecode.
    let full = protocol::rank_body_deadline(&list, false, Some(1500));
    for cut in 1..full.len() {
        let frame = Frame { kind: FrameKind::Rank as u8, body: full[..full.len() - cut].to_vec() };
        let err = protocol::decode_request(&frame).expect_err("truncated must not decode");
        assert_eq!(err.code, ErrorCode::Malformed, "cut {cut}: {err}");
    }
}
