//! Scheduler-conformance suite (PR 10): property tests pinning the
//! QoS dispatch policy in `engine::sched` — the pure function the
//! queue consults — and the per-tenant quota ledger the server uses
//! for admission control.
//!
//! These are the *contract* tests the serving layer builds on:
//!
//! * batch work is never starved under continuous interactive load
//!   (the aging valve bounds the wait, it doesn't just make starvation
//!   unlikely);
//! * among jobs queued at the same time, class strictly orders
//!   dispatch, and within a class earliest-deadline-first applies with
//!   arrival order as the tiebreak;
//! * quota accounting is exact under arbitrary admit / complete /
//!   disconnect interleavings;
//! * deadline-first dequeue never inverts priority classes.

use engine::sched::{is_aging_tick, pick_next, JobMeta, QuotaTable, AGING_PERIOD};
use engine::Priority;
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a `JobMeta` from raw sampled parts: class bit, sequence, and
/// an optional deadline (deadline 0 = none).
fn meta(batch: bool, seq: u64, deadline: u64) -> JobMeta {
    JobMeta {
        class: if batch { Priority::Batch } else { Priority::Interactive },
        seq,
        deadline: (deadline > 0).then_some(deadline),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No starvation: a single batch job queued behind a *continuous*
    /// stream of interactive arrivals (one new interactive job per
    /// dispatch, so the interactive backlog never drains) still
    /// dispatches within one full aging period, from any starting
    /// dequeue counter and any backlog size.
    #[test]
    fn batch_dispatches_within_one_aging_period_under_interactive_flood(
        start_dequeues in 0u64..10_000,
        backlog in 1usize..32,
        batch_deadline in 0u64..1000,
    ) {
        let mut seq = 0u64;
        let mut jobs: Vec<JobMeta> = Vec::new();
        // The victim batch job arrives first…
        jobs.push(meta(true, seq, batch_deadline));
        let victim_seq = seq;
        seq += 1;
        // …behind an interactive backlog.
        for _ in 0..backlog {
            jobs.push(meta(false, seq, 0));
            seq += 1;
        }

        let mut dequeues = start_dequeues;
        let mut waited = 0u64;
        loop {
            let idx = pick_next(&jobs, dequeues, AGING_PERIOD).expect("queue non-empty");
            let picked = jobs.remove(idx);
            dequeues += 1;
            waited += 1;
            if picked.seq == victim_seq {
                break;
            }
            prop_assert!(
                waited <= AGING_PERIOD,
                "batch job still queued after {waited} dispatches (start {start_dequeues}, backlog {backlog})"
            );
            // Continuous higher-priority load: every dispatch is
            // immediately replaced by a fresh interactive arrival.
            jobs.push(meta(false, seq, 0));
            seq += 1;
        }
    }

    /// Priority ordering: on a non-aging tick the picked job is always
    /// from the best (lowest) class present, and within that class it
    /// minimises (deadline-or-∞, seq). Sampled over random same-time
    /// queue snapshots.
    #[test]
    fn pick_always_respects_class_then_deadline_then_arrival(
        raw in vec((any::<bool>(), 0u64..64, 0u64..8), 1..24),
        dequeues in 0u64..10_000,
    ) {
        // Distinct seqs: arrival order is a total order in the real
        // queue, so disambiguate collisions by index.
        let jobs: Vec<JobMeta> = raw
            .iter()
            .enumerate()
            .map(|(i, &(batch, seq_base, dl))| meta(batch, seq_base * 100 + i as u64, dl))
            .collect();
        prop_assume!(!is_aging_tick(dequeues, AGING_PERIOD));

        let idx = pick_next(&jobs, dequeues, AGING_PERIOD).expect("non-empty");
        let picked = jobs[idx];
        let best_class = jobs.iter().map(|j| j.class).min().expect("non-empty");
        prop_assert_eq!(picked.class, best_class, "picked a worse class than available");

        let key = |j: &JobMeta| (j.deadline.unwrap_or(u64::MAX), j.seq);
        for j in jobs.iter().filter(|j| j.class == best_class) {
            prop_assert!(
                key(&picked) <= key(j),
                "picked {picked:?} but {j:?} has an earlier (deadline, seq) key"
            );
        }
    }

    /// Aging ticks pick the globally oldest job — class-blind — and
    /// occur exactly once per period.
    #[test]
    fn aging_tick_is_class_blind_and_periodic(
        raw in vec((any::<bool>(), 0u64..8), 2..24),
        period_offset in 0u64..1000,
    ) {
        let jobs: Vec<JobMeta> = raw
            .iter()
            .enumerate()
            .map(|(i, &(batch, dl))| meta(batch, i as u64, dl))
            .collect();
        let tick = period_offset * AGING_PERIOD + (AGING_PERIOD - 1);
        prop_assert!(is_aging_tick(tick, AGING_PERIOD));
        prop_assert!(!is_aging_tick(tick + 1, AGING_PERIOD));
        let idx = pick_next(&jobs, tick, AGING_PERIOD).expect("non-empty");
        prop_assert_eq!(jobs[idx].seq, 0, "aging tick must take the oldest arrival");
        // Exactly one aging tick per period window.
        let ticks = (tick + 1..tick + 1 + AGING_PERIOD)
            .filter(|&d| is_aging_tick(d, AGING_PERIOD))
            .count();
        prop_assert_eq!(ticks, 1);
    }

    /// Deadline-first dequeue never inverts priority classes: even
    /// when every batch job carries an earlier deadline than every
    /// interactive job, a non-aging pick still takes the interactive
    /// class while one is present.
    #[test]
    fn deadlines_never_invert_classes(
        n_batch in 1usize..12,
        n_interactive in 1usize..12,
        dequeues in 0u64..10_000,
    ) {
        prop_assume!(!is_aging_tick(dequeues, AGING_PERIOD));
        let mut jobs = Vec::new();
        // Batch jobs with the most urgent deadlines possible…
        for i in 0..n_batch {
            jobs.push(meta(true, i as u64, 1 + i as u64));
        }
        // …interactive jobs with late deadlines or none at all.
        for i in 0..n_interactive {
            let dl = if i % 2 == 0 { 0 } else { 1_000_000 + i as u64 };
            jobs.push(meta(false, (n_batch + i) as u64, dl));
        }
        let idx = pick_next(&jobs, dequeues, AGING_PERIOD).expect("non-empty");
        prop_assert_eq!(
            jobs[idx].class,
            Priority::Interactive,
            "an urgent batch deadline must not beat the interactive class"
        );
    }

    /// A full drain dispatches every job exactly once, whatever the
    /// class/deadline mix — the policy can reorder but never drop or
    /// duplicate.
    #[test]
    fn drain_is_a_permutation(
        raw in vec((any::<bool>(), 0u64..6), 1..40),
        start_dequeues in 0u64..1_000,
    ) {
        let mut jobs: Vec<JobMeta> = raw
            .iter()
            .enumerate()
            .map(|(i, &(batch, dl))| meta(batch, i as u64, dl))
            .collect();
        let total = jobs.len();
        let mut seen = vec![false; total];
        let mut dequeues = start_dequeues;
        while let Some(idx) = pick_next(&jobs, dequeues, AGING_PERIOD) {
            let picked = jobs.remove(idx);
            dequeues += 1;
            let slot = picked.seq as usize;
            prop_assert!(!seen[slot], "job {slot} dispatched twice");
            seen[slot] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "drain left jobs behind");
    }

    /// Quota accounting is exact under random admit / complete /
    /// disconnect interleavings: the table always agrees with a
    /// reference model, per tenant and in total.
    #[test]
    fn quota_table_matches_reference_model(
        cap in 0u64..6,
        events in vec((0u8..100, 0u64..4), 1..200),
    ) {
        let table = QuotaTable::new(cap);
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut model_rejected = 0u64;

        for &(kind, tenant) in &events {
            match kind {
                // ~60%: admission attempts.
                0..=59 => {
                    let inflight = model.get(&tenant).copied().unwrap_or(0);
                    let want_admit = cap == 0 || inflight < cap;
                    let got = table.try_admit(tenant);
                    prop_assert_eq!(got, want_admit, "admit mismatch for tenant {}", tenant);
                    if want_admit {
                        *model.entry(tenant).or_insert(0) += 1;
                    } else {
                        model_rejected += 1;
                    }
                }
                // ~30%: completions (including spurious ones for idle
                // tenants, which must be no-ops).
                60..=89 => {
                    table.complete(tenant);
                    if let Some(slot) = model.get_mut(&tenant) {
                        *slot -= 1;
                        if *slot == 0 {
                            model.remove(&tenant);
                        }
                    }
                }
                // ~10%: disconnects; the table must report exactly the
                // outstanding admissions it forgets.
                _ => {
                    let outstanding = model.remove(&tenant).unwrap_or(0);
                    prop_assert_eq!(table.drop_tenant(tenant), outstanding);
                }
            }
            for (&t, &want) in &model {
                prop_assert_eq!(table.inflight(t), want, "tenant {} inflight diverged", t);
            }
        }
        prop_assert_eq!(table.rejected(), model_rejected);
        prop_assert_eq!(table.tenants(), model.len());
        // Settle everything: the ledger must end empty.
        let tenants: Vec<u64> = model.keys().copied().collect();
        for t in tenants {
            table.drop_tenant(t);
        }
        prop_assert_eq!(table.tenants(), 0);
    }
}

/// Deterministic end-to-end check of the documented starvation bound:
/// with `AGING_PERIOD = 16`, a batch job behind an endless interactive
/// flood waits at most 16 dispatches — and with aging disabled
/// (period 0) it genuinely starves.
#[test]
fn aging_bound_is_tight_and_necessary() {
    let flood = |aging: u64, limit: u64| -> Option<u64> {
        let mut jobs = vec![meta(true, 0, 0)];
        let mut seq = 1u64;
        for _ in 0..4 {
            jobs.push(meta(false, seq, 0));
            seq += 1;
        }
        for waited in 1..=limit {
            let idx = pick_next(&jobs, waited - 1, aging).expect("non-empty");
            let picked = jobs.remove(idx);
            if picked.seq == 0 {
                return Some(waited);
            }
            jobs.push(meta(false, seq, 0));
            seq += 1;
        }
        None
    };
    let waited = flood(AGING_PERIOD, 10 * AGING_PERIOD).expect("aging must rescue the batch job");
    assert!(waited <= AGING_PERIOD, "waited {waited} > AGING_PERIOD");
    assert_eq!(flood(0, 10 * AGING_PERIOD), None, "without aging the flood starves batch forever");
}
