//! Property tests for the resilience arithmetic: queue-deadline expiry
//! and the client's retry backoff. Both are pure functions that must
//! be total — no overflow, no panic — for any input a hostile clock or
//! a pathological policy can produce.

use engine::client::RetryPolicy;
use engine::fault::deadline_expired;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `deadline_expired` is total and ordered for ANY wait and ANY
    /// millisecond budget, including `u64::MAX` (whose nanosecond
    /// equivalent overflows `u64` — the comparison must not).
    #[test]
    fn deadline_expiry_is_total_and_monotone(
        secs in any::<u64>(),
        nanos in 0u32..1_000_000_000,
        deadline_ms in any::<u64>(),
    ) {
        let waited = Duration::new(secs, nanos);
        let expired = deadline_expired(waited, deadline_ms);

        // Tightening the budget can only keep/trip the expiry…
        if expired {
            prop_assert!(deadline_expired(waited, deadline_ms / 2));
            prop_assert!(deadline_expired(waited, 0));
        }
        // …and waiting longer can never un-expire it.
        if expired {
            prop_assert!(deadline_expired(waited.saturating_add(Duration::from_secs(1)), deadline_ms));
        }
        // A zero budget has always expired; an unexpired wait really
        // was inside the budget.
        prop_assert!(deadline_expired(waited, 0));
        if !expired {
            prop_assert!(waited.as_millis() < u128::from(deadline_ms));
        }
    }

    /// Extremes that killed earlier drafts: `u64::MAX` milliseconds
    /// must behave as "effectively no deadline" for sane waits.
    #[test]
    fn max_deadline_never_expires_sane_waits(ms in 0u64..=1_000_000_000) {
        prop_assert!(!deadline_expired(Duration::from_millis(ms), u64::MAX));
    }

    /// The backoff is equal-jitter: for every attempt the delay lies
    /// in `[exp / 2, exp]` for `exp = min(base · 2^attempt, max)`, so
    /// it never exceeds the ceiling and never collapses to zero once
    /// the schedule is nonzero. Saturates instead of overflowing for
    /// absurd attempt counts.
    #[test]
    fn backoff_delay_is_bounded_by_the_schedule(
        base_ms in 0u64..10_000,
        max_ms in 0u64..60_000,
        seed in any::<u64>(),
        attempt in 0u32..512,
    ) {
        let policy = RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(max_ms),
            jitter_seed: seed,
        };
        let base_ns = base_ms as u128 * 1_000_000;
        let max_ns = max_ms as u128 * 1_000_000;
        // Reference exponent with explicit lost-bit detection (a bare
        // `checked_shl` only guards the shift amount, not overflow).
        let exp = base_ns
            .checked_shl(attempt)
            .filter(|v| v >> attempt == base_ns)
            .unwrap_or(u128::MAX)
            .min(max_ns);
        let delay = policy.backoff_delay(attempt).as_nanos();
        prop_assert!(
            delay >= exp / 2,
            "delay {delay} under floor {} (base {base_ms}ms max {max_ms}ms attempt {attempt} seed {seed})",
            exp / 2
        );
        prop_assert!(
            delay <= exp,
            "delay {delay} over ceiling {exp} (base {base_ms}ms max {max_ms}ms attempt {attempt} seed {seed})"
        );
    }

    /// The jitter is a pure function of `(seed, attempt)`: the same
    /// policy replays the same schedule, and reseeding changes only
    /// the jitter, never the bounds.
    #[test]
    fn backoff_delay_is_deterministic_per_seed(
        seed in any::<u64>(),
        attempt in 0u32..64,
    ) {
        let policy = RetryPolicy::default().with_seed(seed);
        prop_assert_eq!(policy.backoff_delay(attempt), policy.backoff_delay(attempt));
        let reseeded = RetryPolicy::default().with_seed(seed ^ 0xABCD);
        let d = reseeded.backoff_delay(attempt);
        prop_assert!(d <= policy.max_delay, "reseeded delay inside the same ceiling");
    }
}

/// The non-property half of the retry contract: what is worth
/// retrying. (The "never retry MUTATE" rule is enforced in
/// `Client::call` and exercised end-to-end by the chaos soak.)
#[test]
fn transient_classification_matches_the_documented_contract() {
    use engine::client::ClientError;
    use engine::protocol::ErrorCode;

    let io = |kind: std::io::ErrorKind| ClientError::Io(std::io::Error::new(kind, "x"));
    let server = |code: ErrorCode| ClientError::Server {
        code: code as u16,
        kind: Some(code),
        message: String::new(),
    };

    for transient in [
        io(std::io::ErrorKind::ConnectionRefused),
        io(std::io::ErrorKind::ConnectionReset),
        io(std::io::ErrorKind::BrokenPipe),
        io(std::io::ErrorKind::UnexpectedEof),
        server(ErrorCode::Busy),
        server(ErrorCode::Overloaded),
    ] {
        assert!(RetryPolicy::is_transient(&transient), "{transient} should retry");
    }
    for permanent in [
        server(ErrorCode::Malformed),
        server(ErrorCode::StaleHandle),
        server(ErrorCode::DeadlineExceeded),
        server(ErrorCode::InternalError),
        server(ErrorCode::BadMutation),
        ClientError::Protocol("garbled".into()),
        io(std::io::ErrorKind::PermissionDenied),
    ] {
        assert!(!RetryPolicy::is_transient(&permanent), "{permanent} must not retry");
    }
}
